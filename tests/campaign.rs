//! Integration tests for the cross-dataset campaign: quick-mode end-to-end
//! coverage, registry round-trips and artifact persistence.

use printed_mlp::core::campaign::{Campaign, CampaignConfig, CampaignResult};
use printed_mlp::core::experiment::Effort;
use printed_mlp::core::report::render_campaign_table;
use printed_mlp::data::{load, UciDataset};

fn quick_config(datasets: Vec<UciDataset>) -> CampaignConfig {
    CampaignConfig {
        datasets,
        effort: Effort::Quick,
        seed: 11,
        max_accuracy_loss: 0.05,
        ..CampaignConfig::default()
    }
}

#[test]
fn registry_round_trips_names_and_descriptor_shapes() {
    let all = UciDataset::all();
    assert!(all.len() >= 10, "the registry must stay paper-scale");
    for dataset in all {
        // parse(name) round-trips the display name.
        assert_eq!(UciDataset::parse(&dataset.to_string()).unwrap(), dataset);

        // Generation is deterministic for a fixed seed ...
        let descriptor = dataset.descriptor();
        let a = load(dataset, 5).unwrap();
        let b = load(dataset, 5).unwrap();
        assert_eq!(a, b, "{dataset}: generation must be deterministic");

        // ... and matches the descriptor's topology and class count.
        assert_eq!(a.feature_count(), descriptor.feature_count, "{dataset}");
        assert_eq!(a.class_count(), descriptor.class_count, "{dataset}");
        assert_eq!(
            descriptor.topology(),
            vec![
                descriptor.feature_count,
                descriptor.hidden_neurons,
                descriptor.class_count
            ],
            "{dataset}"
        );
        assert!(
            a.class_histogram().iter().all(|&count| count >= 2),
            "{dataset}: every class must be represented"
        );
    }
}

#[test]
fn quick_campaign_runs_end_to_end_and_renders() {
    let datasets = vec![UciDataset::Seeds, UciDataset::Mammographic];
    let result = Campaign::new(quick_config(datasets.clone())).run().unwrap();

    assert_eq!(result.reports.len(), datasets.len());
    for (report, expected) in result.reports.iter().zip(&datasets) {
        assert_eq!(report.dataset, *expected, "reports keep registry order");
        assert_eq!(
            report.series.len(),
            3,
            "{}: one series per technique",
            report.name
        );
        assert_eq!(report.headline.len(), 3, "{}", report.name);
        assert!(
            report.baseline_accuracy > 0.5,
            "{}: baseline accuracy {} is at chance level",
            report.name,
            report.baseline_accuracy
        );
        assert!(report.baseline_area_mm2 > 0.0, "{}", report.name);
        assert!(report.evaluations > 0, "{}", report.name);
        assert!(
            report.series.iter().all(|s| !s.points.is_empty()),
            "{}: every technique must produce points",
            report.name
        );
    }

    let summaries = result.technique_summaries();
    assert_eq!(summaries.len(), 3);
    assert!(summaries.iter().all(|s| s.datasets_total == datasets.len()));

    let table = render_campaign_table(&result);
    assert!(table.contains("Seeds") && table.contains("Mammographic"));
    assert!(table.contains("cross-dataset average"));
}

#[test]
fn campaign_is_deterministic_for_a_seed() {
    let config = quick_config(vec![UciDataset::Seeds]);
    let mut first = Campaign::new(config.clone()).run().unwrap();
    let mut second = Campaign::new(config).run().unwrap();
    // Wall-clock timing and the process-wide multiplier-cache snapshot are
    // the only fields allowed to differ between runs (the cache is warmer on
    // the second run by design).
    for report in first.reports.iter_mut().chain(second.reports.iter_mut()) {
        report.elapsed_secs = 0.0;
        report.multiplier_cache_hit_rate = 0.0;
    }
    assert_eq!(first, second);
}

#[test]
fn campaign_progress_fires_once_per_dataset() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let fired = Arc::new(AtomicUsize::new(0));
    let observer = Arc::clone(&fired);
    let result = Campaign::new(quick_config(vec![UciDataset::Seeds, UciDataset::Vertebral]))
        .with_progress(move |_| {
            observer.fetch_add(1, Ordering::Relaxed);
        })
        .run()
        .unwrap();
    assert_eq!(fired.load(Ordering::Relaxed), result.reports.len());
}

#[test]
fn campaign_artifacts_round_trip_through_json() {
    let result = Campaign::new(quick_config(vec![UciDataset::Balance]))
        .run()
        .unwrap();

    let dir = std::env::temp_dir().join(format!("pmlp-campaign-it-{}", std::process::id()));
    let paths = result.write_artifacts(&dir).unwrap();
    // One aggregate file plus one per dataset.
    assert_eq!(paths.len(), result.reports.len() + 1);
    assert!(paths.iter().all(|p| p.exists()));

    let text = std::fs::read_to_string(&paths[0]).unwrap();
    let back: CampaignResult = serde_json::from_str(&text).unwrap();
    assert_eq!(back, result);
    std::fs::remove_dir_all(&dir).ok();
}
