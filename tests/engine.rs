//! Integration tests for the shared evaluation engine: determinism of
//! engine-backed searches, memoization across runs, in-flight deduplication,
//! and the quick-effort Figure 1 smoke path used by CI.

use printed_mlp::core::baseline::BaselineConfig;
use printed_mlp::core::engine::{EvalEngine, Evaluator};
use printed_mlp::core::experiment::{Effort, Figure1Experiment};
use printed_mlp::core::genome::GenomeSpace;
use printed_mlp::core::{Nsga2, Nsga2Config};
use printed_mlp::data::UciDataset;
use printed_mlp::minimize::MinimizationConfig;

fn quick_engine(seed: u64) -> EvalEngine {
    EvalEngine::train_with(
        UciDataset::Seeds,
        seed,
        &BaselineConfig {
            epochs: 10,
            ..BaselineConfig::default()
        },
    )
    .expect("baseline training")
    .with_fine_tune_epochs(2)
}

fn tiny_ga(seed: u64) -> Nsga2 {
    Nsga2::new(Nsga2Config {
        population: 6,
        generations: 2,
        seed,
        space: GenomeSpace {
            weight_bits: vec![3, 4],
            sparsities: vec![0.3, 0.5],
            cluster_counts: vec![3],
            enable_probability: 0.8,
        },
        ..Nsga2Config::default()
    })
}

#[test]
fn same_seed_produces_identical_pareto_front() {
    // Two independent engines (cold caches) and identical search seeds must
    // agree exactly — the engine introduces no nondeterminism.
    let first = tiny_ga(5).run(&quick_engine(3)).unwrap();
    let second = tiny_ga(5).run(&quick_engine(3)).unwrap();
    assert_eq!(first.pareto_front, second.pareto_front);
    assert_eq!(first.all_points, second.all_points);
    assert_eq!(first.history, second.history);
}

#[test]
fn warm_cache_rerun_hits_instead_of_recomputing() {
    let engine = quick_engine(4);
    let cold_start = std::time::Instant::now();
    let cold = tiny_ga(9).run(&engine).unwrap();
    let cold_time = cold_start.elapsed();
    let stats_after_cold = engine.stats();
    assert!(
        stats_after_cold.misses > 0,
        "cold run must compute evaluations"
    );

    let warm_start = std::time::Instant::now();
    let warm = tiny_ga(9).run(&engine).unwrap();
    let warm_time = warm_start.elapsed();
    let stats_after_warm = engine.stats();

    assert_eq!(warm.pareto_front, cold.pareto_front);
    assert_eq!(
        stats_after_warm.misses, stats_after_cold.misses,
        "warm re-run must be answered entirely from the cache"
    );
    assert!(
        stats_after_warm.hits > stats_after_cold.hits,
        "warm re-run must record hits"
    );
    assert!(stats_after_warm.hit_rate() > 0.0);
    // The cache turns seconds of retraining into microseconds of lookups.
    assert!(
        warm_time < cold_time / 2,
        "warm run ({warm_time:?}) not measurably faster than cold ({cold_time:?})"
    );
}

#[test]
fn identical_concurrent_requests_are_deduplicated() {
    let engine = quick_engine(6);
    // A batch of identical configurations: the in-flight machinery must run
    // the pipeline exactly once and coalesce (or cache-hit) everyone else.
    let config = MinimizationConfig::default().with_weight_bits(4);
    let batch = vec![config; 8];
    let points = engine.evaluate_batch(&batch).unwrap();
    assert_eq!(points.len(), 8);
    assert!(points.windows(2).all(|w| w[0] == w[1]));
    let stats = engine.stats();
    assert_eq!(
        stats.misses, 1,
        "one computation for eight identical requests"
    );
    assert_eq!(stats.hits + stats.coalesced, 7);
    assert_eq!(stats.entries, 1);
}

#[test]
fn progress_callback_observes_every_resolution() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let observed = Arc::new(AtomicUsize::new(0));
    let cached_seen = Arc::new(AtomicUsize::new(0));
    let engine = {
        let observed = Arc::clone(&observed);
        let cached_seen = Arc::clone(&cached_seen);
        quick_engine(7).with_progress(move |progress| {
            observed.fetch_add(1, Ordering::Relaxed);
            if progress.cached {
                cached_seen.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    let config = MinimizationConfig::default().with_sparsity(0.3);
    engine.evaluate(&config).unwrap();
    engine.evaluate(&config).unwrap();
    assert_eq!(observed.load(Ordering::Relaxed), 2);
    assert_eq!(cached_seen.load(Ordering::Relaxed), 1);
}

#[test]
fn figure1_quick_smoke_on_seeds() {
    // The CI smoke path: quick-effort Figure 1 on the smallest dataset through
    // a shared engine, verifying both the figure structure and that every
    // sweep configuration landed in the memo cache.
    let experiment = Figure1Experiment::new(UciDataset::Seeds, Effort::Quick, 17);
    let engine = experiment.build_engine().unwrap();
    let result = experiment.run_with(&engine).unwrap();

    assert_eq!(result.series.len(), 3);
    assert!(result.baseline_accuracy > 0.5);
    assert!(result.baseline_area_mm2 > 0.0);
    for series in &result.series {
        assert!(!series.points.is_empty());
    }
    let ranges = Effort::Quick.sweep_ranges();
    // One evaluation per swept configuration, plus the shared baseline
    // reference point every sweep series now leads with.
    let expected_configs =
        1 + ranges.weight_bits.len() + ranges.sparsities.len() + ranges.cluster_counts.len();
    assert_eq!(engine.stats().entries, expected_configs);
    // Every series carries the baseline as its reference point.
    for (technique, points) in &result.raw_points {
        assert!(
            points.first().is_some_and(|p| p.config.is_baseline()),
            "{technique:?} series lacks the baseline reference point"
        );
    }

    // Re-running the same experiment on the warm engine recomputes nothing.
    let misses = engine.stats().misses;
    let again = experiment.run_with(&engine).unwrap();
    assert_eq!(again, result);
    assert_eq!(engine.stats().misses, misses);
}
