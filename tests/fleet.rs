//! Integration tests of the distributed search plane: a fleet of campaign
//! workers splitting one battery through lease-based work stealing on a
//! shared `pmlp-serve` store, a crashed worker's lease expiring and being
//! stolen by a survivor (the outage staged with the chaos proxy), and the
//! island-model Fig. 2 GA migrating elites between workers through the same
//! server.

use printed_mlp::core::campaign::{
    Campaign, CampaignConfig, CampaignResult, CampaignRunStats, WorkerOptions,
};
use printed_mlp::core::experiment::{Effort, Figure2Experiment};
use printed_mlp::core::store::{now_epoch_ms, RemoteBackend, StoreBackend};
use printed_mlp::data::UciDataset;
use printed_mlp::serve::chaos::{ChaosConfig, ChaosProxy};
use printed_mlp::serve::{spawn, ServeConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const SEED: u64 = 11;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pmlp-fleet-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn fleet_config(
    datasets: Vec<UciDataset>,
    local: &Path,
    remote: String,
    worker: WorkerOptions,
) -> CampaignConfig {
    CampaignConfig {
        datasets,
        effort: Effort::Quick,
        seed: SEED,
        max_accuracy_loss: 0.05,
        objectives: Default::default(),
        accuracy_tier: printed_mlp::core::AccuracyTier::default(),
        store_dir: Some(local.to_path_buf()),
        remote_store: Some(remote),
        remote_timeout_ms: Some(2_000),
        durability: Default::default(),
        remote_cooldown_ms: Some(0),
        resume: false,
        worker: Some(worker),
    }
}

fn run_fleet_worker(config: CampaignConfig) -> (CampaignResult, CampaignRunStats) {
    Campaign::new(config).run_with_stats().unwrap()
}

/// The tentpole acceptance contract: two workers against one server split
/// the battery dynamically — every dataset is computed by exactly one of
/// them, both assemble the identical full result, and the science matches a
/// classic single-process run. Afterwards the server's document listing
/// (exercising `list_docs` end to end through the remote backend) shows one
/// completion marker and one cached baseline per dataset and zero leases.
#[test]
fn two_workers_split_the_battery_and_match_the_classic_run() {
    let datasets = vec![UciDataset::Seeds, UciDataset::Vertebral];

    let classic = Campaign::new(CampaignConfig {
        datasets: datasets.clone(),
        effort: Effort::Quick,
        seed: SEED,
        ..CampaignConfig::default()
    })
    .run()
    .unwrap();

    let server = spawn(&ServeConfig::default()).unwrap();
    let dir_a = temp_dir("split-a");
    let dir_b = temp_dir("split-b");
    let spawn_worker = |id: &str, dir: &Path| {
        let config = fleet_config(
            datasets.clone(),
            dir,
            server.url(),
            WorkerOptions::new(id).with_steal(true),
        );
        std::thread::spawn(move || run_fleet_worker(config))
    };
    let first = spawn_worker("w1", &dir_a);
    let second = spawn_worker("w2", &dir_b);
    let (result_a, stats_a) = first.join().unwrap();
    let (result_b, stats_b) = second.join().unwrap();

    // No dataset is evaluated twice: the computed sets partition the battery.
    for dataset in &datasets {
        let in_a = stats_a.computed.contains(dataset);
        let in_b = stats_b.computed.contains(dataset);
        assert!(
            in_a ^ in_b,
            "{dataset:?} must be computed by exactly one worker"
        );
    }

    // Both workers hold the full battery result, identically, and the
    // science equals the classic run's.
    assert_eq!(result_a, result_b);
    for (fleet, single) in result_a.reports.iter().zip(&classic.reports) {
        assert_eq!(fleet.series, single.series, "{}: series differ", fleet.name);
        assert_eq!(fleet.headline, single.headline);
        assert_eq!(fleet.hypervolume, single.hypervolume);
        assert_eq!(fleet.baseline_accuracy, single.baseline_accuracy);
    }

    // list_docs round-trips through the live server: per dataset one
    // completion marker and one cached baseline characterization; all
    // leases released.
    let remote = RemoteBackend::new(&server.url()).unwrap();
    for dataset in &datasets {
        let ds = dataset.to_string().to_lowercase();
        assert_eq!(
            remote.list_docs(&format!("done_{ds}_")).unwrap().len(),
            1,
            "{dataset:?}: exactly one completion marker"
        );
        assert_eq!(
            remote.list_docs(&format!("baseline_{ds}_")).unwrap().len(),
            1,
            "{dataset:?}: the baseline characterization must be cached"
        );
    }
    assert!(
        remote.list_docs("lease_").unwrap().is_empty(),
        "all leases must be released"
    );

    server.stop();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// A worker whose link dies mid-dataset stops renewing its lease on the
/// server; once the lease expires, a stealing survivor takes the dataset
/// over and finishes the battery. The cut is staged with the chaos proxy:
/// the doomed worker claims through it, then the proxy goes unhealthy.
#[test]
fn a_dead_workers_expired_lease_is_stolen_by_a_survivor() {
    let datasets = vec![UciDataset::Seeds];
    let server = spawn(&ServeConfig::default()).unwrap();
    let quiet = ChaosConfig {
        delay_per_mille: 0,
        reset_per_mille: 0,
        truncate_per_mille: 0,
        garbage_per_mille: 0,
        corrupt_per_mille: 0,
        ..ChaosConfig::default()
    };
    let proxy = ChaosProxy::spawn(server.addr(), quiet).unwrap();

    // The doomed worker claims through the proxy with a short lease.
    let dir_doomed = temp_dir("steal-doomed");
    let mut doomed_worker = WorkerOptions::new("doomed");
    doomed_worker.lease_ttl_ms = 500;
    let doomed_config = fleet_config(datasets.clone(), &dir_doomed, proxy.url(), doomed_worker);
    let lease_name = Campaign::new(doomed_config.clone()).lease_doc_name(UciDataset::Seeds);
    let doomed = std::thread::spawn(move || run_fleet_worker(doomed_config));

    // Cut the link the moment the claim lands on the server. From here the
    // doomed worker's heartbeats fail (journaled locally) and its server-side
    // lease runs out.
    let remote = RemoteBackend::new(&server.url()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while remote.get_doc(&lease_name).unwrap().is_none() {
        assert!(Instant::now() < deadline, "doomed worker never claimed");
        std::thread::sleep(Duration::from_millis(5));
    }
    proxy.set_healthy(false);

    // Wait for the orphaned lease to expire server-side.
    let survivor_config = fleet_config(
        datasets.clone(),
        &temp_dir("steal-survivor"),
        server.url(),
        WorkerOptions::new("survivor").with_steal(true),
    );
    let survivor = Campaign::new(survivor_config.clone());
    loop {
        assert!(Instant::now() < deadline, "orphaned lease never expired");
        match survivor.read_lease(&remote, &lease_name) {
            Some((holder, lease_deadline)) => {
                assert_eq!(holder, "doomed");
                if lease_deadline < now_epoch_ms() {
                    break;
                }
            }
            // The doomed worker finished and released before the cut bit;
            // extremely fast machines could get here — the steal scenario
            // needs the lease present, so keep polling for the marker case.
            None => break,
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // The survivor steals the expired lease and completes the battery.
    let (survivor_result, survivor_stats) = survivor.run_with_stats().unwrap();
    assert_eq!(survivor_stats.computed, datasets);
    assert_eq!(
        survivor_stats.stolen, datasets,
        "the survivor must have broken the expired lease"
    );

    // The doomed worker still completes on its local tier (its duplicate
    // work is the documented cost of a lost lease, never a correctness
    // problem) and agrees on the science.
    let (doomed_result, doomed_stats) = doomed.join().unwrap();
    assert_eq!(doomed_stats.computed, datasets);
    for (a, b) in doomed_result.reports.iter().zip(&survivor_result.reports) {
        assert_eq!(a.series, b.series, "{}: stolen series differ", a.name);
        assert_eq!(a.headline, b.headline);
        assert_eq!(a.hypervolume, b.hypervolume);
    }

    proxy.stop();
    server.stop();
    std::fs::remove_dir_all(&dir_doomed).ok();
}

/// Two island GAs migrate elites through a shared server: each island's
/// final front dominates-or-equals what it could know alone, both islands
/// published their fronts, and a solo island (no peers in the store) is
/// bit-identical to the classic checkpointed search.
#[test]
fn fig2_islands_migrate_elites_through_a_shared_server() {
    let experiment = Figure2Experiment::new(UciDataset::Seeds, Effort::Quick, 21);

    // Reference: the classic checkpointed search against its own server.
    let solo_server = spawn(&ServeConfig::default()).unwrap();
    let solo_dir = temp_dir("island-solo");
    let backend = printed_mlp::core::store::open_backend(Some(&solo_dir), Some(&solo_server.url()))
        .unwrap()
        .unwrap();
    let engine = experiment
        .build_engine_cached(Some(&*backend))
        .unwrap()
        .with_backend(backend)
        .unwrap();
    let classic = experiment
        .run_with_checkpoint_doc(&engine, "fig2_seeds_nsga2.json")
        .unwrap();

    // A solo island — nobody to migrate with — must reproduce it exactly.
    let solo = experiment
        .run_distributed(&engine, "fig2_seeds_solo_nsga2.json", "solo", 1)
        .unwrap();
    assert_eq!(
        solo.search.pareto_front, classic.search.pareto_front,
        "a peerless island must be bit-identical to the classic search"
    );

    solo_server.stop();
    std::fs::remove_dir_all(&solo_dir).ok();

    // Fleet: two islands share one server and migrate every generation.
    let fleet_server = spawn(&ServeConfig::default()).unwrap();
    let results: Vec<_> = ["north", "south"]
        .iter()
        .map(|worker| {
            let url = fleet_server.url();
            let dir = temp_dir(&format!("island-{worker}"));
            let experiment = Figure2Experiment::new(UciDataset::Seeds, Effort::Quick, 21);
            let worker = worker.to_string();
            std::thread::spawn(move || {
                let backend = printed_mlp::core::store::open_backend(Some(&dir), Some(&url))
                    .unwrap()
                    .unwrap();
                let engine = experiment
                    .build_engine_cached(Some(&*backend))
                    .unwrap()
                    .with_backend(backend)
                    .unwrap();
                let result = experiment
                    .run_distributed(
                        &engine,
                        &format!("fig2_seeds_{worker}_nsga2.json"),
                        &worker,
                        1,
                    )
                    .unwrap();
                std::fs::remove_dir_all(&dir).ok();
                result
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|handle| handle.join().unwrap())
        .collect();

    // Both islands produced non-empty fronts and published them: the server
    // lists one or more island documents per worker.
    let remote = RemoteBackend::new(&fleet_server.url()).unwrap();
    let published = remote.list_docs("island_").unwrap();
    for worker in ["north", "south"] {
        assert!(
            published.iter().any(|doc| doc.contains(worker)),
            "{worker} never published an elite front: {published:?}"
        );
    }
    for result in &results {
        assert!(!result.search.pareto_front.is_empty());
    }

    fleet_server.stop();
}
