//! System-level differential tests of the pure-integer inference engine:
//! tier agreement across the full dataset registry, netlist equivalence on
//! real minimized candidates, store round-trips, and a golden-vector corpus.
//!
//! The corpus under `tests/golden/int_infer/` is self-contained: each
//! `.jsonl` file opens with a header line embedding the full circuit spec
//! (weights, biases, bit-widths, activations, sharing) followed by one line
//! per input row carrying the argmax that gate-level netlist simulation
//! produced when the corpus was generated. Replay therefore needs no
//! training and no synthesis — it pins the integer kernels alone.
//! Regenerate after an intentional format or pipeline change with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test int_infer golden
//! ```

use printed_mlp::core::baseline::BaselineDesign;
use printed_mlp::core::bridge::circuit_spec_from_layers;
use printed_mlp::core::experiment::Effort;
use printed_mlp::core::objective::{
    evaluate_config, evaluate_config_detailed, integer_accuracy, AccuracyTier, EvaluationContext,
};
use printed_mlp::core::store::{decode_artifacts, encode_artifacts};
use printed_mlp::data::UciDataset;
use printed_mlp::hw::constmul::RecodingStrategy;
use printed_mlp::hw::{
    BespokeMlpCircuit, CellLibrary, CircuitSpec, HwActivation, IntInferEngine, LayerSpec,
    SharingStrategy,
};
use printed_mlp::minimize::MinimizationConfig;
use serde_json::Value;
use std::path::PathBuf;

/// Quick-effort baseline: same budget the `--quick` CI paths use.
fn quick_baseline(dataset: UciDataset, seed: u64) -> BaselineDesign {
    BaselineDesign::train_with(dataset, seed, &Effort::Quick.baseline_config())
        .expect("baseline training succeeds")
}

/// Evaluation context mirroring `--quick` campaign settings, pinned to one
/// accuracy tier.
fn quick_ctx(baseline: &BaselineDesign, tier: AccuracyTier) -> EvaluationContext<'_> {
    EvaluationContext::new(baseline)
        .with_fine_tune_epochs(Effort::Quick.fine_tune_epochs())
        .with_accuracy_tier(tier)
}

// ---------------------------------------------------------------------------
// Tier differential: Integer == Float on every registry dataset.
// ---------------------------------------------------------------------------

/// Both accuracy tiers score the same minimized model on the same quantized
/// test split — the float tier in `f32`, the integer tier with the exact
/// arithmetic of the circuit. The argmax decisions (and hence the reported
/// accuracies) must be identical on every dataset in the registry.
#[test]
fn integer_and_float_tiers_report_identical_accuracy_across_the_registry() {
    let config = MinimizationConfig::default().with_weight_bits(4);
    for &dataset in &UciDataset::all() {
        let baseline = quick_baseline(dataset, 41);
        let float_point = evaluate_config(&quick_ctx(&baseline, AccuracyTier::Float), &config, 0)
            .expect("float-tier evaluation succeeds");
        let int_point = evaluate_config(&quick_ctx(&baseline, AccuracyTier::Integer), &config, 0)
            .expect("integer-tier evaluation succeeds");
        assert_eq!(
            float_point.accuracy, int_point.accuracy,
            "{dataset:?}: float tier {} != integer tier {}",
            float_point.accuracy, int_point.accuracy
        );
        // The tiers only differ in accuracy arithmetic; the hardware metrics
        // of the identically-minimized model must agree exactly.
        assert_eq!(float_point.area_mm2, int_point.area_mm2, "{dataset:?}");
        assert_eq!(float_point.gate_count, int_point.gate_count, "{dataset:?}");
    }
}

// ---------------------------------------------------------------------------
// Engine vs gate-level netlist on real minimized candidates.
// ---------------------------------------------------------------------------

/// The integer engine and full netlist simulation must agree on raw output
/// sums and argmax for models coming out of the real minimization pipeline
/// (not just the synthetic topologies the property tests build).
#[test]
fn engine_matches_netlist_on_real_minimized_candidates() {
    let baseline = quick_baseline(UciDataset::Seeds, 3);
    let configs = [
        MinimizationConfig::default().with_weight_bits(4),
        MinimizationConfig::default()
            .with_weight_bits(3)
            .with_clusters(3),
    ];
    for config in &configs {
        let design =
            evaluate_config_detailed(&quick_ctx(&baseline, AccuracyTier::Integer), config, 0)
                .expect("evaluation succeeds");
        let spec = circuit_spec_from_layers(&design.layers, baseline.input_bits)
            .expect("layers form a valid spec");
        let engine = IntInferEngine::from_spec_with(&spec, design.sharing).expect("engine builds");
        for &recoding in &[RecodingStrategy::Csd, RecodingStrategy::Binary] {
            let circuit = BespokeMlpCircuit::synthesize_with(
                &spec,
                &CellLibrary::egt(),
                design.sharing,
                recoding,
            )
            .expect("synthesis succeeds");
            let features = engine.input_count();
            for row in baseline.test_rows.chunks(features).take(16) {
                let wide: Vec<u64> = row.iter().map(|&v| u64::from(v)).collect();
                assert_eq!(
                    engine.outputs(row),
                    circuit.evaluate(&wide),
                    "sums diverge ({config:?}, {recoding:?})"
                );
                assert_eq!(
                    engine.classify_row(row),
                    circuit.classify(&wide),
                    "argmax diverges ({config:?}, {recoding:?})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Store round-trip: varint-decoded artifacts score identically.
// ---------------------------------------------------------------------------

/// Encoding the minimized layers into the store's varint artifact blob and
/// decoding them back must reproduce the layers exactly — and the decoded
/// copy must score the exact accuracy of the fresh one under the integer
/// engine.
#[test]
fn decoded_store_artifacts_score_identically_to_fresh_ones() {
    let baseline = quick_baseline(UciDataset::Vertebral, 5);
    let config = MinimizationConfig::default()
        .with_weight_bits(4)
        .with_clusters(4);
    let design = evaluate_config_detailed(&quick_ctx(&baseline, AccuracyTier::Integer), &config, 7)
        .expect("evaluation succeeds");

    let blob = encode_artifacts(&design.layers, design.sharing);
    let (layers, sharing) = decode_artifacts(&blob).expect("artifact blob decodes");
    assert_eq!(
        layers, design.layers,
        "layers survive the varint round-trip"
    );
    assert_eq!(sharing, design.sharing);

    let labels = baseline.test.labels();
    let fresh = integer_accuracy(
        &design.layers,
        baseline.input_bits,
        design.sharing,
        &baseline.test_rows,
        labels,
    )
    .expect("fresh layers score");
    let decoded = integer_accuracy(
        &layers,
        baseline.input_bits,
        sharing,
        &baseline.test_rows,
        labels,
    )
    .expect("decoded layers score");
    assert_eq!(fresh, decoded, "decoded artifact scores differently");
    assert_eq!(
        fresh, design.point.accuracy,
        "integer_accuracy disagrees with the evaluated design point"
    );
}

// ---------------------------------------------------------------------------
// Golden-vector corpus.
// ---------------------------------------------------------------------------

/// One committed golden file: which dataset/config produced it (only used
/// when regenerating) and the file name it lives under.
struct GoldenCase {
    dataset: UciDataset,
    seed: u64,
    config: MinimizationConfig,
    file: &'static str,
}

fn golden_cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            dataset: UciDataset::Seeds,
            seed: 11,
            config: MinimizationConfig::default().with_weight_bits(4),
            file: "seeds_w4.jsonl",
        },
        GoldenCase {
            dataset: UciDataset::Balance,
            seed: 12,
            config: MinimizationConfig::default()
                .with_weight_bits(3)
                .with_clusters(3),
            file: "balance_w3_c3.jsonl",
        },
        GoldenCase {
            dataset: UciDataset::Vertebral,
            seed: 13,
            config: MinimizationConfig::default()
                .with_weight_bits(5)
                .with_sparsity(0.4),
            file: "vertebral_w5_s40.jsonl",
        },
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("int_infer")
}

fn num(n: i64) -> Value {
    #[allow(clippy::cast_precision_loss)] // weights/biases/rows are far below 2^53
    Value::Number(n as f64)
}

fn as_i64(v: &Value) -> i64 {
    match v {
        #[allow(clippy::cast_possible_truncation)]
        Value::Number(n) => *n as i64,
        other => panic!("expected number, got {}", other.kind()),
    }
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        other => panic!("expected array, got {}", other.kind()),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn activation_name(activation: HwActivation) -> &'static str {
    match activation {
        HwActivation::ReLU => "relu",
        HwActivation::Identity => "identity",
        HwActivation::Argmax => "argmax",
    }
}

fn parse_activation(name: &str) -> HwActivation {
    match name {
        "relu" => HwActivation::ReLU,
        "identity" => HwActivation::Identity,
        "argmax" => HwActivation::Argmax,
        other => panic!("unknown activation {other:?} in golden header"),
    }
}

fn sharing_name(sharing: SharingStrategy) -> &'static str {
    match sharing {
        SharingStrategy::None => "none",
        SharingStrategy::SharedPerInput => "shared_per_input",
    }
}

fn parse_sharing(name: &str) -> SharingStrategy {
    match name {
        "none" => SharingStrategy::None,
        "shared_per_input" => SharingStrategy::SharedPerInput,
        other => panic!("unknown sharing strategy {other:?} in golden header"),
    }
}

/// Serializes the full spec into the header line so replay is self-contained.
fn header_line(name: &str, spec: &CircuitSpec, sharing: SharingStrategy) -> String {
    let layers: Vec<Value> = spec
        .layers
        .iter()
        .map(|layer| {
            obj(vec![
                ("weight_bits", num(i64::from(layer.weight_bits))),
                (
                    "activation",
                    Value::String(activation_name(layer.activation).into()),
                ),
                (
                    "weights",
                    Value::Array(
                        layer
                            .weights
                            .iter()
                            .map(|row| Value::Array(row.iter().map(|&w| num(w)).collect()))
                            .collect(),
                    ),
                ),
                (
                    "biases",
                    Value::Array(layer.biases.iter().map(|&b| num(b)).collect()),
                ),
            ])
        })
        .collect();
    obj(vec![
        ("name", Value::String(name.into())),
        ("input_bits", num(i64::from(spec.input_bits))),
        ("sharing", Value::String(sharing_name(sharing).into())),
        ("layers", Value::Array(layers)),
    ])
    .render_compact()
}

/// Rebuilds the circuit spec and sharing strategy from a golden header line.
fn parse_header(line: &str) -> (CircuitSpec, SharingStrategy) {
    let header = serde_json::parse(line).expect("golden header parses as JSON");
    let input_bits = u8::try_from(as_i64(header.field("input_bits").unwrap())).unwrap();
    let sharing = parse_sharing(header.field("sharing").unwrap().as_str().unwrap());
    let layers: Vec<LayerSpec> = as_array(header.field("layers").unwrap())
        .iter()
        .map(|layer| {
            let weights: Vec<Vec<i64>> = as_array(layer.field("weights").unwrap())
                .iter()
                .map(|row| as_array(row).iter().map(as_i64).collect())
                .collect();
            let biases: Vec<i64> = as_array(layer.field("biases").unwrap())
                .iter()
                .map(as_i64)
                .collect();
            let weight_bits = u8::try_from(as_i64(layer.field("weight_bits").unwrap())).unwrap();
            let activation = parse_activation(layer.field("activation").unwrap().as_str().unwrap());
            LayerSpec::with_biases(weights, biases, weight_bits, activation)
                .expect("golden layer is a valid spec")
        })
        .collect();
    let spec = CircuitSpec::new(input_bits, layers).expect("golden spec validates");
    (spec, sharing)
}

/// Regenerates the whole corpus from the minimization pipeline, using
/// gate-level netlist simulation as the ground truth for every argmax.
fn regenerate_golden_corpus() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("golden dir creates");
    for case in golden_cases() {
        let baseline = quick_baseline(case.dataset, case.seed);
        let design = evaluate_config_detailed(
            &quick_ctx(&baseline, AccuracyTier::Integer),
            &case.config,
            0,
        )
        .expect("evaluation succeeds");
        let spec = circuit_spec_from_layers(&design.layers, baseline.input_bits)
            .expect("layers form a valid spec");
        let circuit = BespokeMlpCircuit::synthesize_with(
            &spec,
            &CellLibrary::egt(),
            design.sharing,
            RecodingStrategy::Csd,
        )
        .expect("synthesis succeeds");

        let features = spec.input_count();
        let mut lines = vec![header_line(case.file, &spec, design.sharing)];
        for row in baseline.test_rows.chunks(features).take(32) {
            let wide: Vec<u64> = row.iter().map(|&v| u64::from(v)).collect();
            let expected = circuit.classify(&wide);
            lines.push(
                obj(vec![
                    (
                        "row",
                        Value::Array(row.iter().map(|&v| num(i64::from(v))).collect()),
                    ),
                    ("argmax", num(i64::try_from(expected).unwrap())),
                ])
                .render_compact(),
            );
        }
        let path = dir.join(case.file);
        std::fs::write(&path, lines.join("\n") + "\n").expect("golden file writes");
        println!("regenerated {}", path.display());
    }
}

/// Replays every committed golden file through the integer engine: per-row
/// classification and the batched kernel must both reproduce the argmax the
/// netlist simulation recorded.
#[test]
fn golden_vectors_replay_bit_exact() {
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        regenerate_golden_corpus();
    }
    let dir = golden_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("golden corpus missing at {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("dir entry reads").path();
            (path.extension().is_some_and(|ext| ext == "jsonl")).then_some(path)
        })
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no golden files under {}; run REGEN_GOLDEN=1 cargo test --test int_infer golden",
        dir.display()
    );

    for path in files {
        let text = std::fs::read_to_string(&path).expect("golden file reads");
        let mut lines = text.lines();
        let (spec, sharing) = parse_header(lines.next().expect("header line present"));
        let engine = IntInferEngine::from_spec_with(&spec, sharing).expect("engine builds");

        let mut rows: Vec<u16> = Vec::new();
        let mut expected: Vec<usize> = Vec::new();
        for (i, line) in lines.enumerate() {
            let record = serde_json::parse(line).expect("golden record parses");
            let row: Vec<u16> = as_array(record.field("row").unwrap())
                .iter()
                .map(|v| u16::try_from(as_i64(v)).unwrap())
                .collect();
            let argmax = usize::try_from(as_i64(record.field("argmax").unwrap())).unwrap();
            assert_eq!(
                engine.classify_row(&row),
                argmax,
                "{}: row {i} diverges from the recorded netlist argmax",
                path.display()
            );
            rows.extend_from_slice(&row);
            expected.push(argmax);
        }
        assert_eq!(
            engine.classify_batch(&rows),
            expected,
            "{}: batched kernel diverges from per-row classification",
            path.display()
        );
    }
}
