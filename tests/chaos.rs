//! Fault-injection chaos tests of the store/serve tier: a full `--quick`
//! campaign driven through a flapping TCP proxy produces the same science
//! and bit-reproducible artifacts as an unfaulted run, the shared server
//! ends up with every evaluation the worker computed (nothing is silently
//! lost), and a server killed and restarted mid-campaign is rejoined by the
//! circuit breaker with its missed writes replayed from the journal.

use printed_mlp::core::campaign::{Campaign, CampaignConfig, CampaignResult, CampaignRunStats};
use printed_mlp::core::engine::EvalKey;
use printed_mlp::core::experiment::{Effort, Figure1Experiment};
use printed_mlp::core::objective::{AccuracyTier, DesignPoint, SynthesisTier};
use printed_mlp::core::store::{
    open_backend_opts, BackendOptions, BreakerConfig, EvalRecord, LocalJsonlBackend, RemoteBackend,
    StoreBackend,
};
use printed_mlp::data::UciDataset;
use printed_mlp::minimize::MinimizationConfig;
use printed_mlp::serve::chaos::{ChaosConfig, ChaosProxy};
use printed_mlp::serve::{spawn, ServeConfig, ServerHandle};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SEED: u64 = 11;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pmlp-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A worker configuration tuned for chaos: the breaker's cooldown is zeroed
/// so a quick campaign (which finishes in well under the production 1 s
/// cooldown) probes a recovered server on its very next operation.
fn chaos_config(
    datasets: Vec<UciDataset>,
    local: &Path,
    remote: Option<String>,
    resume: bool,
) -> CampaignConfig {
    CampaignConfig {
        datasets,
        effort: Effort::Quick,
        seed: SEED,
        max_accuracy_loss: 0.05,
        objectives: Default::default(),
        accuracy_tier: printed_mlp::core::AccuracyTier::default(),
        store_dir: Some(local.to_path_buf()),
        remote_store: remote,
        remote_timeout_ms: Some(2_000),
        durability: Default::default(),
        remote_cooldown_ms: Some(0),
        resume,
        worker: None,
    }
}

fn run(config: CampaignConfig) -> (CampaignResult, CampaignRunStats) {
    Campaign::new(config).run_with_stats().unwrap()
}

/// The deduplicated evaluation-key set a server holds for `dataset` — the
/// campaign's record log is named after the dataset and bound to the trained
/// baseline's fingerprint. Retried appends whose first attempt actually
/// landed legitimately duplicate records server-side; identity is the key
/// set, not the record count.
fn server_keys(url: &str, dataset: UciDataset) -> HashSet<EvalKey> {
    let fingerprint = Figure1Experiment::new(dataset, Effort::Quick, SEED)
        .build_engine()
        .unwrap()
        .fingerprint();
    RemoteBackend::new(url)
        .unwrap()
        .scan(&dataset.to_string(), fingerprint)
        .unwrap()
        .records
        .into_iter()
        .map(|record| record.key)
        .collect()
}

/// Same key set, read from a worker's local write-through cache directory.
fn local_keys(dir: &Path, dataset: UciDataset) -> HashSet<EvalKey> {
    let fingerprint = Figure1Experiment::new(dataset, Effort::Quick, SEED)
        .build_engine()
        .unwrap()
        .fingerprint();
    LocalJsonlBackend::open(dir)
        .unwrap()
        .scan(&dataset.to_string(), fingerprint)
        .unwrap()
        .records
        .into_iter()
        .map(|record| record.key)
        .collect()
}

fn record(bits: u8, accuracy: f64) -> EvalRecord {
    EvalRecord {
        key: EvalKey {
            weight_bits: bits,
            sparsity_millis: u32::MAX,
            clusters: 0,
            input_bits: 4,
            fine_tune_epochs: 2,
            salt: 0xFEED_FACE_CAFE_BEEF,
            accuracy_tier: AccuracyTier::Integer,
        },
        tier: SynthesisTier::FastPath,
        point: DesignPoint {
            config: MinimizationConfig::default().with_weight_bits(bits),
            accuracy,
            area_mm2: 42.5,
            power_uw: 425.0,
            delay_us: 2.0,
            normalized_accuracy: accuracy / 0.9,
            normalized_area: 0.425,
            sparsity: 0.0,
            gate_count: 300,
        },
        artifacts: None,
    }
}

/// The tentpole acceptance contract: a full quick campaign driven through a
/// fault-injecting proxy (delays, connection resets, truncated and corrupted
/// responses, garbage bytes) finishes, reports the same science as an
/// unfaulted run, resumes bit-identically through the still-flapping proxy,
/// and loses not a single evaluation on the server behind the proxy.
#[test]
fn a_campaign_through_a_flapping_proxy_loses_nothing_and_matches_the_clean_run() {
    let datasets = vec![UciDataset::Seeds, UciDataset::Vertebral];

    // Clean reference: a direct, unfaulted worker against its own server.
    let clean_server = spawn(&ServeConfig::default()).unwrap();
    let clean_dir = temp_dir("clean");
    let (clean, clean_stats) = run(chaos_config(
        datasets.clone(),
        &clean_dir,
        Some(clean_server.url()),
        false,
    ));
    assert!(clean_stats.fresh_evaluations > 0, "clean run must compute");

    // Chaos run: same campaign, but every byte between worker and server
    // crosses the fault-injecting proxy with the default fault schedule.
    let chaos_server = spawn(&ServeConfig::default()).unwrap();
    let proxy = ChaosProxy::spawn(chaos_server.addr(), ChaosConfig::default()).unwrap();
    let chaos_dir = temp_dir("flaky");
    let (chaos, chaos_stats) = run(chaos_config(
        datasets.clone(),
        &chaos_dir,
        Some(proxy.url()),
        false,
    ));
    assert!(
        proxy.faults_injected() > 0,
        "the proxy must actually have misbehaved: {:?}",
        proxy.snapshot()
    );
    assert_eq!(chaos_stats.computed, datasets, "chaos run must complete");

    // Identical science: faults may cost retries and journal trips, but
    // never correctness. (Whole-report equality would compare wall-clock
    // fields; the science is the series, headlines and baselines.)
    for (a, b) in clean.reports.iter().zip(&chaos.reports) {
        assert_eq!(a.series, b.series, "{}: faulted series differ", a.name);
        assert_eq!(
            a.headline, b.headline,
            "{}: faulted headline differs",
            a.name
        );
        assert_eq!(a.baseline_accuracy, b.baseline_accuracy);
        assert_eq!(a.baseline_area_mm2, b.baseline_area_mm2);
        assert_eq!(a.evaluations, b.evaluations);
    }

    // Bit-reproducible artifacts: a --resume re-run of the chaos worker,
    // still through the flapping proxy, replays every report verbatim from
    // its completion markers and writes byte-identical artifact files.
    let artifacts_first = temp_dir("art-first");
    let artifacts_resumed = temp_dir("art-resumed");
    let first_paths = chaos.write_artifacts(&artifacts_first).unwrap();
    let (resumed, resumed_stats) = run(chaos_config(
        datasets.clone(),
        &chaos_dir,
        Some(proxy.url()),
        true,
    ));
    assert_eq!(resumed_stats.fresh_evaluations, 0, "resume must be warm");
    assert_eq!(resumed_stats.resumed, datasets);
    assert_eq!(resumed, chaos, "resumed reports must be verbatim");
    let resumed_paths = resumed.write_artifacts(&artifacts_resumed).unwrap();
    assert_eq!(first_paths.len(), resumed_paths.len());
    for (a, b) in first_paths.iter().zip(&resumed_paths) {
        assert_eq!(
            std::fs::read(a).unwrap(),
            std::fs::read(b).unwrap(),
            "artifact {} is not byte-identical across the chaos resume",
            a.file_name().unwrap().to_string_lossy()
        );
    }

    // Zero lost evaluations: behind the proxy, the chaos server holds the
    // exact evaluation-key set the clean server does — every append that a
    // fault interrupted was retried or journal-replayed to completion.
    for &dataset in &datasets {
        let clean_keys = server_keys(&clean_server.url(), dataset);
        let chaos_keys = server_keys(&chaos_server.url(), dataset);
        assert!(!clean_keys.is_empty());
        assert_eq!(
            clean_keys, chaos_keys,
            "{dataset:?}: the faulted server lost (or invented) evaluations"
        );
    }

    proxy.stop();
    clean_server.stop();
    chaos_server.stop();
    for dir in [&clean_dir, &chaos_dir, &artifacts_first, &artifacts_resumed] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// A disk-backed server killed after the first finished dataset and
/// restarted after the second: the breaker opens, writes journal locally,
/// the restarted process is rejoined by a half-open probe, and by the end of
/// the campaign the server holds every record the worker's local cache does.
#[test]
fn a_server_killed_and_restarted_mid_campaign_ends_with_every_record() {
    let datasets = vec![
        UciDataset::Seeds,
        UciDataset::Balance,
        UciDataset::Vertebral,
    ];
    let server_store = temp_dir("restart-server-store");
    let server = spawn(&ServeConfig {
        store_dir: Some(server_store.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let url = server.url();

    // The chaos operator rides the campaign's progress callback: the first
    // finished dataset takes the server down, the second brings a fresh
    // process back up on the same address and store directory. Whatever the
    // worker writes in between lands in the replay journal.
    struct Operator {
        fired: usize,
        server: Option<ServerHandle>,
    }
    let operator = Arc::new(Mutex::new(Operator {
        fired: 0,
        server: Some(server),
    }));
    let operator_for_campaign = Arc::clone(&operator);
    let respawn_store = server_store.clone();
    let local_dir = temp_dir("restart-local");
    let campaign = Campaign::new(chaos_config(
        datasets.clone(),
        &local_dir,
        Some(url.clone()),
        false,
    ))
    .with_progress(move |_report| {
        let mut operator = operator_for_campaign.lock().unwrap();
        operator.fired += 1;
        match operator.fired {
            1 => {
                if let Some(server) = operator.server.take() {
                    server.stop();
                }
            }
            2 => {
                operator.server = Some(
                    spawn(&ServeConfig {
                        addr: addr.to_string(),
                        store_dir: Some(respawn_store.clone()),
                        ..ServeConfig::default()
                    })
                    .expect("respawn on the same address"),
                );
            }
            _ => {}
        }
    });

    let (result, stats) = campaign.run_with_stats().unwrap();
    assert_eq!(stats.computed, datasets, "the outage must not fail the run");
    assert_eq!(result.reports.len(), datasets.len());
    {
        let operator = operator.lock().unwrap();
        assert_eq!(operator.fired, datasets.len());
        assert!(operator.server.is_some(), "the restarted server must be up");
    }

    // The worker's local tier is authoritative for what was computed; the
    // restarted server must have converged to the same key set — pre-kill
    // records from its on-disk store, outage-window records from the
    // journal replay, post-restart records live.
    for &dataset in &datasets {
        let local = local_keys(&local_dir, dataset);
        let remote = server_keys(&url, dataset);
        assert!(!local.is_empty());
        assert_eq!(
            local, remote,
            "{dataset:?}: the restarted server is missing records"
        );
    }

    if let Some(server) = operator.lock().unwrap().server.take() {
        server.stop();
    }
    std::fs::remove_dir_all(&server_store).ok();
    std::fs::remove_dir_all(&local_dir).ok();
}

/// The resilience counters of the composed backend tell the outage's story:
/// transient errors and retries while the link is down, journaled writes
/// while the breaker is open, a recovery plus a full replay once the link
/// returns — and every record on the server afterwards.
#[test]
fn an_outage_window_is_visible_in_the_resilience_counters() {
    let server = spawn(&ServeConfig::default()).unwrap();
    let quiet = ChaosConfig {
        delay_per_mille: 0,
        reset_per_mille: 0,
        truncate_per_mille: 0,
        garbage_per_mille: 0,
        corrupt_per_mille: 0,
        ..ChaosConfig::default()
    };
    let proxy = ChaosProxy::spawn(server.addr(), quiet).unwrap();
    let dir = temp_dir("counters");
    let backend = open_backend_opts(
        Some(&dir),
        Some(&proxy.url()),
        &BackendOptions {
            remote_timeout: Some(Duration::from_millis(2_000)),
            durability: Default::default(),
            breaker: Some(BreakerConfig {
                cooldown: Duration::ZERO,
                ..BreakerConfig::default()
            }),
        },
    )
    .unwrap()
    .unwrap();

    backend.append("Seeds", 0xAB, &record(3, 0.80)).unwrap();
    proxy.set_healthy(false);
    backend.append("Seeds", 0xAB, &record(4, 0.81)).unwrap();
    backend.append("Seeds", 0xAB, &record(5, 0.82)).unwrap();
    proxy.set_healthy(true);
    backend.append("Seeds", 0xAB, &record(6, 0.83)).unwrap();

    let resilience = backend.resilience().unwrap();
    assert!(resilience.breaker_opens >= 1, "{resilience:?}");
    assert!(resilience.breaker_recoveries >= 1, "{resilience:?}");
    assert_eq!(resilience.journaled_records, 2, "{resilience:?}");
    assert_eq!(resilience.replayed_records, 2, "{resilience:?}");
    assert_eq!(resilience.journal_dropped, 0, "{resilience:?}");
    assert!(resilience.transient_errors >= 1, "{resilience:?}");
    assert!(resilience.remote_retries >= 1, "{resilience:?}");

    let bits: HashSet<u8> = RemoteBackend::new(&server.url())
        .unwrap()
        .scan("Seeds", 0xAB)
        .unwrap()
        .records
        .iter()
        .map(|r| r.key.weight_bits)
        .collect();
    assert_eq!(bits, HashSet::from([3, 4, 5, 6]));

    proxy.stop();
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
