//! Reproduction of the paper's qualitative trends at reduced scale ("quick"
//! effort). The full-scale numbers are produced by the bench harness and
//! recorded in EXPERIMENTS.md; these tests pin the *shape* of the results so
//! regressions in any crate are caught by `cargo test --workspace`.

use printed_mlp::core::experiment::{headline_summary, Effort, Figure1Experiment};
use printed_mlp::core::pareto::area_gain_at_accuracy_loss;
use printed_mlp::core::sweep::Technique;
use printed_mlp::data::UciDataset;

#[test]
fn figure1_quick_seeds_reproduces_qualitative_trends() {
    let result = Figure1Experiment::new(UciDataset::Seeds, Effort::Quick, 17)
        .run()
        .unwrap();

    // All three techniques produce at least one design smaller than the
    // baseline (normalized area < 1).
    for (technique, points) in &result.raw_points {
        let min_area = points
            .iter()
            .map(|p| p.normalized_area)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_area < 1.0,
            "{technique:?} never shrank the circuit (min ratio {min_area})"
        );
    }

    // Quantization reaches deeper area reductions than pruning at the sparsity
    // levels the paper sweeps (its most aggressive point is smaller).
    let min_area = |t: Technique| {
        result
            .raw_points
            .iter()
            .find(|(tech, _)| *tech == t)
            .map(|(_, pts)| {
                pts.iter()
                    .map(|p| p.normalized_area)
                    .fold(f64::INFINITY, f64::min)
            })
            .unwrap()
    };
    assert!(
        min_area(Technique::Quantization) < min_area(Technique::Pruning),
        "quantization ({}) should reach smaller designs than pruning ({})",
        min_area(Technique::Quantization),
        min_area(Technique::Pruning)
    );

    // The headline summary produces one row per technique and the area gains,
    // where defined, are > 1x.
    let rows = headline_summary(&result, 0.05);
    assert_eq!(rows.len(), 3);
    for row in &rows {
        if let Some(gain) = row.area_gain {
            assert!(
                gain >= 1.0,
                "{} reported an area gain below 1x",
                row.technique
            );
        }
    }
}

#[test]
fn quantization_dominates_at_the_five_percent_threshold_on_redwine() {
    // RedWine is one of the two datasets where the paper reports every
    // technique (including clustering) meeting the 5% threshold.
    let result = Figure1Experiment::new(UciDataset::RedWine, Effort::Quick, 29)
        .run()
        .unwrap();
    let gain = |t: Technique| {
        result
            .raw_points
            .iter()
            .find(|(tech, _)| *tech == t)
            .and_then(|(_, pts)| area_gain_at_accuracy_loss(pts, result.baseline_accuracy, 0.05))
    };
    let quant = gain(Technique::Quantization);
    assert!(
        quant.is_some(),
        "quantization produced no design within 5% accuracy loss"
    );
    assert!(
        quant.unwrap() > 1.2,
        "quantization area gain {:?} too small",
        quant
    );
}
