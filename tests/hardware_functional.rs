//! Cross-crate functional verification: the gate-level bespoke circuit must
//! classify (essentially) identically to the quantized software model it was
//! synthesized from.

use printed_mlp::core::baseline::{BaselineConfig, BaselineDesign};
use printed_mlp::core::bridge::circuit_spec_from_layers;
use printed_mlp::data::UciDataset;
use printed_mlp::hw::constmul::RecodingStrategy;
use printed_mlp::hw::{BespokeMlpCircuit, CellLibrary, SharingStrategy};
use printed_mlp::minimize::{minimize, MinimizationConfig};
use printed_mlp::nn::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Quantizes a normalized feature vector to unsigned integer codes of
/// `input_bits` bits (the format the printed circuit's inputs arrive in).
fn quantize_inputs(row: &[f32], input_bits: u8) -> (Vec<u64>, Vec<f32>) {
    let levels = ((1_u32 << input_bits) - 1) as f32;
    let codes: Vec<u64> = row
        .iter()
        .map(|&x| (x.clamp(0.0, 1.0) * levels).round() as u64)
        .collect();
    let dequantized: Vec<f32> = codes.iter().map(|&c| c as f32 / levels).collect();
    (codes, dequantized)
}

#[test]
fn circuit_classification_matches_quantized_software_model() {
    let input_bits = 4;
    let baseline = BaselineDesign::train_with(
        UciDataset::Seeds,
        21,
        &BaselineConfig {
            epochs: 15,
            input_bits,
            ..BaselineConfig::default()
        },
    )
    .unwrap();

    // Minimize with quantization + pruning (no clustering, so the software
    // and hardware weight layouts are identical).
    let config = MinimizationConfig::default()
        .with_weight_bits(4)
        .with_sparsity(0.3)
        .with_input_bits(input_bits)
        .with_fine_tune_epochs(4);
    let mut rng = StdRng::seed_from_u64(99);
    let minimized = minimize(&baseline.model, &baseline.train, None, &config, &mut rng).unwrap();

    // Synthesize the bespoke circuit from the integer layers.
    let spec = circuit_spec_from_layers(&minimized.integer_layers, input_bits).unwrap();
    let circuit = BespokeMlpCircuit::synthesize_with(
        &spec,
        &CellLibrary::egt(),
        SharingStrategy::None,
        RecodingStrategy::Csd,
    )
    .unwrap();

    // Compare hardware and software decisions on a batch of test samples.
    let samples = baseline.test.len().min(60);
    let mut agreements = 0usize;
    for s in 0..samples {
        let row = baseline.test.features().row(s);
        let (codes, dequantized) = quantize_inputs(row, input_bits);
        let hw_class = circuit.classify(&codes);
        let x = Matrix::from_rows(&[dequantized]).unwrap();
        let sw_class = minimized.model.predict(&x).unwrap()[0];
        if hw_class == sw_class {
            agreements += 1;
        }
    }
    let agreement = agreements as f64 / samples as f64;
    // Ties between equal logits may break differently in floating point vs
    // integer arithmetic, so demand near-perfect rather than perfect match.
    assert!(
        agreement >= 0.9,
        "hardware/software agreement only {agreement:.2} over {samples} samples"
    );
}

#[test]
fn shared_and_unshared_circuits_agree_on_clustered_models() {
    let input_bits = 4;
    let baseline = BaselineDesign::train_with(
        UciDataset::Seeds,
        22,
        &BaselineConfig {
            epochs: 12,
            input_bits,
            ..BaselineConfig::default()
        },
    )
    .unwrap();
    let config = MinimizationConfig::default()
        .with_clusters(3)
        .with_input_bits(input_bits)
        .with_fine_tune_epochs(3);
    let mut rng = StdRng::seed_from_u64(123);
    let minimized = minimize(&baseline.model, &baseline.train, None, &config, &mut rng).unwrap();
    let spec = circuit_spec_from_layers(&minimized.integer_layers, input_bits).unwrap();

    let lib = CellLibrary::egt();
    let unshared = BespokeMlpCircuit::synthesize_with(
        &spec,
        &lib,
        SharingStrategy::None,
        RecodingStrategy::Csd,
    )
    .unwrap();
    let shared = BespokeMlpCircuit::synthesize_with(
        &spec,
        &lib,
        SharingStrategy::SharedPerInput,
        RecodingStrategy::Csd,
    )
    .unwrap();

    // Multiplier sharing changes the area, never the function.
    assert!(shared.area().total_mm2 <= unshared.area().total_mm2);
    for s in 0..baseline.test.len().min(30) {
        let (codes, _) = quantize_inputs(baseline.test.features().row(s), input_bits);
        assert_eq!(
            unshared.classify(&codes),
            shared.classify(&codes),
            "sample {s}"
        );
    }
}

#[test]
fn csd_and_binary_recoding_produce_identical_functions() {
    let input_bits = 4;
    let baseline = BaselineDesign::train_with(
        UciDataset::Seeds,
        23,
        &BaselineConfig {
            epochs: 10,
            input_bits,
            ..BaselineConfig::default()
        },
    )
    .unwrap();
    let config = MinimizationConfig::default()
        .with_weight_bits(4)
        .with_fine_tune_epochs(2);
    let mut rng = StdRng::seed_from_u64(7);
    let minimized = minimize(&baseline.model, &baseline.train, None, &config, &mut rng).unwrap();
    let spec = circuit_spec_from_layers(&minimized.integer_layers, input_bits).unwrap();

    let lib = CellLibrary::egt();
    let csd = BespokeMlpCircuit::synthesize_with(
        &spec,
        &lib,
        SharingStrategy::None,
        RecodingStrategy::Csd,
    )
    .unwrap();
    let binary = BespokeMlpCircuit::synthesize_with(
        &spec,
        &lib,
        SharingStrategy::None,
        RecodingStrategy::Binary,
    )
    .unwrap();
    for s in 0..baseline.test.len().min(30) {
        let (codes, _) = quantize_inputs(baseline.test.features().row(s), input_bits);
        assert_eq!(csd.evaluate(&codes), binary.evaluate(&codes), "sample {s}");
    }
}
