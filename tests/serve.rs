//! Integration tests of the networked evaluation-cache tier: campaign
//! workers sharing one `pmlp-serve` instance inherit each other's
//! evaluations, completion markers and GA checkpoints; a killed server
//! trips the worker's circuit breaker onto its local write-through cache
//! instead of failing it (see `tests/chaos.rs` for the recovery half:
//! restarted servers are rejoined and journaled writes replayed).

use printed_mlp::core::campaign::{Campaign, CampaignConfig, CampaignResult, CampaignRunStats};
use printed_mlp::core::experiment::{Effort, Figure2Experiment};
use printed_mlp::data::UciDataset;
use printed_mlp::serve::{spawn, ServeConfig};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pmlp-serve-worker-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn worker_config(
    datasets: Vec<UciDataset>,
    local: &Path,
    remote: Option<String>,
    resume: bool,
) -> CampaignConfig {
    CampaignConfig {
        datasets,
        effort: Effort::Quick,
        seed: 11,
        max_accuracy_loss: 0.05,
        objectives: Default::default(),
        accuracy_tier: printed_mlp::core::AccuracyTier::default(),
        store_dir: Some(local.to_path_buf()),
        remote_store: remote,
        remote_timeout_ms: None,
        durability: Default::default(),
        remote_cooldown_ms: None,
        resume,
        worker: None,
    }
}

fn run(config: CampaignConfig) -> (CampaignResult, CampaignRunStats) {
    Campaign::new(config).run_with_stats().unwrap()
}

/// The headline acceptance contract: two workers with *disjoint* local
/// caches share one server; the second worker recomputes nothing and its
/// artifacts are byte-identical to the first (cold) worker's.
#[test]
fn second_worker_on_a_shared_server_is_free_and_byte_identical() {
    let server = spawn(&ServeConfig::default()).unwrap();
    let datasets = vec![UciDataset::Seeds];
    let dir_a = temp_dir("shared-a");
    let dir_b = temp_dir("shared-b");
    let dir_c = temp_dir("shared-c");
    let artifacts_a = temp_dir("shared-art-a");
    let artifacts_b = temp_dir("shared-art-b");

    // Worker A: cold — computes everything, replicates records + markers.
    let (a, a_stats) = run(worker_config(
        datasets.clone(),
        &dir_a,
        Some(server.url()),
        false,
    ));
    assert!(a_stats.fresh_evaluations > 0, "worker A must compute");
    let paths_a = a.write_artifacts(&artifacts_a).unwrap();
    assert!(
        server.stats().records_appended > 0,
        "records must replicate"
    );
    assert!(server.stats().doc_puts > 0, "markers must replicate");

    // Worker B: fresh machine (empty local dir), same server, --resume
    // --require-warm semantics: zero fresh evaluations, markers stream in
    // from the server, artifacts byte-identical to the cold run.
    let (b, b_stats) = run(worker_config(
        datasets.clone(),
        &dir_b,
        Some(server.url()),
        true,
    ));
    assert_eq!(b_stats.fresh_evaluations, 0, "worker B must be fully warm");
    assert_eq!(b_stats.resumed, datasets);
    assert_eq!(b, a, "resumed reports must be verbatim");
    let paths_b = b.write_artifacts(&artifacts_b).unwrap();
    assert_eq!(paths_a.len(), paths_b.len());
    for (pa, pb) in paths_a.iter().zip(&paths_b) {
        assert_eq!(
            std::fs::read(pa).unwrap(),
            std::fs::read(pb).unwrap(),
            "artifact {} differs between the cold run and the shared-server worker",
            pa.file_name().unwrap().to_string_lossy()
        );
    }

    // Worker C: fresh machine, no --resume: it recomputes the sweeps, but
    // every single evaluation streams in from the server — zero misses.
    let (c, c_stats) = run(worker_config(
        datasets.clone(),
        &dir_c,
        Some(server.url()),
        false,
    ));
    assert_eq!(c_stats.computed, datasets);
    assert_eq!(
        c_stats.fresh_evaluations, 0,
        "remote records must warm worker C"
    );
    for (cold, warm) in a.reports.iter().zip(&c.reports) {
        assert_eq!(cold.series, warm.series);
        assert_eq!(cold.headline, warm.headline);
    }

    server.stop();
    for dir in [&dir_a, &dir_b, &dir_c, &artifacts_a, &artifacts_b] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// A server killed between (or during) runs degrades the worker to its local
/// write-through cache: the campaign still completes, still warm.
#[test]
fn killed_server_degrades_to_the_local_write_through_cache() {
    let server = spawn(&ServeConfig::default()).unwrap();
    let url = server.url();
    let datasets = vec![UciDataset::Seeds];
    let dir = temp_dir("degrade");

    // Cold run against the live server fills the local cache.
    let (first, first_stats) = run(worker_config(
        datasets.clone(),
        &dir,
        Some(url.clone()),
        false,
    ));
    assert!(first_stats.fresh_evaluations > 0);

    // Kill the server. The same worker re-runs with the dead URL: markers
    // and records answer from the local tier, nothing fails, zero fresh.
    server.stop();
    let (second, second_stats) = run(worker_config(
        datasets.clone(),
        &dir,
        Some(url.clone()),
        true,
    ));
    assert_eq!(second_stats.fresh_evaluations, 0);
    assert_eq!(second_stats.resumed, datasets);
    assert_eq!(second, first);

    // A completely fresh worker against the dead server simply computes
    // locally — degraded, not broken.
    let dir_fresh = temp_dir("degrade-fresh");
    let (third, third_stats) = run(worker_config(
        datasets.clone(),
        &dir_fresh,
        Some(url),
        false,
    ));
    assert!(
        third_stats.fresh_evaluations > 0,
        "dead remote => local compute"
    );
    for (a, b) in first.reports.iter().zip(&third.reports) {
        assert_eq!(a.series, b.series, "degraded science must match");
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir_fresh).ok();
}

/// GA checkpoints replicate through the server: a second worker's Fig. 2
/// search short-circuits from the first worker's finished checkpoint.
#[test]
fn ga_checkpoints_replicate_across_workers() {
    let server = spawn(&ServeConfig::default()).unwrap();
    let experiment = Figure2Experiment::new(UciDataset::Seeds, Effort::Quick, 21);
    let dir_a = temp_dir("ga-a");
    let dir_b = temp_dir("ga-b");

    let backend = |dir: &Path| {
        printed_mlp::core::store::open_backend(Some(dir), Some(&server.url()))
            .unwrap()
            .unwrap()
    };

    // Worker A runs the search, checkpointing into the tiered store.
    let engine_a = experiment
        .build_engine()
        .unwrap()
        .with_backend(backend(&dir_a))
        .unwrap();
    let result_a = experiment
        .run_with_checkpoint_doc(&engine_a, "fig2_seeds_nsga2.json")
        .unwrap();
    assert!(engine_a.stats().misses > 0, "worker A computes");

    // Worker B, fresh local tier: the finished checkpoint (and every record)
    // streams in from the server — the search replays without a single
    // fresh evaluation.
    let engine_b = experiment
        .build_engine()
        .unwrap()
        .with_backend(backend(&dir_b))
        .unwrap();
    let result_b = experiment
        .run_with_checkpoint_doc(&engine_b, "fig2_seeds_nsga2.json")
        .unwrap();
    assert_eq!(result_b.search, result_a.search);
    assert_eq!(engine_b.stats().misses, 0, "worker B must be fully warm");

    server.stop();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
