//! Integration tests of the persistence layer: the kill/resume contract of
//! campaigns (zero fresh evaluations and byte-identical artifacts on a warm
//! store) and exact NSGA-II resumption through a real engine.

use printed_mlp::core::campaign::{Campaign, CampaignConfig};
use printed_mlp::core::experiment::{Effort, Figure2Experiment};
use printed_mlp::core::Evaluator;
use printed_mlp::data::UciDataset;
use printed_mlp::minimize::MinimizationConfig;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pmlp-store-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn store_campaign(datasets: Vec<UciDataset>, store: &Path, resume: bool) -> Campaign {
    Campaign::new(CampaignConfig {
        datasets,
        effort: Effort::Quick,
        seed: 11,
        max_accuracy_loss: 0.05,
        objectives: Default::default(),
        accuracy_tier: printed_mlp::core::AccuracyTier::default(),
        store_dir: Some(store.to_path_buf()),
        remote_store: None,
        remote_timeout_ms: None,
        durability: Default::default(),
        remote_cooldown_ms: None,
        resume,
        worker: None,
    })
}

/// The headline acceptance contract: run a quick campaign to completion with
/// a store, then re-run on the warm store and observe (a) zero fresh
/// evaluations and (b) byte-identical artifact JSON.
#[test]
fn warm_store_campaign_rerun_is_free_and_byte_identical() {
    let store = temp_dir("campaign-store");
    let artifacts_first = temp_dir("campaign-artifacts-1");
    let artifacts_second = temp_dir("campaign-artifacts-2");
    let datasets = vec![UciDataset::Seeds, UciDataset::Vertebral];

    // Cold run: everything is computed and persisted.
    let (first, first_stats) = store_campaign(datasets.clone(), &store, false)
        .run_with_stats()
        .unwrap();
    assert!(first_stats.fresh_evaluations > 0, "cold run must compute");
    let first_paths = first.write_artifacts(&artifacts_first).unwrap();

    // Warm re-run with --resume: every dataset restarts from its completion
    // marker; zero evaluations, byte-identical artifacts.
    let (second, second_stats) = store_campaign(datasets.clone(), &store, true)
        .run_with_stats()
        .unwrap();
    assert_eq!(second_stats.fresh_evaluations, 0);
    assert_eq!(second_stats.resumed, datasets);
    assert_eq!(second_stats.computed, Vec::new());
    let second_paths = second.write_artifacts(&artifacts_second).unwrap();
    assert_eq!(first_paths.len(), second_paths.len());
    for (a, b) in first_paths.iter().zip(&second_paths) {
        assert_eq!(
            std::fs::read(a).unwrap(),
            std::fs::read(b).unwrap(),
            "artifact {} differs between the uninterrupted and resumed run",
            a.file_name().unwrap().to_string_lossy()
        );
    }

    // Even with the markers out of the picture (resume off), the warm store
    // answers every single evaluation: EngineStats.misses == 0 everywhere.
    let (third, third_stats) = store_campaign(datasets.clone(), &store, false)
        .run_with_stats()
        .unwrap();
    assert_eq!(third_stats.fresh_evaluations, 0);
    for report in &third.reports {
        assert_eq!(
            report.evaluations, 0,
            "{}: warm-store rerun must have zero cache misses",
            report.name
        );
    }
    // The recomputed science agrees with the cold run (only run-local cache
    // statistics and timing may differ).
    for (cold, warm) in first.reports.iter().zip(&third.reports) {
        assert_eq!(cold.series, warm.series);
        assert_eq!(cold.headline, warm.headline);
        assert_eq!(cold.baseline_accuracy, warm.baseline_accuracy);
        assert_eq!(cold.baseline_area_mm2, warm.baseline_area_mm2);
    }

    for dir in [&store, &artifacts_first, &artifacts_second] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// An interrupted campaign (one dataset finished, then the process "dies")
/// resumes with only the unfinished dataset and still produces the same
/// result as an uninterrupted run.
#[test]
fn interrupted_campaign_restarts_only_the_unfinished_datasets() {
    let store = temp_dir("campaign-interrupt");
    let datasets = vec![UciDataset::Seeds, UciDataset::Mammographic];

    // Uninterrupted reference (no store: independent computation).
    let reference = Campaign::new(CampaignConfig {
        datasets: datasets.clone(),
        effort: Effort::Quick,
        seed: 11,
        max_accuracy_loss: 0.05,
        ..CampaignConfig::default()
    })
    .run()
    .unwrap();

    // "Crash" after the first dataset: run a one-dataset campaign, as if the
    // process died before reaching the second.
    store_campaign(vec![datasets[0]], &store, false)
        .run()
        .unwrap();

    // The restarted full campaign resumes the finished dataset from its
    // marker and computes only the second one.
    let (resumed, stats) = store_campaign(datasets.clone(), &store, true)
        .run_with_stats()
        .unwrap();
    assert_eq!(stats.resumed, vec![datasets[0]]);
    assert_eq!(stats.computed, vec![datasets[1]]);

    // Identical science, dataset by dataset (run-local stats/timing aside).
    for (a, b) in reference.reports.iter().zip(&resumed.reports) {
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.series, b.series);
        assert_eq!(a.headline, b.headline);
    }
    std::fs::remove_dir_all(&store).ok();
}

/// Persisted finalization artifacts: a store-warmed Pareto finalist runs
/// full gate-level synthesis directly from the persisted integer layers,
/// without re-running the minimization pipeline — and a PR-4-era record
/// (no artifact blob) still finalizes via exactly one re-run.
#[test]
fn store_warmed_finalists_finalize_without_re_minimization() {
    use printed_mlp::core::baseline::BaselineConfig;
    use printed_mlp::core::engine::EvalEngine;

    let dir = temp_dir("finalize-warm");
    let config = MinimizationConfig::default().with_weight_bits(4);
    let budget = BaselineConfig {
        epochs: 10,
        ..BaselineConfig::default()
    };
    let build = || {
        EvalEngine::train_with(UciDataset::Seeds, 11, &budget)
            .unwrap()
            .with_fine_tune_epochs(2)
            .with_store(&dir)
            .unwrap()
    };

    // Cold engine: evaluate + finalize; artifacts are computed in-process.
    let engine = build();
    let reference = engine.finalize(&config).unwrap();
    assert!(reference.matches_fast_path);
    assert_eq!(engine.stats().finalize_reruns, 0);
    let store_path = engine.store().unwrap().path().expect("local store");
    drop(engine);

    // Fresh engine: the record (artifacts included) warm-starts the cache;
    // finalization must not re-run minimization.
    let engine = build();
    assert_eq!(engine.stats().warmed, 1);
    let finalized = engine.finalize(&config).unwrap();
    assert_eq!(engine.stats().misses, 0, "evaluation must be warm");
    assert_eq!(
        engine.stats().finalize_reruns,
        0,
        "persisted layers must skip the minimization re-run"
    );
    assert!(finalized.matches_fast_path);
    assert_eq!(finalized.point, reference.point);
    assert_eq!(finalized.full, reference.full);
    drop(engine);

    // Strip the artifact blobs, simulating a record log written before
    // artifact persistence: finalization still reproduces the reference,
    // paying exactly one minimization re-run.
    let text = std::fs::read_to_string(&store_path).unwrap();
    let stripped: String = text
        .lines()
        .map(|line| match line.find(",\"artifacts\":\"") {
            Some(cut) => format!("{}}}\n", &line[..cut]),
            None => format!("{line}\n"),
        })
        .collect();
    std::fs::write(&store_path, stripped).unwrap();

    let engine = build();
    assert_eq!(engine.stats().warmed, 1);
    let finalized = engine.finalize(&config).unwrap();
    assert_eq!(engine.stats().misses, 0);
    assert_eq!(
        engine.stats().finalize_reruns,
        1,
        "a blob-less record must fall back to one re-run"
    );
    assert!(finalized.matches_fast_path);
    assert_eq!(finalized.point, reference.point);
    std::fs::remove_dir_all(&dir).ok();
}

/// `EvalStore::gc` against a real campaign store: live fingerprints survive,
/// a dead baseline's logs and markers disappear.
#[test]
fn gc_prunes_a_real_campaign_store() {
    use printed_mlp::core::store::{EvalStore, GcPolicy};

    let store = temp_dir("gc-campaign");
    let datasets = vec![UciDataset::Seeds];

    // Two campaigns with different seeds: two baselines' worth of files.
    store_campaign(datasets.clone(), &store, false)
        .run()
        .unwrap();
    let mut other = CampaignConfig {
        datasets: datasets.clone(),
        effort: Effort::Quick,
        seed: 12,
        max_accuracy_loss: 0.05,
        objectives: Default::default(),
        accuracy_tier: printed_mlp::core::AccuracyTier::default(),
        store_dir: Some(store.to_path_buf()),
        remote_store: None,
        remote_timeout_ms: None,
        durability: Default::default(),
        remote_cooldown_ms: None,
        resume: false,
        worker: None,
    };
    let other_campaign = Campaign::new(other.clone());
    other_campaign.run().unwrap();
    let live_fp = other_campaign
        .build_engine(UciDataset::Seeds)
        .unwrap()
        .fingerprint();

    let files_before = std::fs::read_dir(&store).unwrap().count();
    let report = EvalStore::gc(&store, &[live_fp], &GcPolicy::default()).unwrap();
    assert_eq!(report.files_kept, 1, "one live record log");
    assert!(report.files_dropped >= 2, "dead log + dead marker");
    assert!(std::fs::read_dir(&store).unwrap().count() < files_before);

    // The surviving store still resumes the live campaign with zero work.
    other.resume = true;
    let (_, stats) = Campaign::new(other).run_with_stats().unwrap();
    assert_eq!(stats.fresh_evaluations, 0);
    assert_eq!(stats.resumed, datasets);
    std::fs::remove_dir_all(&store).ok();
}

/// NSGA-II through a real engine: a search interrupted mid-run (simulated by
/// an evaluator whose budget runs out) resumes from its checkpoint and
/// reproduces the uninterrupted `SearchResult` exactly.
#[test]
fn interrupted_fig2_search_resumes_to_the_identical_result() {
    use printed_mlp::core::engine::EvalEngine;
    use printed_mlp::core::{CoreError, DesignPoint};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let store = temp_dir("fig2-resume");
    let experiment = Figure2Experiment::new(UciDataset::Seeds, Effort::Quick, 21);

    // Uninterrupted reference run on a plain engine.
    let reference = experiment
        .run_with(&experiment.build_engine().unwrap())
        .unwrap();

    /// Fails every evaluation once the budget is spent.
    struct DyingEngine {
        inner: EvalEngine,
        remaining: AtomicUsize,
    }
    impl Evaluator for DyingEngine {
        fn evaluate(&self, config: &MinimizationConfig) -> Result<DesignPoint, CoreError> {
            let left = self.remaining.fetch_sub(1, Ordering::SeqCst);
            if left == 0 || left > usize::MAX / 2 {
                self.remaining.store(0, Ordering::SeqCst);
                return Err(CoreError::Nn {
                    context: "simulated crash".into(),
                });
            }
            self.inner.evaluate(config)
        }
    }

    // Kill the engine one evaluation short of what the search needs: the
    // crash is guaranteed, and it lands as deep into the run as possible.
    let budget = reference.search.all_points.len() - 1;
    let checkpoint = store.join("fig2_seeds_nsga2.json");
    let dying = DyingEngine {
        inner: experiment
            .build_engine()
            .unwrap()
            .with_store(&store)
            .unwrap(),
        remaining: AtomicUsize::new(budget),
    };
    let mut ga_config = Effort::Quick.nsga2_config();
    ga_config.seed ^= 21;
    let searcher = printed_mlp::core::Nsga2::new(ga_config);
    let crash = searcher.run_resumable(&dying, &checkpoint);
    assert!(crash.is_err(), "the simulated crash must surface");

    // Fresh process: same store (warm evaluations) + same checkpoint.
    let engine = experiment
        .build_engine()
        .unwrap()
        .with_store(&store)
        .unwrap();
    let resumed = searcher.run_resumable(&engine, &checkpoint).unwrap();
    assert_eq!(
        resumed, reference.search,
        "resumed search must equal the uninterrupted one"
    );
    std::fs::remove_dir_all(&store).ok();
}
