//! End-to-end integration tests across all crates: dataset generation,
//! baseline training, minimization, hardware synthesis and search.

use printed_mlp::core::baseline::{BaselineConfig, BaselineDesign};
use printed_mlp::core::objective::{evaluate_config, EvaluationContext};
use printed_mlp::core::pareto::pareto_front;
use printed_mlp::data::UciDataset;
use printed_mlp::minimize::MinimizationConfig;

fn quick_baseline(dataset: UciDataset, seed: u64) -> BaselineDesign {
    BaselineDesign::train_with(
        dataset,
        seed,
        &BaselineConfig {
            epochs: 15,
            ..BaselineConfig::default()
        },
    )
    .expect("baseline training succeeds")
}

#[test]
fn baseline_seeds_classifier_beats_chance_and_synthesizes() {
    let baseline = quick_baseline(UciDataset::Seeds, 1);
    assert!(
        baseline.accuracy() > 0.6,
        "accuracy {}",
        baseline.accuracy()
    );
    assert!(baseline.area_mm2() > 1.0);
    assert!(baseline.synthesis.gate_count > 100);
    assert!(baseline.synthesis.power_uw > 0.0);
    assert!(baseline.synthesis.critical_path_us > 0.0);
}

#[test]
fn quantization_shrinks_the_circuit_with_bounded_accuracy_loss() {
    let baseline = quick_baseline(UciDataset::Seeds, 2);
    let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(4);
    let point =
        evaluate_config(&ctx, &MinimizationConfig::default().with_weight_bits(4), 0).unwrap();
    assert!(
        point.normalized_area < 0.75,
        "4-bit area ratio {}",
        point.normalized_area
    );
    assert!(
        baseline.accuracy() - point.accuracy < 0.25,
        "4-bit QAT lost too much accuracy: {} -> {}",
        baseline.accuracy(),
        point.accuracy
    );
}

#[test]
fn combining_techniques_is_smaller_than_each_standalone() {
    let baseline = quick_baseline(UciDataset::Seeds, 3);
    let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(3);

    let quant =
        evaluate_config(&ctx, &MinimizationConfig::default().with_weight_bits(4), 0).unwrap();
    let prune =
        evaluate_config(&ctx, &MinimizationConfig::default().with_sparsity(0.4), 0).unwrap();
    let combined = evaluate_config(
        &ctx,
        &MinimizationConfig::default()
            .with_weight_bits(4)
            .with_sparsity(0.4),
        0,
    )
    .unwrap();
    assert!(
        combined.area_mm2 < quant.area_mm2,
        "combined not smaller than quantization alone"
    );
    assert!(
        combined.area_mm2 < prune.area_mm2,
        "combined not smaller than pruning alone"
    );
}

#[test]
fn clustering_with_sharing_reduces_area_versus_baseline() {
    let baseline = quick_baseline(UciDataset::Seeds, 4);
    let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(3);
    let clustered =
        evaluate_config(&ctx, &MinimizationConfig::default().with_clusters(3), 0).unwrap();
    assert!(
        clustered.normalized_area < 1.0,
        "clustered area ratio {} should be below baseline",
        clustered.normalized_area
    );
}

#[test]
fn pareto_front_of_mixed_configs_is_consistent() {
    let baseline = quick_baseline(UciDataset::Seeds, 5);
    let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(2);
    let configs = [
        MinimizationConfig::baseline(),
        MinimizationConfig::default().with_weight_bits(3),
        MinimizationConfig::default().with_weight_bits(6),
        MinimizationConfig::default().with_sparsity(0.5),
        MinimizationConfig::default()
            .with_weight_bits(3)
            .with_sparsity(0.5),
    ];
    let points: Vec<_> = configs
        .iter()
        .map(|c| evaluate_config(&ctx, c, 0).unwrap())
        .collect();
    let front = pareto_front(&points);
    assert!(!front.is_empty());
    assert!(front.len() <= points.len());
    // No front member is dominated by any evaluated point.
    for f in &front {
        for p in &points {
            assert!(!printed_mlp::core::pareto::dominates(p, f));
        }
    }
}

#[test]
fn evaluations_are_reproducible_across_runs() {
    let baseline_a = quick_baseline(UciDataset::Seeds, 6);
    let baseline_b = quick_baseline(UciDataset::Seeds, 6);
    let config = MinimizationConfig::default()
        .with_weight_bits(4)
        .with_sparsity(0.3);
    let a = evaluate_config(
        &EvaluationContext::new(&baseline_a).with_fine_tune_epochs(2),
        &config,
        1,
    )
    .unwrap();
    let b = evaluate_config(
        &EvaluationContext::new(&baseline_b).with_fine_tune_epochs(2),
        &config,
        1,
    )
    .unwrap();
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.area_mm2, b.area_mm2);
    assert_eq!(a.gate_count, b.gate_count);
}
