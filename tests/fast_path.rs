//! Integration tests of the two-tier evaluation scheme: the analytic
//! fast-path cost model must be indistinguishable from full gate-level
//! synthesis everywhere the search can observe it, and the engine must
//! account for which tier every evaluation ran through.

use printed_mlp::core::baseline::BaselineConfig;
use printed_mlp::core::engine::{EvalEngine, Evaluator};
use printed_mlp::core::objective::SynthesisTier;
use printed_mlp::data::UciDataset;
use printed_mlp::minimize::MinimizationConfig;

fn quick_engine(tier: SynthesisTier) -> EvalEngine {
    EvalEngine::train_with(
        UciDataset::Seeds,
        13,
        &BaselineConfig {
            epochs: 10,
            ..BaselineConfig::default()
        },
    )
    .unwrap()
    .with_fine_tune_epochs(2)
    .with_synthesis_tier(tier)
}

fn candidate_configs() -> Vec<MinimizationConfig> {
    vec![
        MinimizationConfig::baseline(),
        MinimizationConfig::default().with_weight_bits(3),
        MinimizationConfig::default().with_weight_bits(6),
        MinimizationConfig::default().with_sparsity(0.5),
        MinimizationConfig::default().with_clusters(3),
        MinimizationConfig::default()
            .with_weight_bits(4)
            .with_sparsity(0.4)
            .with_clusters(4),
    ]
}

#[test]
fn fast_path_engine_reproduces_full_synthesis_engine_exactly() {
    let fast = quick_engine(SynthesisTier::FastPath);
    let full = quick_engine(SynthesisTier::FullSynthesis);
    assert_eq!(fast.synthesis_tier(), SynthesisTier::FastPath);
    for config in candidate_configs() {
        let a = fast.evaluate(&config).unwrap();
        let b = full.evaluate(&config).unwrap();
        assert_eq!(a, b, "tier divergence for {}", config.describe());
    }
    let stats_fast = fast.stats();
    let stats_full = full.stats();
    assert_eq!(stats_fast.fast_path, candidate_configs().len());
    assert_eq!(stats_fast.full_synthesis, 0);
    assert_eq!(stats_full.fast_path, 0);
    assert_eq!(stats_full.full_synthesis, candidate_configs().len());
}

#[test]
fn finalize_verifies_the_fast_path_against_a_real_netlist() {
    let engine = quick_engine(SynthesisTier::FastPath);
    for config in candidate_configs() {
        let finalized = engine.finalize(&config).unwrap();
        assert!(
            finalized.matches_fast_path,
            "full synthesis diverged from the fast path for {}",
            config.describe()
        );
        assert_eq!(finalized.full.area_mm2, finalized.point.area_mm2);
        assert_eq!(finalized.full.power_uw, finalized.point.power_uw);
        assert_eq!(finalized.full.gate_count, finalized.point.gate_count);
    }
    let stats = engine.stats();
    // Every candidate went through the fast path once and full synthesis once
    // (the finalist verification).
    assert_eq!(stats.fast_path, candidate_configs().len());
    assert_eq!(stats.full_synthesis, candidate_configs().len());
    // Finalization reuses the cached minimized layers instead of re-running
    // the pipeline.
    assert_eq!(stats.misses, candidate_configs().len());
}

#[test]
fn multiplier_cache_fills_and_reports_hits() {
    let engine = quick_engine(SynthesisTier::FastPath);
    let _ = engine
        .evaluate(&MinimizationConfig::default().with_weight_bits(5))
        .unwrap();
    let stats = engine.stats();
    let total = stats.multiplier_cache_hits + stats.multiplier_cache_misses;
    assert!(total > 0, "fast path must consult the multiplier cache");
    // Weight codes repeat heavily inside one circuit, so hits dominate.
    assert!(
        stats.multiplier_cache_hit_rate() > 0.5,
        "hit rate {}",
        stats.multiplier_cache_hit_rate()
    );
}

#[test]
fn quick_baseline_fast_path_matches_full_synthesis_baseline() {
    use printed_mlp::core::experiment::Effort;
    // The Quick effort characterizes the baseline circuit through the fast
    // path; the numbers must equal a full-synthesis characterization.
    let quick_cfg = Effort::Quick.baseline_config();
    assert_eq!(quick_cfg.synthesis_tier, SynthesisTier::FastPath);
    let full_cfg = BaselineConfig {
        synthesis_tier: SynthesisTier::FullSynthesis,
        ..quick_cfg.clone()
    };
    let a = printed_mlp::core::baseline::BaselineDesign::train_with(
        UciDataset::Vertebral,
        3,
        &quick_cfg,
    )
    .unwrap();
    let b = printed_mlp::core::baseline::BaselineDesign::train_with(
        UciDataset::Vertebral,
        3,
        &full_cfg,
    )
    .unwrap();
    assert_eq!(a.synthesis, b.synthesis);
    assert_eq!(a.accuracy, b.accuracy);
}
