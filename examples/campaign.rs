//! Cross-dataset campaign walkthrough: sweep three small datasets at quick
//! effort, print the aggregate paper-style table and the per-technique
//! cross-dataset averages.
//!
//! Run with `cargo run --release --example campaign`. The full-registry,
//! paper-budget version is the `campaign` binary:
//! `cargo run --release -p pmlp-bench --bin campaign -- all`.

use printed_mlp::core::campaign::{Campaign, CampaignConfig};
use printed_mlp::core::experiment::Effort;
use printed_mlp::core::report::render_campaign_table;
use printed_mlp::data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== printed-mlp campaign: Seeds + Balance + Vertebral ==");

    let config = CampaignConfig {
        datasets: vec![
            UciDataset::Seeds,
            UciDataset::Balance,
            UciDataset::Vertebral,
        ],
        effort: Effort::Quick,
        seed: 42,
        max_accuracy_loss: 0.05,
        ..CampaignConfig::default()
    };
    let campaign = Campaign::new(config).with_progress(|report| {
        println!(
            "  {} finished: baseline {:.1}%, {} evaluations in {:.1}s",
            report.name,
            report.baseline_accuracy * 100.0,
            report.evaluations,
            report.elapsed_secs
        );
    });

    let result = campaign.run()?;
    println!("\n{}", render_campaign_table(&result));

    // Every report carries its Pareto fronts, so downstream tooling can dig
    // into any dataset the table summarizes.
    for report in &result.reports {
        let front_sizes: Vec<usize> = report.series.iter().map(|s| s.points.len()).collect();
        println!(
            "{}: Pareto front sizes per technique {:?}",
            report.name, front_sizes
        );
    }
    Ok(())
}
