//! Quickstart: train a printed Seeds classifier, minimize it with 4-bit
//! quantization + 40 % pruning, and compare the bespoke circuit against the
//! un-minimized baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use printed_mlp::core::engine::{EvalEngine, Evaluator};
use printed_mlp::data::UciDataset;
use printed_mlp::minimize::MinimizationConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== printed-mlp quickstart: Seeds classifier ==");

    // 1. Train the float model and characterize the un-minimized bespoke
    //    baseline (8-bit weights, one multiplier per connection).
    let engine = EvalEngine::train(UciDataset::Seeds, 42)?;
    let baseline = engine.baseline();
    println!(
        "baseline: accuracy {:.1}%, area {:.1} mm2, power {:.1} uW, {} gates",
        baseline.accuracy() * 100.0,
        baseline.area_mm2(),
        baseline.synthesis.power_uw,
        baseline.synthesis.gate_count,
    );

    // 2. Minimize: 4-bit quantization-aware training plus 40 % unstructured
    //    pruning, then re-synthesize the bespoke circuit.
    let config = MinimizationConfig::default()
        .with_weight_bits(4)
        .with_sparsity(0.4);
    let point = engine.evaluate(&config)?;

    println!(
        "minimized ({}): accuracy {:.1}%, area {:.1} mm2 ({:.2}x smaller), sparsity {:.0}%",
        point.config.describe(),
        point.accuracy * 100.0,
        point.area_mm2,
        point.area_gain(),
        point.sparsity * 100.0,
    );
    println!(
        "accuracy change vs baseline: {:+.1} points",
        (point.accuracy - baseline.accuracy()) * 100.0
    );

    // 3. Re-evaluating the same configuration is free: the engine memoizes.
    let again = engine.evaluate(&config)?;
    assert_eq!(again, point);
    println!("second evaluation of {} was a cache hit", config.describe());
    Ok(())
}
