//! A printed smart-sensor scenario: a disposable wine-quality tag.
//!
//! The motivating application of the paper is classification on low-cost
//! consumer goods. This example builds a RedWine quality classifier, explores
//! the three minimization techniques standalone, and prints the kind of
//! area/power budget analysis a printed-electronics designer would run before
//! committing a design to fabrication (printed batteries deliver on the order
//! of a few mW; large-area circuits above a few hundred mm² do not fit on a
//! bottle label).
//!
//! Run with `cargo run --release --example printed_sensor`.

use printed_mlp::core::baseline::BaselineConfig;
use printed_mlp::core::engine::{EvalEngine, Evaluator};
use printed_mlp::core::pareto::pareto_front;
use printed_mlp::data::UciDataset;
use printed_mlp::minimize::MinimizationConfig;

/// Power budget of a typical printed battery driving the tag, in µW.
const POWER_BUDGET_UW: f64 = 2_000.0;
/// Area budget of the label, in mm².
const AREA_BUDGET_MM2: f64 = 600.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== disposable wine-quality tag (RedWine classifier) ==");
    let engine = EvalEngine::train_with(
        UciDataset::RedWine,
        7,
        &BaselineConfig {
            epochs: 40,
            ..BaselineConfig::default()
        },
    )?;
    let baseline = engine.baseline();
    println!(
        "un-minimized bespoke MLP: accuracy {:.1}%, area {:.0} mm2, power {:.0} uW",
        baseline.accuracy() * 100.0,
        baseline.area_mm2(),
        baseline.synthesis.power_uw,
    );
    let fits =
        baseline.area_mm2() <= AREA_BUDGET_MM2 && baseline.synthesis.power_uw <= POWER_BUDGET_UW;
    println!("fits the label budget ({AREA_BUDGET_MM2} mm2, {POWER_BUDGET_UW} uW)? {fits}");

    // Candidate minimization configurations a designer would consider.
    let candidates = vec![
        MinimizationConfig::default().with_weight_bits(4),
        MinimizationConfig::default().with_weight_bits(3),
        MinimizationConfig::default().with_sparsity(0.5),
        MinimizationConfig::default().with_clusters(3),
        MinimizationConfig::default()
            .with_weight_bits(4)
            .with_sparsity(0.4),
        MinimizationConfig::default()
            .with_weight_bits(3)
            .with_sparsity(0.5)
            .with_clusters(3),
    ];

    // One parallel, memoized batch through the shared evaluation engine.
    let points = engine.evaluate_batch(&candidates)?;
    for point in &points {
        println!(
            "  {:<22} accuracy {:>5.1}%  area {:>7.1} mm2 ({:>4.2}x)  power {:>7.1} uW",
            point.config.describe(),
            point.accuracy * 100.0,
            point.area_mm2,
            point.area_gain(),
            point.power_uw,
        );
    }

    println!("\nPareto-optimal choices under the label budget:");
    for point in pareto_front(&points) {
        if point.area_mm2 <= AREA_BUDGET_MM2 && point.power_uw <= POWER_BUDGET_UW {
            println!(
                "  {:<22} accuracy {:>5.1}%  area {:>7.1} mm2  power {:>7.1} uW  -> viable tag",
                point.config.describe(),
                point.accuracy * 100.0,
                point.area_mm2,
                point.power_uw,
            );
        }
    }
    Ok(())
}
