//! Hardware-aware design-space exploration with the NSGA-II genetic algorithm
//! (the experiment behind Fig. 2 of the paper), on the WhiteWine classifier.
//!
//! Run with `cargo run --release --example design_space_exploration`.
//! Pass a dataset name (`whitewine`, `redwine`, `pendigits`, `seeds`) as the
//! first argument to explore a different classifier.

use printed_mlp::core::baseline::BaselineConfig;
use printed_mlp::core::engine::EvalEngine;
use printed_mlp::core::{Nsga2, Nsga2Config};
use printed_mlp::data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = std::env::args()
        .nth(1)
        .map(|name| UciDataset::parse(&name))
        .transpose()?
        .unwrap_or(UciDataset::WhiteWine);

    println!("== hardware-aware GA exploration on {dataset} ==");
    let engine = EvalEngine::train_with(
        dataset,
        13,
        &BaselineConfig {
            epochs: 40,
            ..BaselineConfig::default()
        },
    )?
    .with_fine_tune_epochs(6);
    println!(
        "baseline: accuracy {:.1}%, area {:.0} mm2",
        engine.baseline().accuracy() * 100.0,
        engine.baseline().area_mm2()
    );

    let ga = Nsga2::new(Nsga2Config {
        population: 16,
        generations: 6,
        ..Nsga2Config::default()
    });
    let result = ga.run(&engine)?;

    println!("\ngeneration progress:");
    for stats in &result.history {
        println!(
            "  gen {:>2}: front size {:>2}, best accuracy {:.1}%, smallest area {:.2}x baseline, {} evaluations",
            stats.generation,
            stats.front_size,
            stats.best_accuracy * 100.0,
            stats.best_normalized_area,
            stats.evaluations,
        );
    }

    println!("\nfinal accuracy/area Pareto front (normalized to the baseline):");
    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "config", "accuracy", "norm. area", "area gain"
    );
    for point in &result.pareto_front {
        println!(
            "{:<24} {:>9.1}% {:>12.3} {:>9.2}x",
            point.config.describe(),
            point.accuracy * 100.0,
            point.normalized_area,
            point.area_gain(),
        );
    }

    let headline = printed_mlp::core::pareto::area_gain_at_accuracy_loss(
        &result.all_points,
        engine.baseline().accuracy(),
        0.05,
    );
    match headline {
        Some(gain) => println!("\narea gain at <=5% accuracy loss: {gain:.2}x"),
        None => println!("\nno explored design stayed within 5% accuracy loss"),
    }
    let stats = engine.stats();
    println!(
        "engine: {} evaluations computed, {} cache hits ({:.0}% hit rate)",
        stats.misses,
        stats.hits + stats.coalesced,
        stats.hit_rate() * 100.0
    );
    Ok(())
}
