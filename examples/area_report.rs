//! Synthesis-report walkthrough of the bespoke hardware model: build a tiny
//! hand-specified classifier circuit, inspect its gate-level composition, and
//! see how constant choice, pruning and multiplier sharing change the report.
//!
//! Run with `cargo run --release --example area_report`.

use printed_mlp::hw::constmul::RecodingStrategy;
use printed_mlp::hw::{
    BespokeMlpCircuit, CellLibrary, CircuitSpec, HwActivation, LayerSpec, SharingStrategy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = CellLibrary::egt();

    // A hand-written 4-input, 3-class bespoke classifier with 4-bit weights.
    let hidden = LayerSpec::new(
        vec![vec![5, -3, 0, 7], vec![2, 6, -1, 0], vec![-4, 0, 3, 5]],
        4,
        HwActivation::ReLU,
    )?;
    let output = LayerSpec::new(
        vec![vec![3, -2, 1], vec![-1, 4, 2], vec![2, 1, -3]],
        4,
        HwActivation::Argmax,
    )?;
    let spec = CircuitSpec::new(4, vec![hidden, output])?;

    println!("== baseline bespoke circuit (no sharing, CSD multipliers) ==");
    let circuit = BespokeMlpCircuit::synthesize(&spec, &library)?;
    println!("{}", circuit.report());

    // Functional check: classify a couple of input vectors.
    for inputs in [[15_u64, 0, 7, 3], [1, 12, 4, 9]] {
        println!("classify({inputs:?}) = class {}", circuit.classify(&inputs));
    }

    println!("\n== with multiplier sharing (clustered-weight architecture) ==");
    let shared = BespokeMlpCircuit::synthesize_with(
        &spec,
        &library,
        SharingStrategy::SharedPerInput,
        RecodingStrategy::Csd,
    )?;
    println!(
        "area {:.2} mm2 vs {:.2} mm2 unshared ({:.1}% saved)",
        shared.area().total_mm2,
        circuit.area().total_mm2,
        100.0 * (1.0 - shared.area().total_mm2 / circuit.area().total_mm2)
    );

    println!("\n== binary (non-CSD) multipliers, for comparison ==");
    let binary = BespokeMlpCircuit::synthesize_with(
        &spec,
        &library,
        SharingStrategy::None,
        RecodingStrategy::Binary,
    )?;
    println!(
        "area {:.2} mm2 with binary recoding vs {:.2} mm2 with CSD",
        binary.area().total_mm2,
        circuit.area().total_mm2
    );

    println!("\n== pruned variant (half the connections removed) ==");
    let pruned_hidden = LayerSpec::new(
        vec![vec![5, 0, 0, 7], vec![0, 6, 0, 0], vec![-4, 0, 0, 5]],
        4,
        HwActivation::ReLU,
    )?;
    let pruned_output = LayerSpec::new(
        vec![vec![3, 0, 1], vec![0, 4, 0], vec![2, 0, -3]],
        4,
        HwActivation::Argmax,
    )?;
    let pruned_spec = CircuitSpec::new(4, vec![pruned_hidden, pruned_output])?;
    let pruned = BespokeMlpCircuit::synthesize(&pruned_spec, &library)?;
    println!(
        "area {:.2} mm2 vs dense {:.2} mm2 ({:.2}x smaller)",
        pruned.area().total_mm2,
        circuit.area().total_mm2,
        circuit.area().total_mm2 / pruned.area().total_mm2
    );
    Ok(())
}
