//! Cross-dataset reproduction campaigns.
//!
//! The paper reports its minimization results across a whole battery of
//! small UCI classification tasks, not just the four Fig. 1 subplots. A
//! [`Campaign`] reproduces that battery in one run: for every dataset in its
//! [`CampaignConfig`] it trains the bespoke baseline, builds a dedicated
//! [`EvalEngine`], runs the three standalone technique sweeps, and collects
//! the normalized Pareto fronts plus the headline area-gain rows into one
//! [`CampaignResult`]. Every reported accuracy — baselines and candidates
//! alike — is scored under the engine's default
//! [accuracy tier](crate::objective::AccuracyTier): pure-integer inference,
//! bit-identical to gate-level simulation of the bespoke circuit.
//!
//! Datasets fan out across rayon workers — engines already parallelize
//! *within* a dataset, so a campaign saturates the machine at both levels —
//! and each dataset's report records its own engine statistics and wall-clock
//! time. Results render as a paper-style aggregate table
//! ([`crate::report::render_campaign_table`]) and persist as machine-readable
//! JSON artifacts ([`CampaignResult::write_artifacts`]).
//!
//! Campaigns are interruptible: with [`CampaignConfig::store_dir`] set, every
//! engine reads and writes the persistent
//! [evaluation store](crate::store::EvalStore) and each finished dataset
//! commits an atomic completion marker; re-running with
//! [`CampaignConfig::resume`] restarts only the unfinished datasets and
//! reproduces the interrupted run's artifacts byte for byte.
//!
//! # Example
//!
//! ```no_run
//! use pmlp_core::campaign::{Campaign, CampaignConfig};
//! use pmlp_core::experiment::Effort;
//! use pmlp_core::report::render_campaign_table;
//! use pmlp_data::UciDataset;
//!
//! # fn main() -> Result<(), pmlp_core::CoreError> {
//! let config = CampaignConfig {
//!     datasets: vec![UciDataset::Seeds, UciDataset::Balance],
//!     effort: Effort::Quick,
//!     ..CampaignConfig::default()
//! };
//! let result = Campaign::new(config).run()?;
//! println!("{}", render_campaign_table(&result));
//! # Ok(())
//! # }
//! ```

use crate::engine::EvalEngine;
use crate::error::CoreError;
use crate::experiment::{headline_summary, Effort, Figure1Experiment};
use crate::objective::{AccuracyTier, DesignMetrics, ObjectiveSpace};
use crate::pareto::hypervolume;
use crate::report::{FigureSeries, HeadlineRow, TechniqueSummary};
use crate::store::StoreBackend;
use crate::sweep::Technique;
use pmlp_data::UciDataset;
use rayon::prelude::*;
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a [`Campaign`] runs: which datasets, at which effort, under which
/// seed and accuracy-loss threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Datasets to evaluate, in report order (defaults to the full registry).
    pub datasets: Vec<UciDataset>,
    /// Effort level applied to every dataset (baseline budget, sweep ranges,
    /// fine-tuning epochs).
    pub effort: Effort,
    /// Base RNG seed (data generation + training), shared by all datasets.
    pub seed: u64,
    /// Accuracy-loss threshold of the headline rows (the paper uses 0.05).
    pub max_accuracy_loss: f64,
    /// Objective space the Pareto fronts (and the per-dataset hypervolume)
    /// are computed in. Defaults to the classic `(accuracy, area)` space —
    /// byte-identical artifacts to the fixed two-objective pipeline.
    /// Evaluation, stores and completion markers are objective-agnostic for
    /// the *measurements*; markers additionally bind to the space so a
    /// 3-objective run never replays a 2-objective report (the evaluation
    /// store itself is shared freely — full metrics are always persisted).
    pub objectives: ObjectiveSpace,
    /// Which arithmetic scores every accuracy of the run — baselines and
    /// candidates alike. Defaults to [`AccuracyTier::Integer`] (bit-identical
    /// to gate-level simulation of the bespoke circuit);
    /// [`AccuracyTier::Float`] restores the fake-quantized float model for
    /// ablations. The tier is part of each baseline's fingerprint, so stores
    /// and completion markers written under the other tier never resume.
    pub accuracy_tier: AccuracyTier,
    /// Directory of the persistent evaluation store. When set, every
    /// dataset's engine warm-starts from (and appends to) the store's record
    /// logs, and a completion marker is committed per finished dataset so an
    /// interrupted campaign can restart with only the unfinished datasets
    /// (`None` = in-memory caching only, the historical behavior).
    pub store_dir: Option<PathBuf>,
    /// URL of a remote `pmlp-serve` evaluation-cache server
    /// (`http://host:port`). Set together with
    /// [`CampaignConfig::store_dir`], the local directory becomes a
    /// write-through cache of the server ([`crate::store::TieredStore`]):
    /// evaluations and completion markers stream in from (and replicate to)
    /// the server, so a fleet of workers shares one cache. Alone, the server
    /// is the only tier. A killed server never fails the run: the tier's
    /// circuit breaker opens, writes journal locally, and a restarted
    /// server is rejoined (and the journal replayed) by a recovery probe.
    pub remote_store: Option<String>,
    /// Per-request deadline for the remote store tier, in milliseconds
    /// (connect + read + write timeouts of every request; `None` keeps the
    /// client's 10s default). Lower it when a flaky server should degrade
    /// the run to local-only quickly instead of stalling each request.
    pub remote_timeout_ms: Option<u64>,
    /// Durability policy of the local JSONL tier (`--durability`); ignored
    /// unless [`CampaignConfig::store_dir`] is set.
    pub durability: crate::store::DurabilityPolicy,
    /// Circuit-breaker cooldown override for the remote tier, in
    /// milliseconds: how long an opened breaker waits before its next
    /// half-open recovery probe. `None` keeps the production default (1 s);
    /// chaos tests lower it so a quick campaign's breaker can rejoin a
    /// restarted server within the run.
    pub remote_cooldown_ms: Option<u64>,
    /// When `true` (and a store tier is configured), datasets whose
    /// completion marker matches this configuration **and** the freshly
    /// trained baseline's fingerprint are loaded from the marker verbatim
    /// instead of being re-swept (baselines always train — their fingerprint
    /// is what proves a marker is still valid).
    pub resume: bool,
    /// Runs this process as one worker of a multi-worker fleet: instead of
    /// the static rayon fan-out over the dataset battery, datasets are
    /// claimed dynamically through short-lived **lease documents** in the
    /// shared store (claim → heartbeat → renew → expire → steal), so K
    /// workers pointed at the same store split the battery between them and
    /// a killed worker's dataset is taken over once its lease expires. `None`
    /// (the default) keeps the classic single-process run — byte-identical
    /// artifacts to every release since the campaign existed. Requires a
    /// store tier; completion markers are the fleet's completion signal, so
    /// worker mode honours them regardless of [`CampaignConfig::resume`].
    /// Worker identity, stealing and lease timing are deliberately *not*
    /// part of the completion-marker fingerprint: the science is identical,
    /// only the scheduling differs.
    pub worker: Option<WorkerOptions>,
}

/// How one fleet worker participates in the lease-based campaign scheduler
/// (see [`CampaignConfig::worker`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerOptions {
    /// Stable identity of this worker, recorded in the leases it holds. Must
    /// be a safe document-name component (letters, digits, `.`/`_`/`-`).
    pub id: String,
    /// When `true`, this worker may **steal**: claim a dataset whose lease —
    /// held by another worker — has expired without a completion marker
    /// appearing (the signature of a killed or wedged peer). When `false`,
    /// the worker only claims unleased datasets and waits for its peers'
    /// markers otherwise, so a dead peer stalls the run; fleets that want
    /// fault tolerance run with stealing on.
    pub steal: bool,
    /// Lease time-to-live in milliseconds: how long a claim stays exclusive
    /// without a heartbeat renewal. The holder renews at a third of this
    /// period, so a TTL needs to comfortably exceed store round-trip times;
    /// it also bounds how long a killed worker's dataset stays orphaned.
    pub lease_ttl_ms: u64,
    /// How long a worker with nothing claimable sleeps between polls of the
    /// lease board and the completion markers, in milliseconds.
    pub poll_ms: u64,
}

impl WorkerOptions {
    /// Worker options for `id` with production timing defaults (30 s leases,
    /// 200 ms polls, stealing off).
    pub fn new(id: impl Into<String>) -> Self {
        WorkerOptions {
            id: id.into(),
            steal: false,
            lease_ttl_ms: 30_000,
            poll_ms: 200,
        }
    }

    /// Enables lease stealing (see [`WorkerOptions::steal`]).
    #[must_use]
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            datasets: UciDataset::all().to_vec(),
            effort: Effort::Full,
            seed: 42,
            max_accuracy_loss: 0.05,
            objectives: ObjectiveSpace::classic(),
            accuracy_tier: AccuracyTier::default(),
            store_dir: None,
            remote_store: None,
            remote_timeout_ms: None,
            durability: crate::store::DurabilityPolicy::default(),
            remote_cooldown_ms: None,
            resume: false,
            worker: None,
        }
    }
}

/// Everything the campaign measured for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetReport {
    /// Which dataset this report covers.
    pub dataset: UciDataset,
    /// Display name (as used in the paper's figures).
    pub name: String,
    /// Number of input features of the classifier.
    pub feature_count: usize,
    /// Number of target classes.
    pub class_count: usize,
    /// Hidden-layer width of the bespoke baseline MLP.
    pub hidden_neurons: usize,
    /// Absolute test accuracy of the un-minimized bespoke baseline.
    pub baseline_accuracy: f64,
    /// Circuit area of the bespoke baseline in mm².
    pub baseline_area_mm2: f64,
    /// Static power of the bespoke baseline in µW.
    pub baseline_power_uw: f64,
    /// Pareto-filtered (normalized accuracy, normalized area) series, one per
    /// standalone technique.
    pub series: Vec<FigureSeries>,
    /// Headline rows: best area gain within the accuracy-loss threshold, one
    /// per technique.
    pub headline: Vec<HeadlineRow>,
    /// Baseline-referenced hypervolume indicator of everything this dataset
    /// evaluated, computed in the campaign's objective space
    /// ([`crate::pareto::hypervolume`]): `0` = nothing beats the baseline,
    /// larger = a better front, always finite and in `[0, 1]`.
    pub hypervolume: f64,
    /// Full pipeline evaluations the engine ran for this dataset (cache
    /// misses).
    pub evaluations: usize,
    /// Fraction of evaluation requests answered from the engine's cache.
    pub cache_hit_rate: f64,
    /// Evaluations whose hardware cost came from the analytic fast path (no
    /// netlist was built).
    pub fast_path_evals: usize,
    /// Evaluations (plus finalist verifications) that ran full gate-level
    /// synthesis.
    pub full_synthesis_evals: usize,
    /// Hit rate of the process-wide constant-multiplier cost cache when this
    /// dataset finished, in `[0, 1]` (shared across concurrent datasets).
    pub multiplier_cache_hit_rate: f64,
    /// Wall-clock seconds spent on this dataset (training + sweeps).
    pub elapsed_secs: f64,
}

impl DatasetReport {
    /// The headline area gain of `technique`, `None` when no design met the
    /// accuracy-loss threshold (or the technique was not swept).
    pub fn gain_for(&self, technique: Technique) -> Option<f64> {
        self.headline
            .iter()
            .find(|row| row.technique == technique.name())
            .and_then(|row| row.area_gain)
    }
}

/// The aggregate outcome of a campaign run: one [`DatasetReport`] per dataset
/// plus the configuration that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Effort level the campaign ran at.
    pub effort: Effort,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Accuracy-loss threshold of the headline rows.
    pub max_accuracy_loss: f64,
    /// Comma-separated objective axes the run's fronts and hypervolumes were
    /// computed in (e.g. `accuracy,area` or `accuracy,area,energy`).
    pub objectives: String,
    /// Per-dataset reports, in configuration order.
    pub reports: Vec<DatasetReport>,
}

impl CampaignResult {
    /// Aggregates the headline rows per technique across all datasets, the
    /// way the paper quotes cross-dataset averages (counting only datasets
    /// where the technique met the threshold).
    pub fn technique_summaries(&self) -> Vec<TechniqueSummary> {
        [
            Technique::Quantization,
            Technique::Pruning,
            Technique::Clustering,
        ]
        .into_iter()
        .map(|technique| {
            let gains: Vec<f64> = self
                .reports
                .iter()
                .filter_map(|report| report.gain_for(technique))
                .collect();
            TechniqueSummary {
                technique: technique.name().to_string(),
                mean_gain: (!gains.is_empty())
                    .then(|| gains.iter().sum::<f64>() / gains.len() as f64),
                max_gain: gains.iter().copied().reduce(f64::max),
                datasets_met: gains.len(),
                datasets_total: self.reports.len(),
            }
        })
        .collect()
    }

    /// Writes the machine-readable artifacts of this run into `dir`: one
    /// `campaign.json` with the full result plus one `campaign_<dataset>.json`
    /// per dataset. Returns the written paths, aggregate first.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`std::io::Error`] when the directory cannot be
    /// created or a file cannot be written.
    pub fn write_artifacts(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let to_io_error =
            |err: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, err);

        let mut paths = Vec::with_capacity(self.reports.len() + 1);
        let aggregate = dir.join("campaign.json");
        std::fs::write(
            &aggregate,
            serde_json::to_string_pretty(self).map_err(to_io_error)?,
        )?;
        paths.push(aggregate);

        for report in &self.reports {
            let path = dir.join(format!("campaign_{}.json", report.name.to_lowercase()));
            std::fs::write(
                &path,
                serde_json::to_string_pretty(report).map_err(to_io_error)?,
            )?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// How each dataset of a campaign run was resolved, reported by
/// [`Campaign::run_with_stats`]. Kept out of [`CampaignResult`] on purpose:
/// artifacts must be byte-identical between an uninterrupted run and a
/// resumed one, so run-local provenance lives here instead.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignRunStats {
    /// Datasets loaded verbatim from completion markers (no engine built).
    pub resumed: Vec<UciDataset>,
    /// Datasets computed in this process (their engines may still have been
    /// answered entirely from a warm evaluation store).
    pub computed: Vec<UciDataset>,
    /// Full pipeline evaluations (cache misses) across all computed datasets
    /// — `0` means the run was answered entirely from markers and/or the
    /// persistent store.
    pub fresh_evaluations: usize,
    /// Datasets this worker claimed by breaking another worker's **expired**
    /// lease (worker mode with stealing only; always a subset of
    /// [`CampaignRunStats::computed`]).
    pub stolen: Vec<UciDataset>,
}

/// Magic string of campaign completion markers.
const MARKER_MAGIC: &str = "pmlp-campaign-marker";

/// Format version of campaign completion markers.
const MARKER_VERSION: u32 = 1;

/// Magic string of campaign lease documents.
const LEASE_MAGIC: &str = "pmlp-campaign-lease";

/// Format version of campaign lease documents.
const LEASE_VERSION: u32 = 1;

/// How long a claimer waits between writing its lease and reading it back to
/// detect a lost claim race. Two workers that write the same lease within
/// this window both re-read after it, so at most one sees itself as the
/// holder; a race lost later merely duplicates work (markers and evaluations
/// are idempotent), it never corrupts results.
const CLAIM_SETTLE_MS: u64 = 25;

/// Builds the sealed lease document `holder` renews: the envelope fingerprint
/// binds it to the campaign settings and `deadline_ms` (epoch milliseconds)
/// is what garbage collection and stealing peers test expiry against.
fn lease_document(fingerprint: u64, holder: &str, deadline_ms: u64) -> Value {
    crate::store::seal_envelope(
        LEASE_MAGIC,
        LEASE_VERSION,
        fingerprint,
        vec![
            ("worker".into(), Value::String(holder.to_string())),
            ("deadline_ms".into(), Value::Number(deadline_ms as f64)),
        ],
    )
}

/// Guard of a running lease-renewal thread: dropping it stops and joins the
/// thread (the lease itself is released separately by the worker loop).
struct LeaseHeartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for LeaseHeartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}

type CampaignProgressFn = dyn Fn(&DatasetReport) + Send + Sync;

/// The cross-dataset campaign driver.
///
/// See the [module documentation](self) for the full picture.
pub struct Campaign {
    config: CampaignConfig,
    progress: Option<Box<CampaignProgressFn>>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("config", &self.config)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl Campaign {
    /// Creates a campaign for `config`.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign {
            config,
            progress: None,
        }
    }

    /// Installs a callback invoked as each dataset completes (from worker
    /// threads, in completion order).
    #[must_use]
    pub fn with_progress(
        mut self,
        callback: impl Fn(&DatasetReport) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// The configuration this campaign runs.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Opens the persistence backend this campaign's configuration selects:
    /// local directory, remote server, their tiered composition, or `None`
    /// when neither is configured (see [`crate::store::open_backend`]).
    ///
    /// [`Campaign::run_with_stats`] opens this **once** and shares the
    /// instance across every dataset (engines, markers): tier state — a
    /// degraded remote, cached append handles — is campaign-wide, so a dead
    /// server is probed (and warned about) once, not once per operation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the directory cannot be created or
    /// the URL is malformed.
    pub fn open_backend(&self) -> Result<Option<Arc<dyn StoreBackend>>, CoreError> {
        Ok(crate::store::open_backend_opts(
            self.config.store_dir.as_deref(),
            self.config.remote_store.as_deref(),
            &crate::store::BackendOptions {
                remote_timeout: self
                    .config
                    .remote_timeout_ms
                    .map(std::time::Duration::from_millis),
                durability: self.config.durability,
                breaker: self
                    .config
                    .remote_cooldown_ms
                    .map(|ms| crate::store::BreakerConfig {
                        cooldown: std::time::Duration::from_millis(ms),
                        ..crate::store::BreakerConfig::default()
                    }),
            },
        )?
        .map(Arc::from))
    }

    /// Builds the evaluation engine the campaign uses for `dataset`: baseline
    /// trained at the configured effort's budget, fine-tuning budget set
    /// accordingly, warm-started from the configured persistence tiers when
    /// any are set.
    ///
    /// # Errors
    ///
    /// Propagates baseline training, synthesis and store errors.
    pub fn build_engine(&self, dataset: UciDataset) -> Result<EvalEngine, CoreError> {
        self.build_engine_with(dataset, self.open_backend()?.as_ref())
    }

    /// [`Campaign::build_engine`] against an already-opened (shared) backend.
    fn build_engine_with(
        &self,
        dataset: UciDataset,
        backend: Option<&Arc<dyn StoreBackend>>,
    ) -> Result<EvalEngine, CoreError> {
        let baseline_config = crate::baseline::BaselineConfig {
            accuracy_tier: self.config.accuracy_tier,
            ..self.config.effort.baseline_config()
        };
        // The baseline characterization itself is cached in the store (keyed
        // by the exact budget): resumed runs and fleet workers that steal a
        // dataset skip the training + reference-synthesis cost entirely.
        let engine = EvalEngine::train_cached(
            dataset,
            self.config.seed,
            &baseline_config,
            backend.map(|b| &**b as &dyn StoreBackend),
        )?
        .with_fine_tune_epochs(self.config.effort.fine_tune_epochs());
        match backend {
            Some(backend) => engine.with_backend(Box::new(Arc::clone(backend))),
            None => Ok(engine),
        }
    }

    /// Runs the campaign: every dataset is trained, swept and summarized on
    /// the rayon worker pool; reports come back in configuration order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty dataset list and
    /// propagates the first per-dataset error otherwise.
    pub fn run(&self) -> Result<CampaignResult, CoreError> {
        self.run_with_stats().map(|(result, _)| result)
    }

    /// Same as [`Campaign::run`], additionally reporting how each dataset was
    /// resolved (resumed from a marker vs computed) and how many fresh
    /// evaluations the run cost — the signal CI uses to assert that a
    /// warm-store re-run recomputes nothing.
    ///
    /// # Errors
    ///
    /// See [`Campaign::run`].
    pub fn run_with_stats(&self) -> Result<(CampaignResult, CampaignRunStats), CoreError> {
        if self.config.datasets.is_empty() {
            return Err(CoreError::InvalidConfig {
                context: "campaign needs at least one dataset".into(),
            });
        }
        if let Some(worker) = &self.config.worker {
            return self.run_worker(worker);
        }
        // One backend instance for the whole run: tier state (a degraded
        // remote, cached append handles) is shared by every dataset.
        let backend = self.open_backend()?;
        let outcomes: Result<Vec<(DatasetReport, bool)>, CoreError> = self
            .config
            .datasets
            .par_iter()
            .map(|&dataset| {
                let start = Instant::now();
                // The baseline always trains (or loads from its budget-keyed
                // cache document): its fingerprint is what binds a completion
                // marker (and the evaluation store) to the exact reference
                // design, so stale markers self-invalidate after any code or
                // budget change. Resuming skips the sweeps — the part that
                // scales with the search, not the baseline.
                let engine = self.build_engine_with(dataset, backend.as_ref())?;
                let (report, was_resumed) =
                    match self.load_marker(backend.as_deref(), dataset, engine.fingerprint()) {
                        Some(report) => (report, true),
                        None => {
                            let report = self.run_dataset_with(dataset, &engine, start)?;
                            self.write_marker(backend.as_deref(), &report, engine.fingerprint())?;
                            (report, false)
                        }
                    };
                if let Some(callback) = &self.progress {
                    callback(&report);
                }
                Ok((report, was_resumed))
            })
            .collect();
        let outcomes = outcomes?;
        // End-of-run synchronization point: push whatever the remote tier
        // missed during an outage window (the tiered composition's replay
        // journal) before the backend instance — and its journal — drops.
        if let Some(backend) = backend.as_deref() {
            backend.flush()?;
        }
        // Derive provenance from the (configuration-ordered) outcomes so the
        // stats are deterministic regardless of worker scheduling.
        let stats = CampaignRunStats {
            resumed: outcomes
                .iter()
                .filter(|(_, was_resumed)| *was_resumed)
                .map(|(report, _)| report.dataset)
                .collect(),
            computed: outcomes
                .iter()
                .filter(|(_, was_resumed)| !*was_resumed)
                .map(|(report, _)| report.dataset)
                .collect(),
            fresh_evaluations: outcomes
                .iter()
                .filter(|(_, was_resumed)| !*was_resumed)
                .map(|(report, _)| report.evaluations)
                .sum(),
            stolen: Vec::new(),
        };
        let reports: Vec<DatasetReport> = outcomes.into_iter().map(|(report, _)| report).collect();
        Ok((
            CampaignResult {
                effort: self.config.effort,
                seed: self.config.seed,
                max_accuracy_loss: self.config.max_accuracy_loss,
                objectives: self.config.objectives.to_string(),
                reports,
            },
            stats,
        ))
    }

    /// Identity of the campaign settings a completion marker must match to be
    /// resumable: effort, seed, accuracy-loss threshold and objective space
    /// (the dataset list is deliberately excluded so subset campaigns share
    /// markers). The classic objective space is fingerprinted exactly as the
    /// pre-configurable campaign was (no `objectives` entry), so markers
    /// written before objectives existed keep resuming classic campaigns,
    /// while any other space gets its own marker namespace.
    fn marker_fingerprint(&self) -> u64 {
        let mut entries = vec![
            ("effort".into(), self.config.effort.serialize_value()),
            (
                "seed".into(),
                Value::String(format!("{:016x}", self.config.seed)),
            ),
            (
                "max_accuracy_loss".into(),
                self.config.max_accuracy_loss.serialize_value(),
            ),
        ];
        if !self.config.objectives.is_classic() {
            entries.push((
                "objectives".into(),
                Value::String(self.config.objectives.to_string()),
            ));
        }
        let rendered = Value::Object(entries).render_compact();
        let mut fp = crate::store::FingerprintHasher::new();
        fp.mix_bytes(rendered.as_bytes());
        fp.finish()
    }

    /// Document name of `dataset`'s completion marker (also its file name
    /// under a local store directory).
    fn marker_doc_name(&self, dataset: UciDataset) -> String {
        format!(
            "done_{}_{:016x}.json",
            dataset.to_string().to_lowercase(),
            self.marker_fingerprint()
        )
    }

    /// Loads `dataset`'s completion marker when resuming; `None` when resume
    /// is off, there is no marker (on any configured tier), or the marker
    /// belongs to other settings or another baseline (`engine_fingerprint`
    /// mismatch — e.g. after a code or budget change that altered the trained
    /// reference design).
    fn load_marker(
        &self,
        backend: Option<&dyn StoreBackend>,
        dataset: UciDataset,
        engine_fingerprint: u64,
    ) -> Option<DatasetReport> {
        if !self.config.resume {
            return None;
        }
        self.load_marker_any(backend?, dataset, engine_fingerprint)
    }

    /// [`Campaign::load_marker`] without the `resume` gate: worker mode reads
    /// markers unconditionally — they are how a fleet learns that a peer
    /// finished a dataset.
    fn load_marker_any(
        &self,
        backend: &dyn StoreBackend,
        dataset: UciDataset,
        engine_fingerprint: u64,
    ) -> Option<DatasetReport> {
        let text = backend.get_doc(&self.marker_doc_name(dataset)).ok()??;
        let parsed = json::parse(&text).ok()?;
        let value = crate::store::check_envelope(
            &parsed,
            MARKER_MAGIC,
            MARKER_VERSION,
            engine_fingerprint,
        )?;
        let report = DatasetReport::deserialize_value(value.get("report")?).ok()?;
        (report.dataset == dataset).then_some(report)
    }

    /// Commits the completion marker of a finished dataset through the
    /// configured backend (atomically on the local tier, replicated to the
    /// remote tier), bound to the baseline fingerprint it was measured
    /// against; a no-op without a store.
    fn write_marker(
        &self,
        backend: Option<&dyn StoreBackend>,
        report: &DatasetReport,
        engine_fingerprint: u64,
    ) -> Result<(), CoreError> {
        let Some(backend) = backend else {
            return Ok(());
        };
        let value = crate::store::seal_envelope(
            MARKER_MAGIC,
            MARKER_VERSION,
            engine_fingerprint,
            vec![("report".into(), report.serialize_value())],
        );
        backend.put_doc(
            &self.marker_doc_name(report.dataset),
            &value.render_pretty(),
        )
    }

    /// Document name of `dataset`'s lease: the claim a fleet worker holds
    /// while it computes the dataset. Bound to the same settings fingerprint
    /// as the completion markers, so fleets under different settings never
    /// contend for each other's leases.
    pub fn lease_doc_name(&self, dataset: UciDataset) -> String {
        format!(
            "lease_{}_{:016x}.json",
            dataset.to_string().to_lowercase(),
            self.marker_fingerprint()
        )
    }

    /// Reads `(holder, deadline_ms)` out of a lease document; `None` for a
    /// missing, unreadable or foreign-settings lease (all of which a claimer
    /// treats as "not held").
    pub fn read_lease(&self, backend: &dyn StoreBackend, name: &str) -> Option<(String, u64)> {
        // Leases are mutable and contended: the read MUST see the shared
        // tier's latest state, not this worker's own write-through copy —
        // a local-first read would make every claim read-back succeed.
        let text = backend.get_doc_fresh(name).ok()??;
        let parsed = json::parse(&text).ok()?;
        let value = crate::store::check_envelope(
            &parsed,
            LEASE_MAGIC,
            LEASE_VERSION,
            self.marker_fingerprint(),
        )?;
        let holder = value.get("worker")?.as_str()?.to_string();
        let deadline = match value.get("deadline_ms")? {
            Value::Number(n) if *n >= 0.0 => *n as u64,
            _ => return None,
        };
        Some((holder, deadline))
    }

    /// Writes (or renews) `worker`'s lease under `name` with a fresh
    /// `now + lease_ttl_ms` deadline.
    fn write_lease(
        &self,
        backend: &dyn StoreBackend,
        name: &str,
        worker: &WorkerOptions,
    ) -> Result<(), CoreError> {
        let value = lease_document(
            self.marker_fingerprint(),
            &worker.id,
            crate::store::now_epoch_ms().saturating_add(worker.lease_ttl_ms),
        );
        backend.put_doc(name, &value.render_pretty())
    }

    /// Attempts to claim `dataset` for `worker`: `Ok(None)` when the lease is
    /// held by a live peer (or an expired peer and stealing is off, or the
    /// claim race was lost); `Ok(Some(stolen))` when the claim succeeded,
    /// with `stolen` recording that another worker's expired lease was
    /// broken.
    ///
    /// The claim is last-write-wins with a read-back: write the lease, wait
    /// a short settle interval, read it back and proceed only if this worker
    /// is still the holder. A race lost after the read-back duplicates work at
    /// worst — evaluations are cached and markers idempotent — it never
    /// corrupts results.
    ///
    /// Public so fleet tooling (and the integration suite) can drive the
    /// lease protocol directly; [`Campaign::run_with_stats`] in worker mode
    /// is the normal consumer.
    pub fn try_claim(
        &self,
        backend: &dyn StoreBackend,
        dataset: UciDataset,
        worker: &WorkerOptions,
    ) -> Result<Option<bool>, CoreError> {
        let name = self.lease_doc_name(dataset);
        let mut stolen = false;
        if let Some((holder, deadline)) = self.read_lease(backend, &name) {
            if holder != worker.id {
                if deadline >= crate::store::now_epoch_ms() || !worker.steal {
                    return Ok(None);
                }
                stolen = true;
            }
            // Our own lingering lease (a previous incarnation of this worker
            // died mid-dataset): reclaim it silently.
        }
        self.write_lease(backend, &name, worker)?;
        std::thread::sleep(Duration::from_millis(CLAIM_SETTLE_MS));
        match self.read_lease(backend, &name) {
            Some((holder, _)) if holder == worker.id => Ok(Some(stolen)),
            _ => Ok(None),
        }
    }

    /// Drops `worker`'s lease on `dataset` if it still holds it. Best-effort:
    /// a failed removal merely leaves a lease to expire on its own.
    pub fn release_lease(
        &self,
        backend: &dyn StoreBackend,
        dataset: UciDataset,
        worker: &WorkerOptions,
    ) {
        let name = self.lease_doc_name(dataset);
        if matches!(self.read_lease(backend, &name), Some((holder, _)) if holder == worker.id) {
            backend.remove_doc(&name).ok();
        }
    }

    /// Spawns the heartbeat thread that renews `worker`'s lease on `dataset`
    /// at a third of its TTL while the dataset computes. Stops (and joins)
    /// when the returned guard drops.
    fn start_heartbeat(
        &self,
        backend: Arc<dyn StoreBackend>,
        dataset: UciDataset,
        worker: &WorkerOptions,
    ) -> LeaseHeartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let name = self.lease_doc_name(dataset);
        let id = worker.id.clone();
        let fingerprint = self.marker_fingerprint();
        let ttl = worker.lease_ttl_ms;
        let handle = std::thread::spawn(move || {
            let renew_every = Duration::from_millis((ttl / 3).max(1));
            // Sleep in short slices so a finished dataset is not held hostage
            // by a long renewal period.
            let slice = Duration::from_millis(20).min(renew_every);
            let mut last_renewal = Instant::now();
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                if last_renewal.elapsed() >= renew_every {
                    let value = lease_document(
                        fingerprint,
                        &id,
                        crate::store::now_epoch_ms().saturating_add(ttl),
                    );
                    // Renewal failures are tolerated: the tiered breaker
                    // journals local writes, and a missed renewal risks a
                    // duplicated dataset via a steal, never corruption.
                    backend.put_doc(&name, &value.render_pretty()).ok();
                    last_renewal = Instant::now();
                }
            }
        });
        LeaseHeartbeat {
            stop,
            handle: Some(handle),
        }
    }

    /// The fleet-worker run loop behind [`Campaign::run_with_stats`] when
    /// [`CampaignConfig::worker`] is set: repeatedly sweep the battery,
    /// resolving each dataset from a peer's completion marker or by claiming
    /// its lease and computing it; sleep and re-poll when everything is
    /// leased out elsewhere. Terminates when every dataset has a report.
    fn run_worker(
        &self,
        worker: &WorkerOptions,
    ) -> Result<(CampaignResult, CampaignRunStats), CoreError> {
        if !crate::store::safe_component(&worker.id) {
            return Err(CoreError::InvalidConfig {
                context: format!(
                    "worker id `{}` is not a safe document-name component",
                    worker.id
                ),
            });
        }
        if worker.lease_ttl_ms == 0 || worker.poll_ms == 0 {
            return Err(CoreError::InvalidConfig {
                context: "worker lease TTL and poll interval must be positive".into(),
            });
        }
        let Some(backend) = self.open_backend()? else {
            return Err(CoreError::InvalidConfig {
                context: "worker mode needs a store tier (store_dir and/or remote_store)".into(),
            });
        };
        // The work list: configuration order, deduplicated (two workers must
        // never race on termination bookkeeping for a repeated entry).
        let mut battery: Vec<UciDataset> = Vec::new();
        for &dataset in &self.config.datasets {
            if !battery.contains(&dataset) {
                battery.push(dataset);
            }
        }
        // (dataset, report, was_resumed, was_stolen), in completion order.
        let mut outcomes: Vec<(UciDataset, DatasetReport, bool, bool)> = Vec::new();
        while outcomes.len() < battery.len() {
            let mut progress = false;
            for &dataset in &battery {
                if outcomes.iter().any(|(done, ..)| *done == dataset) {
                    continue;
                }
                // A completion marker — ours from an earlier run or a peer's
                // from this one — resolves the dataset without claiming it.
                // Validating it needs the baseline fingerprint, but the
                // baseline characterization cache (published by whichever
                // worker computed the dataset) makes that engine build cheap.
                let marker_present = backend
                    .get_doc(&self.marker_doc_name(dataset))
                    .ok()
                    .flatten()
                    .is_some();
                if marker_present {
                    let engine = self.build_engine_with(dataset, Some(&backend))?;
                    if let Some(report) =
                        self.load_marker_any(&*backend, dataset, engine.fingerprint())
                    {
                        if let Some(callback) = &self.progress {
                            callback(&report);
                        }
                        outcomes.push((dataset, report, true, false));
                        progress = true;
                        continue;
                    }
                    // A stale marker (another baseline): claim and recompute.
                }
                let Some(was_stolen) = self.try_claim(&*backend, dataset, worker)? else {
                    continue;
                };
                let start = Instant::now();
                let engine = self.build_engine_with(dataset, Some(&backend))?;
                // A peer may have finished the dataset while the baseline
                // trained; its marker wins and our lease is surrendered.
                if let Some(report) = self.load_marker_any(&*backend, dataset, engine.fingerprint())
                {
                    self.release_lease(&*backend, dataset, worker);
                    if let Some(callback) = &self.progress {
                        callback(&report);
                    }
                    outcomes.push((dataset, report, true, false));
                    progress = true;
                    continue;
                }
                let heartbeat = self.start_heartbeat(Arc::clone(&backend), dataset, worker);
                let outcome = self.run_dataset_with(dataset, &engine, start);
                drop(heartbeat);
                let report = match outcome {
                    Ok(report) => report,
                    Err(err) => {
                        // Surrender the lease so a peer can take over instead
                        // of waiting out the TTL.
                        self.release_lease(&*backend, dataset, worker);
                        return Err(err);
                    }
                };
                self.write_marker(Some(&*backend), &report, engine.fingerprint())?;
                self.release_lease(&*backend, dataset, worker);
                if let Some(callback) = &self.progress {
                    callback(&report);
                }
                outcomes.push((dataset, report, false, was_stolen));
                progress = true;
            }
            if outcomes.len() < battery.len() && !progress {
                std::thread::sleep(Duration::from_millis(worker.poll_ms));
            }
        }
        backend.flush()?;
        // Reports in configuration order (repeated entries share a report),
        // byte-identical to what an uninterrupted classic run would emit.
        let report_for = |dataset: UciDataset| {
            outcomes
                .iter()
                .find(|(done, ..)| *done == dataset)
                .map(|(_, report, ..)| report.clone())
                .expect("every battery dataset resolved")
        };
        let reports: Vec<DatasetReport> = self
            .config
            .datasets
            .iter()
            .map(|&dataset| report_for(dataset))
            .collect();
        let stats = CampaignRunStats {
            resumed: battery
                .iter()
                .copied()
                .filter(|d| {
                    outcomes
                        .iter()
                        .any(|(done, _, resumed, _)| done == d && *resumed)
                })
                .collect(),
            computed: battery
                .iter()
                .copied()
                .filter(|d| {
                    outcomes
                        .iter()
                        .any(|(done, _, resumed, _)| done == d && !*resumed)
                })
                .collect(),
            fresh_evaluations: outcomes
                .iter()
                .filter(|(_, _, resumed, _)| !*resumed)
                .map(|(_, report, ..)| report.evaluations)
                .sum(),
            stolen: battery
                .iter()
                .copied()
                .filter(|d| {
                    outcomes
                        .iter()
                        .any(|(done, _, _, stolen)| done == d && *stolen)
                })
                .collect(),
        };
        Ok((
            CampaignResult {
                effort: self.config.effort,
                seed: self.config.seed,
                max_accuracy_loss: self.config.max_accuracy_loss,
                objectives: self.config.objectives.to_string(),
                reports,
            },
            stats,
        ))
    }

    /// Runs one dataset of the campaign: trains its baseline, sweeps the
    /// three standalone techniques through a fresh engine and packages the
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates baseline, evaluation and synthesis errors.
    pub fn run_dataset(&self, dataset: UciDataset) -> Result<DatasetReport, CoreError> {
        let start = Instant::now();
        let engine = self.build_engine(dataset)?;
        self.run_dataset_with(dataset, &engine, start)
    }

    /// [`Campaign::run_dataset`] against an already-built engine, charging
    /// wall-clock time from `start` (which should predate baseline training).
    fn run_dataset_with(
        &self,
        dataset: UciDataset,
        engine: &EvalEngine,
        start: Instant,
    ) -> Result<DatasetReport, CoreError> {
        let result = Figure1Experiment::new(dataset, self.config.effort, self.config.seed)
            .with_objectives(self.config.objectives.clone())
            .run_with(engine)?;
        let headline = headline_summary(&result, self.config.max_accuracy_loss);
        let stats = engine.stats();
        let descriptor = dataset.descriptor();
        // The hypervolume is referenced to the freshly trained baseline's full
        // metrics and computed over every point the sweeps evaluated (the
        // dominated ones contribute nothing, so this equals the front's).
        let baseline_metrics =
            DesignMetrics::from_synthesis(result.baseline_accuracy, &engine.baseline().synthesis);
        let evaluated: Vec<crate::objective::DesignPoint> = result
            .raw_points
            .iter()
            .flat_map(|(_, points)| points.iter().cloned())
            .collect();
        let volume = hypervolume(&self.config.objectives, &evaluated, &baseline_metrics);
        Ok(DatasetReport {
            dataset,
            name: result.dataset,
            feature_count: descriptor.feature_count,
            class_count: descriptor.class_count,
            hidden_neurons: descriptor.hidden_neurons,
            baseline_accuracy: result.baseline_accuracy,
            baseline_area_mm2: result.baseline_area_mm2,
            baseline_power_uw: engine.baseline().synthesis.power_uw,
            series: result.series,
            headline,
            hypervolume: volume,
            evaluations: stats.misses,
            cache_hit_rate: stats.hit_rate(),
            fast_path_evals: stats.fast_path,
            full_synthesis_evals: stats.full_synthesis,
            multiplier_cache_hit_rate: stats.multiplier_cache_hit_rate(),
            elapsed_secs: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(name: &str, gains: [Option<f64>; 3]) -> DatasetReport {
        let techniques = [
            Technique::Quantization,
            Technique::Pruning,
            Technique::Clustering,
        ];
        DatasetReport {
            dataset: UciDataset::Seeds,
            name: name.to_string(),
            feature_count: 7,
            class_count: 3,
            hidden_neurons: 10,
            baseline_accuracy: 0.9,
            baseline_area_mm2: 10.0,
            baseline_power_uw: 100.0,
            series: Vec::new(),
            hypervolume: 0.0,
            headline: techniques
                .iter()
                .zip(gains)
                .map(|(technique, area_gain)| HeadlineRow {
                    dataset: name.to_string(),
                    technique: technique.name().to_string(),
                    baseline_accuracy: 0.9,
                    area_gain,
                    max_accuracy_loss: 0.05,
                })
                .collect(),
            evaluations: 5,
            cache_hit_rate: 0.0,
            fast_path_evals: 5,
            full_synthesis_evals: 0,
            multiplier_cache_hit_rate: 0.0,
            elapsed_secs: 1.0,
        }
    }

    fn store_config(datasets: Vec<UciDataset>, dir: &Path, resume: bool) -> CampaignConfig {
        CampaignConfig {
            datasets,
            effort: Effort::Quick,
            seed: 5,
            max_accuracy_loss: 0.05,
            objectives: ObjectiveSpace::classic(),
            accuracy_tier: AccuracyTier::default(),
            store_dir: Some(dir.to_path_buf()),
            remote_store: None,
            remote_timeout_ms: None,
            durability: crate::store::DurabilityPolicy::default(),
            remote_cooldown_ms: None,
            resume,
            worker: None,
        }
    }

    #[test]
    fn resumed_campaign_loads_markers_verbatim_and_reports_them() {
        let dir = std::env::temp_dir().join(format!(
            "pmlp-campaign-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();

        let datasets = vec![UciDataset::Seeds];
        let (first, first_stats) = Campaign::new(store_config(datasets.clone(), &dir, false))
            .run_with_stats()
            .unwrap();
        assert_eq!(first_stats.resumed, Vec::new());
        assert_eq!(first_stats.computed, datasets);
        assert!(first_stats.fresh_evaluations > 0);

        let (second, second_stats) = Campaign::new(store_config(datasets.clone(), &dir, true))
            .run_with_stats()
            .unwrap();
        assert_eq!(second_stats.resumed, datasets);
        assert_eq!(second_stats.computed, Vec::new());
        assert_eq!(second_stats.fresh_evaluations, 0);
        assert_eq!(second, first, "resumed reports must be verbatim");

        // Without resume the dataset is recomputed, but the warm store
        // answers every evaluation: zero misses.
        let (third, third_stats) = Campaign::new(store_config(datasets.clone(), &dir, false))
            .run_with_stats()
            .unwrap();
        assert_eq!(third_stats.computed, datasets);
        assert_eq!(third_stats.fresh_evaluations, 0);
        assert_eq!(third.reports[0].evaluations, 0);
        assert!(third.reports[0].cache_hit_rate > 0.99);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn markers_of_another_baseline_fingerprint_are_not_resumed() {
        let dir = std::env::temp_dir().join(format!(
            "pmlp-campaign-stale-marker-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let datasets = vec![UciDataset::Seeds];
        let campaign = Campaign::new(store_config(datasets.clone(), &dir, false));
        campaign.run().unwrap();

        // Tamper with the marker's fingerprint, simulating a marker written
        // by a different (e.g. pre-code-change) baseline: resume must ignore
        // it and recompute instead of replaying stale science.
        let marker = dir.join(campaign.marker_doc_name(UciDataset::Seeds));
        let tampered = std::fs::read_to_string(&marker).unwrap().replacen(
            "\"fingerprint\": \"",
            "\"fingerprint\": \"f",
            1,
        );
        std::fs::write(&marker, tampered).unwrap();

        let (_, stats) = Campaign::new(store_config(datasets.clone(), &dir, true))
            .run_with_stats()
            .unwrap();
        assert_eq!(stats.resumed, Vec::new(), "stale marker must not resume");
        assert_eq!(stats.computed, datasets);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn markers_of_other_settings_are_not_resumed() {
        let dir = std::env::temp_dir().join(format!(
            "pmlp-campaign-marker-mismatch-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let datasets = vec![UciDataset::Seeds];
        Campaign::new(store_config(datasets.clone(), &dir, false))
            .run()
            .unwrap();
        // A different seed must ignore the existing marker (different
        // fingerprint in the file name) and recompute.
        let mut other = store_config(datasets.clone(), &dir, true);
        other.seed = 6;
        let (_, stats) = Campaign::new(other).run_with_stats().unwrap();
        assert_eq!(stats.resumed, Vec::new());
        assert_eq!(stats.computed, datasets);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_reports_a_finite_hypervolume_in_every_objective_space() {
        let classic = Campaign::new(CampaignConfig {
            datasets: vec![UciDataset::Seeds],
            effort: Effort::Quick,
            seed: 5,
            ..CampaignConfig::default()
        })
        .run()
        .unwrap();
        assert_eq!(classic.objectives, "accuracy,area");
        let volume = classic.reports[0].hypervolume;
        assert!(volume.is_finite() && volume > 0.0 && volume <= 1.0);

        let energy = Campaign::new(CampaignConfig {
            datasets: vec![UciDataset::Seeds],
            effort: Effort::Quick,
            seed: 5,
            objectives: ObjectiveSpace::parse("accuracy,area,energy").unwrap(),
            ..CampaignConfig::default()
        })
        .run()
        .unwrap();
        assert_eq!(energy.objectives, "accuracy,area,energy");
        let volume3 = energy.reports[0].hypervolume;
        assert!(volume3.is_finite() && volume3 > 0.0 && volume3 <= 1.0);
        // Both spaces see the same sweeps; only the measured objective values
        // differ, so the headline science is identical.
        assert_eq!(energy.reports[0].headline, classic.reports[0].headline);
    }

    #[test]
    fn markers_of_another_objective_space_are_not_resumed() {
        let dir = std::env::temp_dir().join(format!(
            "pmlp-campaign-objective-marker-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let datasets = vec![UciDataset::Seeds];
        Campaign::new(store_config(datasets.clone(), &dir, false))
            .run()
            .unwrap();

        // A 3-objective resume must not replay the classic marker — but the
        // evaluation store is objective-agnostic, so recomputing the dataset
        // under the new space costs zero fresh evaluations.
        let mut energy = store_config(datasets.clone(), &dir, true);
        energy.objectives = ObjectiveSpace::parse("accuracy,area,energy").unwrap();
        let (result, stats) = Campaign::new(energy.clone()).run_with_stats().unwrap();
        assert_eq!(stats.resumed, Vec::new(), "marker is bound to the space");
        assert_eq!(stats.computed, datasets);
        assert_eq!(stats.fresh_evaluations, 0, "store warm-starts any space");
        assert!(result.reports[0].hypervolume.is_finite());

        // The 3-objective run committed its own marker; re-running it resumes,
        // and the classic marker is still intact for classic resumes.
        let (_, warm) = Campaign::new(energy).run_with_stats().unwrap();
        assert_eq!(warm.resumed, datasets);
        let (_, classic) = Campaign::new(store_config(datasets.clone(), &dir, true))
            .run_with_stats()
            .unwrap();
        assert_eq!(classic.resumed, datasets);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn worker_config(
        datasets: Vec<UciDataset>,
        dir: &Path,
        id: &str,
        steal: bool,
    ) -> CampaignConfig {
        CampaignConfig {
            worker: Some(WorkerOptions {
                id: id.into(),
                steal,
                lease_ttl_ms: 10_000,
                poll_ms: 25,
            }),
            ..store_config(datasets, dir, false)
        }
    }

    #[test]
    fn worker_fleet_splits_the_battery_and_agrees_with_the_classic_run() {
        let dir = std::env::temp_dir().join(format!(
            "pmlp-campaign-fleet-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let datasets = vec![UciDataset::Seeds, UciDataset::Balance];

        let classic = Campaign::new(CampaignConfig {
            datasets: datasets.clone(),
            effort: Effort::Quick,
            seed: 5,
            ..CampaignConfig::default()
        })
        .run()
        .unwrap();

        let spawn_worker = |id: &str| {
            let config = worker_config(datasets.clone(), &dir, id, true);
            std::thread::spawn(move || Campaign::new(config).run_with_stats().unwrap())
        };
        let first = spawn_worker("w1");
        let second = spawn_worker("w2");
        let (result_a, stats_a) = first.join().unwrap();
        let (result_b, stats_b) = second.join().unwrap();

        // The fleet partitioned the battery: every dataset computed exactly
        // once, each worker resumed what its peer computed.
        for dataset in &datasets {
            let in_a = stats_a.computed.contains(dataset);
            let in_b = stats_b.computed.contains(dataset);
            assert!(in_a ^ in_b, "{dataset:?} must be computed exactly once");
        }
        assert_eq!(
            stats_a.computed.len() + stats_a.resumed.len(),
            datasets.len()
        );
        assert_eq!(
            stats_b.computed.len() + stats_b.resumed.len(),
            datasets.len()
        );

        // Both workers assemble the full, identical battery result, and the
        // science matches the classic single-process run.
        assert_eq!(result_a, result_b, "fleet results must agree");
        assert_eq!(result_a.reports.len(), classic.reports.len());
        for (fleet, single) in result_a.reports.iter().zip(&classic.reports) {
            assert_eq!(fleet.series, single.series);
            assert_eq!(fleet.headline, single.headline);
            assert_eq!(fleet.hypervolume, single.hypervolume);
            assert_eq!(fleet.baseline_accuracy, single.baseline_accuracy);
        }

        // The store is clean: leases released, one marker per dataset.
        let campaign = Campaign::new(worker_config(datasets.clone(), &dir, "w1", true));
        let backend = campaign.open_backend().unwrap().unwrap();
        for &dataset in &datasets {
            assert!(
                backend
                    .get_doc(&campaign.lease_doc_name(dataset))
                    .unwrap()
                    .is_none(),
                "lease of {dataset:?} must be released"
            );
            assert!(backend
                .get_doc(&campaign.marker_doc_name(dataset))
                .unwrap()
                .is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_leases_are_stolen_and_live_leases_block_claims() {
        use crate::store::MemoryBackend;
        let backend = MemoryBackend::new();
        let datasets = vec![UciDataset::Seeds];
        let campaign = Campaign::new(CampaignConfig {
            datasets,
            effort: Effort::Quick,
            seed: 5,
            worker: Some(WorkerOptions::new("survivor").with_steal(true)),
            ..CampaignConfig::default()
        });
        let worker = campaign.config().worker.clone().unwrap();
        let name = campaign.lease_doc_name(UciDataset::Seeds);

        // A live lease held by a peer blocks the claim.
        let live = lease_document(
            campaign.marker_fingerprint(),
            "peer",
            crate::store::now_epoch_ms() + 60_000,
        );
        backend.put_doc(&name, &live.render_pretty()).unwrap();
        assert_eq!(
            campaign
                .try_claim(&backend, UciDataset::Seeds, &worker)
                .unwrap(),
            None
        );

        // An expired peer lease is stolen — but only with stealing enabled.
        let expired = lease_document(campaign.marker_fingerprint(), "peer", 1);
        backend.put_doc(&name, &expired.render_pretty()).unwrap();
        let timid = WorkerOptions::new("survivor");
        assert_eq!(
            campaign
                .try_claim(&backend, UciDataset::Seeds, &timid)
                .unwrap(),
            None,
            "stealing off: an expired peer lease still blocks"
        );
        assert_eq!(
            campaign
                .try_claim(&backend, UciDataset::Seeds, &worker)
                .unwrap(),
            Some(true),
            "stealing on: the expired lease is broken"
        );
        let (holder, deadline) = campaign.read_lease(&backend, &name).unwrap();
        assert_eq!(holder, "survivor");
        assert!(deadline > crate::store::now_epoch_ms());

        // Reclaiming our own lease is not a steal; releasing drops the doc.
        assert_eq!(
            campaign
                .try_claim(&backend, UciDataset::Seeds, &worker)
                .unwrap(),
            Some(false)
        );
        campaign.release_lease(&backend, UciDataset::Seeds, &worker);
        assert!(backend.get_doc(&name).unwrap().is_none());

        // A foreign-settings lease is invisible (treated as unclaimed), and
        // release never drops a lease we do not hold.
        let foreign = lease_document(0xDEAD, "peer", crate::store::now_epoch_ms() + 60_000);
        backend.put_doc(&name, &foreign.render_pretty()).unwrap();
        assert!(campaign.read_lease(&backend, &name).is_none());
        campaign.release_lease(&backend, UciDataset::Seeds, &worker);
        assert!(backend.get_doc(&name).unwrap().is_some());
    }

    #[test]
    fn worker_mode_validates_its_configuration() {
        let no_store = Campaign::new(CampaignConfig {
            datasets: vec![UciDataset::Seeds],
            worker: Some(WorkerOptions::new("w1")),
            ..CampaignConfig::default()
        });
        assert!(matches!(
            no_store.run(),
            Err(CoreError::InvalidConfig { .. })
        ));

        let dir = std::env::temp_dir().join(format!(
            "pmlp-campaign-worker-validate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let bad_id = Campaign::new(worker_config(
            vec![UciDataset::Seeds],
            &dir,
            "../escape",
            false,
        ));
        assert!(matches!(bad_id.run(), Err(CoreError::InvalidConfig { .. })));

        let mut zero_ttl = worker_config(vec![UciDataset::Seeds], &dir, "w1", false);
        zero_ttl.worker.as_mut().unwrap().lease_ttl_ms = 0;
        assert!(matches!(
            Campaign::new(zero_ttl).run(),
            Err(CoreError::InvalidConfig { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_campaign_is_rejected() {
        let campaign = Campaign::new(CampaignConfig {
            datasets: Vec::new(),
            ..CampaignConfig::default()
        });
        assert!(matches!(
            campaign.run(),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn default_config_covers_the_full_registry() {
        let config = CampaignConfig::default();
        assert_eq!(config.datasets.len(), UciDataset::all().len());
        assert!(config.datasets.len() >= 10);
        assert!((config.max_accuracy_loss - 0.05).abs() < 1e-12);
    }

    #[test]
    fn technique_summaries_average_only_datasets_that_met_the_threshold() {
        let result = CampaignResult {
            effort: Effort::Quick,
            seed: 1,
            max_accuracy_loss: 0.05,
            objectives: "accuracy,area".into(),
            reports: vec![
                tiny_report("A", [Some(4.0), Some(2.0), None]),
                tiny_report("B", [Some(6.0), None, None]),
            ],
        };
        let summaries = result.technique_summaries();
        assert_eq!(summaries.len(), 3);
        let quant = &summaries[0];
        assert_eq!(quant.datasets_met, 2);
        assert_eq!(quant.datasets_total, 2);
        assert!((quant.mean_gain.unwrap() - 5.0).abs() < 1e-12);
        assert!((quant.max_gain.unwrap() - 6.0).abs() < 1e-12);
        let cluster = &summaries[2];
        assert_eq!(cluster.datasets_met, 0);
        assert!(cluster.mean_gain.is_none());
        assert!(cluster.max_gain.is_none());
    }

    #[test]
    fn gain_for_reads_the_headline_rows() {
        let report = tiny_report("A", [Some(4.0), None, Some(1.5)]);
        assert_eq!(report.gain_for(Technique::Quantization), Some(4.0));
        assert_eq!(report.gain_for(Technique::Pruning), None);
        assert_eq!(report.gain_for(Technique::Clustering), Some(1.5));
        assert_eq!(report.gain_for(Technique::Combined), None);
    }

    #[test]
    fn campaign_result_round_trips_through_json() {
        let result = CampaignResult {
            effort: Effort::Quick,
            seed: 7,
            max_accuracy_loss: 0.05,
            objectives: "accuracy,area".into(),
            reports: vec![tiny_report("Seeds", [Some(3.0), Some(2.0), None])],
        };
        let json = serde_json::to_string_pretty(&result).unwrap();
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result);
    }

    #[test]
    fn write_artifacts_emits_aggregate_and_per_dataset_files() {
        let result = CampaignResult {
            effort: Effort::Quick,
            seed: 7,
            max_accuracy_loss: 0.05,
            objectives: "accuracy,area".into(),
            reports: vec![
                tiny_report("Seeds", [Some(3.0), None, None]),
                tiny_report("Balance", [Some(2.0), None, None]),
            ],
        };
        let dir = std::env::temp_dir().join(format!(
            "pmlp-campaign-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let paths = result.write_artifacts(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths[0].ends_with("campaign.json"));
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        let back: CampaignResult = serde_json::from_str(&text).unwrap();
        assert_eq!(back, result);
        let per_dataset = std::fs::read_to_string(&paths[2]).unwrap();
        let report: DatasetReport = serde_json::from_str(&per_dataset).unwrap();
        assert_eq!(report, result.reports[1]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
