//! Cross-dataset reproduction campaigns.
//!
//! The paper reports its minimization results across a whole battery of
//! small UCI classification tasks, not just the four Fig. 1 subplots. A
//! [`Campaign`] reproduces that battery in one run: for every dataset in its
//! [`CampaignConfig`] it trains the bespoke baseline, builds a dedicated
//! [`EvalEngine`], runs the three standalone technique sweeps, and collects
//! the normalized Pareto fronts plus the headline area-gain rows into one
//! [`CampaignResult`].
//!
//! Datasets fan out across rayon workers — engines already parallelize
//! *within* a dataset, so a campaign saturates the machine at both levels —
//! and each dataset's report records its own engine statistics and wall-clock
//! time. Results render as a paper-style aggregate table
//! ([`crate::report::render_campaign_table`]) and persist as machine-readable
//! JSON artifacts ([`CampaignResult::write_artifacts`]).
//!
//! # Example
//!
//! ```no_run
//! use pmlp_core::campaign::{Campaign, CampaignConfig};
//! use pmlp_core::experiment::Effort;
//! use pmlp_core::report::render_campaign_table;
//! use pmlp_data::UciDataset;
//!
//! # fn main() -> Result<(), pmlp_core::CoreError> {
//! let config = CampaignConfig {
//!     datasets: vec![UciDataset::Seeds, UciDataset::Balance],
//!     effort: Effort::Quick,
//!     ..CampaignConfig::default()
//! };
//! let result = Campaign::new(config).run()?;
//! println!("{}", render_campaign_table(&result));
//! # Ok(())
//! # }
//! ```

use crate::engine::EvalEngine;
use crate::error::CoreError;
use crate::experiment::{headline_summary, Effort, Figure1Experiment};
use crate::report::{FigureSeries, HeadlineRow, TechniqueSummary};
use crate::sweep::Technique;
use pmlp_data::UciDataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What a [`Campaign`] runs: which datasets, at which effort, under which
/// seed and accuracy-loss threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Datasets to evaluate, in report order (defaults to the full registry).
    pub datasets: Vec<UciDataset>,
    /// Effort level applied to every dataset (baseline budget, sweep ranges,
    /// fine-tuning epochs).
    pub effort: Effort,
    /// Base RNG seed (data generation + training), shared by all datasets.
    pub seed: u64,
    /// Accuracy-loss threshold of the headline rows (the paper uses 0.05).
    pub max_accuracy_loss: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            datasets: UciDataset::all().to_vec(),
            effort: Effort::Full,
            seed: 42,
            max_accuracy_loss: 0.05,
        }
    }
}

/// Everything the campaign measured for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetReport {
    /// Which dataset this report covers.
    pub dataset: UciDataset,
    /// Display name (as used in the paper's figures).
    pub name: String,
    /// Number of input features of the classifier.
    pub feature_count: usize,
    /// Number of target classes.
    pub class_count: usize,
    /// Hidden-layer width of the bespoke baseline MLP.
    pub hidden_neurons: usize,
    /// Absolute test accuracy of the un-minimized bespoke baseline.
    pub baseline_accuracy: f64,
    /// Circuit area of the bespoke baseline in mm².
    pub baseline_area_mm2: f64,
    /// Static power of the bespoke baseline in µW.
    pub baseline_power_uw: f64,
    /// Pareto-filtered (normalized accuracy, normalized area) series, one per
    /// standalone technique.
    pub series: Vec<FigureSeries>,
    /// Headline rows: best area gain within the accuracy-loss threshold, one
    /// per technique.
    pub headline: Vec<HeadlineRow>,
    /// Full pipeline evaluations the engine ran for this dataset (cache
    /// misses).
    pub evaluations: usize,
    /// Fraction of evaluation requests answered from the engine's cache.
    pub cache_hit_rate: f64,
    /// Evaluations whose hardware cost came from the analytic fast path (no
    /// netlist was built).
    pub fast_path_evals: usize,
    /// Evaluations (plus finalist verifications) that ran full gate-level
    /// synthesis.
    pub full_synthesis_evals: usize,
    /// Hit rate of the process-wide constant-multiplier cost cache when this
    /// dataset finished, in `[0, 1]` (shared across concurrent datasets).
    pub multiplier_cache_hit_rate: f64,
    /// Wall-clock seconds spent on this dataset (training + sweeps).
    pub elapsed_secs: f64,
}

impl DatasetReport {
    /// The headline area gain of `technique`, `None` when no design met the
    /// accuracy-loss threshold (or the technique was not swept).
    pub fn gain_for(&self, technique: Technique) -> Option<f64> {
        self.headline
            .iter()
            .find(|row| row.technique == technique.name())
            .and_then(|row| row.area_gain)
    }
}

/// The aggregate outcome of a campaign run: one [`DatasetReport`] per dataset
/// plus the configuration that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Effort level the campaign ran at.
    pub effort: Effort,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Accuracy-loss threshold of the headline rows.
    pub max_accuracy_loss: f64,
    /// Per-dataset reports, in configuration order.
    pub reports: Vec<DatasetReport>,
}

impl CampaignResult {
    /// Aggregates the headline rows per technique across all datasets, the
    /// way the paper quotes cross-dataset averages (counting only datasets
    /// where the technique met the threshold).
    pub fn technique_summaries(&self) -> Vec<TechniqueSummary> {
        [
            Technique::Quantization,
            Technique::Pruning,
            Technique::Clustering,
        ]
        .into_iter()
        .map(|technique| {
            let gains: Vec<f64> = self
                .reports
                .iter()
                .filter_map(|report| report.gain_for(technique))
                .collect();
            TechniqueSummary {
                technique: technique.name().to_string(),
                mean_gain: (!gains.is_empty())
                    .then(|| gains.iter().sum::<f64>() / gains.len() as f64),
                max_gain: gains.iter().copied().reduce(f64::max),
                datasets_met: gains.len(),
                datasets_total: self.reports.len(),
            }
        })
        .collect()
    }

    /// Writes the machine-readable artifacts of this run into `dir`: one
    /// `campaign.json` with the full result plus one `campaign_<dataset>.json`
    /// per dataset. Returns the written paths, aggregate first.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`std::io::Error`] when the directory cannot be
    /// created or a file cannot be written.
    pub fn write_artifacts(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let to_io_error =
            |err: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, err);

        let mut paths = Vec::with_capacity(self.reports.len() + 1);
        let aggregate = dir.join("campaign.json");
        std::fs::write(
            &aggregate,
            serde_json::to_string_pretty(self).map_err(to_io_error)?,
        )?;
        paths.push(aggregate);

        for report in &self.reports {
            let path = dir.join(format!("campaign_{}.json", report.name.to_lowercase()));
            std::fs::write(
                &path,
                serde_json::to_string_pretty(report).map_err(to_io_error)?,
            )?;
            paths.push(path);
        }
        Ok(paths)
    }
}

type CampaignProgressFn = dyn Fn(&DatasetReport) + Send + Sync;

/// The cross-dataset campaign driver.
///
/// See the [module documentation](self) for the full picture.
pub struct Campaign {
    config: CampaignConfig,
    progress: Option<Box<CampaignProgressFn>>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("config", &self.config)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl Campaign {
    /// Creates a campaign for `config`.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign {
            config,
            progress: None,
        }
    }

    /// Installs a callback invoked as each dataset completes (from worker
    /// threads, in completion order).
    #[must_use]
    pub fn with_progress(
        mut self,
        callback: impl Fn(&DatasetReport) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// The configuration this campaign runs.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Builds the evaluation engine the campaign uses for `dataset`: baseline
    /// trained at the configured effort's budget, fine-tuning budget set
    /// accordingly.
    ///
    /// # Errors
    ///
    /// Propagates baseline training and synthesis errors.
    pub fn build_engine(&self, dataset: UciDataset) -> Result<EvalEngine, CoreError> {
        Figure1Experiment::new(dataset, self.config.effort, self.config.seed).build_engine()
    }

    /// Runs the campaign: every dataset is trained, swept and summarized on
    /// the rayon worker pool; reports come back in configuration order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty dataset list and
    /// propagates the first per-dataset error otherwise.
    pub fn run(&self) -> Result<CampaignResult, CoreError> {
        if self.config.datasets.is_empty() {
            return Err(CoreError::InvalidConfig {
                context: "campaign needs at least one dataset".into(),
            });
        }
        let reports: Result<Vec<DatasetReport>, CoreError> = self
            .config
            .datasets
            .par_iter()
            .map(|&dataset| {
                let report = self.run_dataset(dataset)?;
                if let Some(callback) = &self.progress {
                    callback(&report);
                }
                Ok(report)
            })
            .collect();
        Ok(CampaignResult {
            effort: self.config.effort,
            seed: self.config.seed,
            max_accuracy_loss: self.config.max_accuracy_loss,
            reports: reports?,
        })
    }

    /// Runs one dataset of the campaign: trains its baseline, sweeps the
    /// three standalone techniques through a fresh engine and packages the
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates baseline, evaluation and synthesis errors.
    pub fn run_dataset(&self, dataset: UciDataset) -> Result<DatasetReport, CoreError> {
        let start = Instant::now();
        let engine = self.build_engine(dataset)?;
        let result = Figure1Experiment::new(dataset, self.config.effort, self.config.seed)
            .run_with(&engine)?;
        let headline = headline_summary(&result, self.config.max_accuracy_loss);
        let stats = engine.stats();
        let descriptor = dataset.descriptor();
        Ok(DatasetReport {
            dataset,
            name: result.dataset,
            feature_count: descriptor.feature_count,
            class_count: descriptor.class_count,
            hidden_neurons: descriptor.hidden_neurons,
            baseline_accuracy: result.baseline_accuracy,
            baseline_area_mm2: result.baseline_area_mm2,
            baseline_power_uw: engine.baseline().synthesis.power_uw,
            series: result.series,
            headline,
            evaluations: stats.misses,
            cache_hit_rate: stats.hit_rate(),
            fast_path_evals: stats.fast_path,
            full_synthesis_evals: stats.full_synthesis,
            multiplier_cache_hit_rate: stats.multiplier_cache_hit_rate(),
            elapsed_secs: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(name: &str, gains: [Option<f64>; 3]) -> DatasetReport {
        let techniques = [
            Technique::Quantization,
            Technique::Pruning,
            Technique::Clustering,
        ];
        DatasetReport {
            dataset: UciDataset::Seeds,
            name: name.to_string(),
            feature_count: 7,
            class_count: 3,
            hidden_neurons: 10,
            baseline_accuracy: 0.9,
            baseline_area_mm2: 10.0,
            baseline_power_uw: 100.0,
            series: Vec::new(),
            headline: techniques
                .iter()
                .zip(gains)
                .map(|(technique, area_gain)| HeadlineRow {
                    dataset: name.to_string(),
                    technique: technique.name().to_string(),
                    baseline_accuracy: 0.9,
                    area_gain,
                    max_accuracy_loss: 0.05,
                })
                .collect(),
            evaluations: 5,
            cache_hit_rate: 0.0,
            fast_path_evals: 5,
            full_synthesis_evals: 0,
            multiplier_cache_hit_rate: 0.0,
            elapsed_secs: 1.0,
        }
    }

    #[test]
    fn empty_campaign_is_rejected() {
        let campaign = Campaign::new(CampaignConfig {
            datasets: Vec::new(),
            ..CampaignConfig::default()
        });
        assert!(matches!(
            campaign.run(),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn default_config_covers_the_full_registry() {
        let config = CampaignConfig::default();
        assert_eq!(config.datasets.len(), UciDataset::all().len());
        assert!(config.datasets.len() >= 10);
        assert!((config.max_accuracy_loss - 0.05).abs() < 1e-12);
    }

    #[test]
    fn technique_summaries_average_only_datasets_that_met_the_threshold() {
        let result = CampaignResult {
            effort: Effort::Quick,
            seed: 1,
            max_accuracy_loss: 0.05,
            reports: vec![
                tiny_report("A", [Some(4.0), Some(2.0), None]),
                tiny_report("B", [Some(6.0), None, None]),
            ],
        };
        let summaries = result.technique_summaries();
        assert_eq!(summaries.len(), 3);
        let quant = &summaries[0];
        assert_eq!(quant.datasets_met, 2);
        assert_eq!(quant.datasets_total, 2);
        assert!((quant.mean_gain.unwrap() - 5.0).abs() < 1e-12);
        assert!((quant.max_gain.unwrap() - 6.0).abs() < 1e-12);
        let cluster = &summaries[2];
        assert_eq!(cluster.datasets_met, 0);
        assert!(cluster.mean_gain.is_none());
        assert!(cluster.max_gain.is_none());
    }

    #[test]
    fn gain_for_reads_the_headline_rows() {
        let report = tiny_report("A", [Some(4.0), None, Some(1.5)]);
        assert_eq!(report.gain_for(Technique::Quantization), Some(4.0));
        assert_eq!(report.gain_for(Technique::Pruning), None);
        assert_eq!(report.gain_for(Technique::Clustering), Some(1.5));
        assert_eq!(report.gain_for(Technique::Combined), None);
    }

    #[test]
    fn campaign_result_round_trips_through_json() {
        let result = CampaignResult {
            effort: Effort::Quick,
            seed: 7,
            max_accuracy_loss: 0.05,
            reports: vec![tiny_report("Seeds", [Some(3.0), Some(2.0), None])],
        };
        let json = serde_json::to_string_pretty(&result).unwrap();
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result);
    }

    #[test]
    fn write_artifacts_emits_aggregate_and_per_dataset_files() {
        let result = CampaignResult {
            effort: Effort::Quick,
            seed: 7,
            max_accuracy_loss: 0.05,
            reports: vec![
                tiny_report("Seeds", [Some(3.0), None, None]),
                tiny_report("Balance", [Some(2.0), None, None]),
            ],
        };
        let dir = std::env::temp_dir().join(format!(
            "pmlp-campaign-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let paths = result.write_artifacts(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths[0].ends_with("campaign.json"));
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        let back: CampaignResult = serde_json::from_str(&text).unwrap();
        assert_eq!(back, result);
        let per_dataset = std::fs::read_to_string(&paths[2]).unwrap();
        let report: DatasetReport = serde_json::from_str(&per_dataset).unwrap();
        assert_eq!(report, result.reports[1]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
