//! Evaluation of one minimization configuration: software accuracy plus
//! bespoke-circuit area/power via the hardware model.

use crate::baseline::BaselineDesign;
use crate::bridge::{circuit_spec_from_layers, estimate_area, synthesize_area};
use crate::error::CoreError;
use pmlp_hw::{IntInferEngine, SharingStrategy};
use pmlp_minimize::{minimize, IntegerLayer, MinimizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which hardware model a candidate evaluation runs through.
///
/// The two tiers produce bit-for-bit identical numbers (the fast path mirrors
/// synthesis gate for gate; the equivalence suite asserts exact equality) —
/// they differ only in cost and in whether a netlist exists afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SynthesisTier {
    /// Analytic cost model ([`pmlp_hw::cost::estimate_circuit`]): no netlist,
    /// an order of magnitude cheaper. The default for search loops.
    #[default]
    FastPath,
    /// Full gate-level synthesis ([`pmlp_hw::BespokeMlpCircuit`]): builds the
    /// netlist. Used for the baseline, Pareto-front finalists and anything
    /// that needs simulation or Verilog export.
    FullSynthesis,
}

/// Which arithmetic measures a candidate's test accuracy.
///
/// Both tiers consume the *same* test inputs — features snapped to the
/// circuit's unsigned `input_bits` grid — so the only difference is the
/// arithmetic: `f32` with fake-quantized weights versus the exact integer
/// recurrence the printed circuit implements. The differential suite holds
/// the two together on every registry dataset; the integer tier is
/// additionally proven bit-identical to gate-level netlist simulation by the
/// `intinfer_vs_netlist` battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AccuracyTier {
    /// The minimized float model (fake-quantized weights) evaluated in `f32`
    /// on the quantized test set. Kept for the float-vs-hardware ablation
    /// and as a cross-check of the integer engine.
    Float,
    /// Pure-integer inference over the minimized integer layers
    /// ([`pmlp_hw::intinfer`]) — the exact arithmetic of the bespoke
    /// circuit. The default: search, sweeps and campaigns score candidates
    /// on what the hardware will actually compute.
    #[default]
    Integer,
}

/// Everything needed to evaluate candidate configurations against a baseline.
#[derive(Debug, Clone)]
pub struct EvaluationContext<'a> {
    baseline: &'a BaselineDesign,
    /// Fine-tuning epochs granted to every candidate (kept small inside the
    /// GA loop, larger for the final sweeps).
    pub fine_tune_epochs: usize,
    /// Which hardware model scores the candidates (fast path by default).
    pub tier: SynthesisTier,
    /// Which arithmetic measures candidate accuracy. Defaults to the tier
    /// the baseline itself was scored with, so normalized accuracies always
    /// compare like with like.
    pub accuracy_tier: AccuracyTier,
}

impl<'a> EvaluationContext<'a> {
    /// Creates a context with the default fine-tuning budget (8 epochs), the
    /// fast-path hardware model, and the baseline's accuracy tier.
    pub fn new(baseline: &'a BaselineDesign) -> Self {
        EvaluationContext {
            baseline,
            fine_tune_epochs: 8,
            tier: SynthesisTier::default(),
            accuracy_tier: baseline.accuracy_tier,
        }
    }

    /// Overrides the fine-tuning budget.
    #[must_use]
    pub fn with_fine_tune_epochs(mut self, epochs: usize) -> Self {
        self.fine_tune_epochs = epochs;
        self
    }

    /// Overrides the hardware-model tier.
    #[must_use]
    pub fn with_tier(mut self, tier: SynthesisTier) -> Self {
        self.tier = tier;
        self
    }

    /// Overrides the accuracy-measurement tier. Normalized accuracies stay
    /// meaningful only when this matches the tier the baseline was scored
    /// with ([`crate::baseline::BaselineConfig::accuracy_tier`]).
    #[must_use]
    pub fn with_accuracy_tier(mut self, tier: AccuracyTier) -> Self {
        self.accuracy_tier = tier;
        self
    }

    /// The baseline this context evaluates against.
    pub fn baseline(&self) -> &BaselineDesign {
        self.baseline
    }
}

/// One evaluated design: a minimization configuration together with its
/// absolute and baseline-normalized metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The configuration that was evaluated.
    pub config: MinimizationConfig,
    /// Test accuracy of the minimized classifier, in `[0, 1]`.
    pub accuracy: f64,
    /// Bespoke-circuit area in mm².
    pub area_mm2: f64,
    /// Bespoke-circuit static power in µW.
    pub power_uw: f64,
    /// Accuracy normalized to the baseline (`1.0` = same as baseline).
    pub normalized_accuracy: f64,
    /// Area normalized to the baseline (`1.0` = same as baseline; smaller is
    /// better).
    pub normalized_area: f64,
    /// Achieved weight sparsity.
    pub sparsity: f64,
    /// Gate count of the synthesized circuit.
    pub gate_count: usize,
}

impl DesignPoint {
    /// Absolute accuracy loss relative to the baseline (positive = worse than
    /// baseline), in accuracy points (0.05 = five percentage points).
    pub fn accuracy_loss(&self) -> f64 {
        1.0 - self.normalized_accuracy_to_loss_ratio()
    }

    fn normalized_accuracy_to_loss_ratio(&self) -> f64 {
        // The paper measures accuracy loss as (baseline - candidate) in
        // absolute accuracy points; keep helpers consistent with that.
        1.0 - (self.baseline_accuracy() - self.accuracy)
    }

    fn baseline_accuracy(&self) -> f64 {
        if self.normalized_accuracy > 0.0 {
            self.accuracy / self.normalized_accuracy
        } else {
            self.accuracy
        }
    }

    /// Area reduction factor relative to the baseline (`2.0` = half the area).
    pub fn area_gain(&self) -> f64 {
        if self.normalized_area > 0.0 {
            1.0 / self.normalized_area
        } else {
            f64::INFINITY
        }
    }
}

/// Evaluates `config` against the baseline in `ctx`.
///
/// The candidate is produced by running the full minimization pipeline
/// (prune → cluster → QAT) on a copy of the baseline's float model, its
/// accuracy is measured on the held-out test split, and its bespoke circuit is
/// synthesized with multiplier sharing enabled exactly when the configuration
/// clusters weights.
///
/// `salt` perturbs the fine-tuning RNG so repeated evaluations of the same
/// configuration (e.g. in different GA generations) stay deterministic per
/// `(config, salt)` pair.
///
/// # Errors
///
/// Propagates minimization and synthesis errors.
pub fn evaluate_config(
    ctx: &EvaluationContext<'_>,
    config: &MinimizationConfig,
    salt: u64,
) -> Result<DesignPoint, CoreError> {
    evaluate_config_detailed(ctx, config, salt).map(|detailed| detailed.point)
}

/// One evaluated design together with the artefacts the two-tier engine needs
/// to finalize it later: the minimized integer layers (so Pareto-front
/// finalists can run full synthesis without re-training) and the sharing
/// strategy the hardware model used.
#[derive(Debug, Clone)]
pub struct EvaluatedDesign {
    /// The scored design point.
    pub point: DesignPoint,
    /// Integer layers the minimization pipeline produced.
    pub layers: Vec<IntegerLayer>,
    /// Multiplier-sharing strategy used for the hardware cost.
    pub sharing: SharingStrategy,
}

/// The full-detail form of [`evaluate_config`]: additionally returns the
/// minimized integer layers and the sharing strategy, which the engine caches
/// so finalist verification can re-synthesize without re-running the
/// minimization pipeline.
///
/// # Errors
///
/// Propagates minimization and synthesis errors.
pub fn evaluate_config_detailed(
    ctx: &EvaluationContext<'_>,
    config: &MinimizationConfig,
    salt: u64,
) -> Result<EvaluatedDesign, CoreError> {
    let baseline = ctx.baseline();
    let mut config = *config;
    config.input_bits = baseline.input_bits;
    config.fine_tune_epochs = ctx.fine_tune_epochs;

    let mut rng = StdRng::seed_from_u64(baseline.seed ^ salt ^ config_hash(&config));
    let minimized = minimize(
        &baseline.model,
        &baseline.train,
        Some(&baseline.test),
        &config,
        &mut rng,
    )?;
    let sharing = if minimized.shares_multipliers() {
        SharingStrategy::SharedPerInput
    } else {
        SharingStrategy::None
    };
    let accuracy = match ctx.accuracy_tier {
        AccuracyTier::Float => minimized.accuracy(&baseline.quantized_test),
        AccuracyTier::Integer => integer_accuracy(
            &minimized.integer_layers,
            config.input_bits,
            sharing,
            &baseline.test_rows,
            baseline.test.labels(),
        )?,
    };
    let synthesis = match ctx.tier {
        SynthesisTier::FastPath => estimate_area(
            &minimized.integer_layers,
            config.input_bits,
            &baseline.library,
            sharing,
        )?,
        SynthesisTier::FullSynthesis => synthesize_area(
            &minimized.integer_layers,
            config.input_bits,
            &baseline.library,
            sharing,
        )?,
    };

    let point = DesignPoint {
        config,
        accuracy,
        area_mm2: synthesis.area_mm2,
        power_uw: synthesis.power_uw,
        normalized_accuracy: if baseline.accuracy > 0.0 {
            accuracy / baseline.accuracy
        } else {
            0.0
        },
        normalized_area: if baseline.synthesis.area_mm2 > 0.0 {
            synthesis.area_mm2 / baseline.synthesis.area_mm2
        } else {
            0.0
        },
        sparsity: minimized.sparsity(),
        gate_count: synthesis.gate_count,
    };
    Ok(EvaluatedDesign {
        point,
        layers: minimized.integer_layers,
        sharing,
    })
}

/// Scores minimized integer layers on pre-quantized test rows with the
/// pure-integer inference engine ([`pmlp_hw::intinfer`]) — the exact
/// arithmetic of the bespoke circuit, bit-identical to gate-level netlist
/// simulation.
///
/// `rows` is the flattened sample-major grid view of the test features (see
/// [`pmlp_hw::quantize_rows`]); `sharing` selects the kernel mirroring the
/// circuit's multiplier-sharing structure (it never changes the scores, only
/// which code path computes them).
///
/// # Errors
///
/// Returns [`CoreError::Hw`] when the layers do not form a valid circuit
/// spec or their worst-case accumulator exceeds `i64`.
pub fn integer_accuracy(
    layers: &[IntegerLayer],
    input_bits: u8,
    sharing: SharingStrategy,
    rows: &[u16],
    labels: &[usize],
) -> Result<f64, CoreError> {
    let spec = circuit_spec_from_layers(layers, input_bits)?;
    let engine = IntInferEngine::from_spec_with(&spec, sharing).map_err(CoreError::from)?;
    Ok(engine.accuracy(rows, labels))
}

/// Deterministic hash of a configuration, used to derive per-candidate seeds.
fn config_hash(config: &MinimizationConfig) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(config.weight_bits.map(u64::from).unwrap_or(99));
    mix(config.sparsity.map(|s| (s * 1000.0) as u64).unwrap_or(9999));
    mix(config.clusters_per_input.map(|c| c as u64).unwrap_or(77777));
    mix(u64::from(config.input_bits));
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineConfig;
    use pmlp_data::UciDataset;

    fn baseline() -> BaselineDesign {
        BaselineDesign::train_with(
            UciDataset::Seeds,
            5,
            &BaselineConfig {
                epochs: 12,
                ..BaselineConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn baseline_config_evaluates_to_unity_normalization() {
        let baseline = baseline();
        let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(2);
        let point = evaluate_config(&ctx, &MinimizationConfig::baseline(), 0).unwrap();
        // The baseline configuration reproduces the baseline circuit exactly.
        assert!(
            (point.normalized_area - 1.0).abs() < 1e-9,
            "area {}",
            point.normalized_area
        );
        assert!((point.area_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_reduces_area() {
        let baseline = baseline();
        let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(3);
        let q3 =
            evaluate_config(&ctx, &MinimizationConfig::default().with_weight_bits(3), 0).unwrap();
        assert!(
            q3.normalized_area < 0.8,
            "3-bit area ratio {}",
            q3.normalized_area
        );
        assert!(q3.area_gain() > 1.25);
    }

    #[test]
    fn pruning_reduces_area_proportionally() {
        let baseline = baseline();
        let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(3);
        let p =
            evaluate_config(&ctx, &MinimizationConfig::default().with_sparsity(0.6), 0).unwrap();
        assert!(p.sparsity >= 0.55);
        assert!(
            p.normalized_area < 0.85,
            "pruned area ratio {}",
            p.normalized_area
        );
    }

    #[test]
    fn fast_path_and_full_synthesis_tiers_agree_exactly() {
        let baseline = baseline();
        let fast_ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(2);
        let full_ctx = EvaluationContext::new(&baseline)
            .with_fine_tune_epochs(2)
            .with_tier(SynthesisTier::FullSynthesis);
        assert_eq!(fast_ctx.tier, SynthesisTier::FastPath);
        for config in [
            MinimizationConfig::baseline(),
            MinimizationConfig::default().with_weight_bits(3),
            MinimizationConfig::default().with_sparsity(0.5),
            MinimizationConfig::default().with_clusters(3),
        ] {
            let fast = evaluate_config(&fast_ctx, &config, 1).unwrap();
            let full = evaluate_config(&full_ctx, &config, 1).unwrap();
            assert_eq!(fast, full, "tier mismatch for {config:?}");
        }
    }

    #[test]
    fn evaluation_is_deterministic_per_salt() {
        let baseline = baseline();
        let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(2);
        let cfg = MinimizationConfig::default().with_weight_bits(4);
        let a = evaluate_config(&ctx, &cfg, 9).unwrap();
        let b = evaluate_config(&ctx, &cfg, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_hash_distinguishes_configs() {
        let a = config_hash(&MinimizationConfig::default().with_weight_bits(3));
        let b = config_hash(&MinimizationConfig::default().with_weight_bits(4));
        let c = config_hash(&MinimizationConfig::default().with_sparsity(0.3));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
