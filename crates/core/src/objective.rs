//! Evaluation of one minimization configuration: software accuracy plus
//! bespoke-circuit area/power via the hardware model.

use crate::baseline::BaselineDesign;
use crate::bridge::{circuit_spec_from_layers, estimate_area, synthesize_area};
use crate::error::CoreError;
use pmlp_hw::{IntInferEngine, SharingStrategy};
use pmlp_minimize::{minimize, IntegerLayer, MinimizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which hardware model a candidate evaluation runs through.
///
/// The two tiers produce bit-for-bit identical numbers (the fast path mirrors
/// synthesis gate for gate; the equivalence suite asserts exact equality) —
/// they differ only in cost and in whether a netlist exists afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SynthesisTier {
    /// Analytic cost model ([`pmlp_hw::cost::estimate_circuit`]): no netlist,
    /// an order of magnitude cheaper. The default for search loops.
    #[default]
    FastPath,
    /// Full gate-level synthesis ([`pmlp_hw::BespokeMlpCircuit`]): builds the
    /// netlist. Used for the baseline, Pareto-front finalists and anything
    /// that needs simulation or Verilog export.
    FullSynthesis,
}

/// Which arithmetic measures a candidate's test accuracy.
///
/// Both tiers consume the *same* test inputs — features snapped to the
/// circuit's unsigned `input_bits` grid — so the only difference is the
/// arithmetic: `f32` with fake-quantized weights versus the exact integer
/// recurrence the printed circuit implements. The differential suite holds
/// the two together on every registry dataset; the integer tier is
/// additionally proven bit-identical to gate-level netlist simulation by the
/// `intinfer_vs_netlist` battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AccuracyTier {
    /// The minimized float model (fake-quantized weights) evaluated in `f32`
    /// on the quantized test set. Kept for the float-vs-hardware ablation
    /// and as a cross-check of the integer engine.
    Float,
    /// Pure-integer inference over the minimized integer layers
    /// ([`pmlp_hw::intinfer`]) — the exact arithmetic of the bespoke
    /// circuit. The default: search, sweeps and campaigns score candidates
    /// on what the hardware will actually compute.
    #[default]
    Integer,
}

/// Everything needed to evaluate candidate configurations against a baseline.
#[derive(Debug, Clone)]
pub struct EvaluationContext<'a> {
    baseline: &'a BaselineDesign,
    /// Fine-tuning epochs granted to every candidate (kept small inside the
    /// GA loop, larger for the final sweeps).
    pub fine_tune_epochs: usize,
    /// Which hardware model scores the candidates (fast path by default).
    pub tier: SynthesisTier,
    /// Which arithmetic measures candidate accuracy. Defaults to the tier
    /// the baseline itself was scored with, so normalized accuracies always
    /// compare like with like.
    pub accuracy_tier: AccuracyTier,
}

impl<'a> EvaluationContext<'a> {
    /// Creates a context with the default fine-tuning budget (8 epochs), the
    /// fast-path hardware model, and the baseline's accuracy tier.
    pub fn new(baseline: &'a BaselineDesign) -> Self {
        EvaluationContext {
            baseline,
            fine_tune_epochs: 8,
            tier: SynthesisTier::default(),
            accuracy_tier: baseline.accuracy_tier,
        }
    }

    /// Overrides the fine-tuning budget.
    #[must_use]
    pub fn with_fine_tune_epochs(mut self, epochs: usize) -> Self {
        self.fine_tune_epochs = epochs;
        self
    }

    /// Overrides the hardware-model tier.
    #[must_use]
    pub fn with_tier(mut self, tier: SynthesisTier) -> Self {
        self.tier = tier;
        self
    }

    /// Overrides the accuracy-measurement tier. Normalized accuracies stay
    /// meaningful only when this matches the tier the baseline was scored
    /// with ([`crate::baseline::BaselineConfig::accuracy_tier`]).
    #[must_use]
    pub fn with_accuracy_tier(mut self, tier: AccuracyTier) -> Self {
        self.accuracy_tier = tier;
        self
    }

    /// The baseline this context evaluates against.
    pub fn baseline(&self) -> &BaselineDesign {
        self.baseline
    }
}

/// One evaluated design: a minimization configuration together with its
/// absolute and baseline-normalized metrics.
///
/// A point always carries the **full** measurement of its circuit — accuracy,
/// area, power and critical-path delay — regardless of which objectives the
/// search that produced it selected. Objective vectors are *projections* of
/// this record (see [`ObjectiveSpace::values`]), taken after cache lookup,
/// which is why a store populated under one objective subset warm-starts a
/// search over any other subset without recomputing anything.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The configuration that was evaluated.
    pub config: MinimizationConfig,
    /// Test accuracy of the minimized classifier, in `[0, 1]`.
    pub accuracy: f64,
    /// Bespoke-circuit area in mm².
    pub area_mm2: f64,
    /// Bespoke-circuit static power in µW.
    pub power_uw: f64,
    /// Critical-path delay of the bespoke circuit in µs, from the timing
    /// report (fast path and full synthesis agree bit for bit). `NaN` for
    /// points parsed from records written before delay was persisted; such
    /// points rank worst under any delay/energy objective and are skipped by
    /// the hypervolume indicator, but behave exactly as before under the
    /// classic (accuracy, area) space.
    pub delay_us: f64,
    /// Accuracy normalized to the baseline (`1.0` = same as baseline).
    pub normalized_accuracy: f64,
    /// Area normalized to the baseline (`1.0` = same as baseline; smaller is
    /// better).
    pub normalized_area: f64,
    /// Achieved weight sparsity.
    pub sparsity: f64,
    /// Gate count of the synthesized circuit.
    pub gate_count: usize,
}

// Hand-written serde (instead of the derive) for wire compatibility in both
// directions: records and checkpoints written before `delay_us` existed must
// keep parsing (a missing field reads back as `NaN`), and an unknown delay
// must round-trip as *absent* rather than as `null` (the JSON renderer maps
// non-finite numbers to `null`, which the f64 parser would then reject).
impl Serialize for DesignPoint {
    fn serialize_value(&self) -> serde::json::Value {
        use serde::json::Value;
        let mut entries = vec![
            ("config".to_string(), self.config.serialize_value()),
            ("accuracy".to_string(), self.accuracy.serialize_value()),
            ("area_mm2".to_string(), self.area_mm2.serialize_value()),
            ("power_uw".to_string(), self.power_uw.serialize_value()),
        ];
        if self.delay_us.is_finite() {
            entries.push(("delay_us".to_string(), self.delay_us.serialize_value()));
        }
        entries.extend([
            (
                "normalized_accuracy".to_string(),
                self.normalized_accuracy.serialize_value(),
            ),
            (
                "normalized_area".to_string(),
                self.normalized_area.serialize_value(),
            ),
            ("sparsity".to_string(), self.sparsity.serialize_value()),
            ("gate_count".to_string(), self.gate_count.serialize_value()),
        ]);
        Value::Object(entries)
    }
}

impl Deserialize for DesignPoint {
    fn deserialize_value(value: &serde::json::Value) -> Result<Self, serde::json::Error> {
        Ok(DesignPoint {
            config: Deserialize::deserialize_value(value.field("config")?)?,
            accuracy: Deserialize::deserialize_value(value.field("accuracy")?)?,
            area_mm2: Deserialize::deserialize_value(value.field("area_mm2")?)?,
            power_uw: Deserialize::deserialize_value(value.field("power_uw")?)?,
            // Absent in records/checkpoints written before delay was
            // persisted: those points predate the delay/energy objectives.
            delay_us: match value.get("delay_us") {
                Some(v) => Deserialize::deserialize_value(v)?,
                None => f64::NAN,
            },
            normalized_accuracy: Deserialize::deserialize_value(
                value.field("normalized_accuracy")?,
            )?,
            normalized_area: Deserialize::deserialize_value(value.field("normalized_area")?)?,
            sparsity: Deserialize::deserialize_value(value.field("sparsity")?)?,
            gate_count: Deserialize::deserialize_value(value.field("gate_count")?)?,
        })
    }
}

impl DesignPoint {
    /// Absolute accuracy loss relative to the baseline, in accuracy points
    /// (`0.05` = five percentage points; negative = *better* than baseline).
    ///
    /// This is **the** definition of loss in this workspace —
    /// `baseline_accuracy − accuracy` — shared by report rendering, the
    /// `--max-loss`-style headline filters
    /// ([`crate::pareto::area_gain_at_accuracy_loss`]) and the
    /// [`ObjectiveKind::AccuracyLoss`] axis of the hypervolume indicator.
    pub fn accuracy_loss(&self) -> f64 {
        self.baseline_accuracy() - self.accuracy
    }

    /// The baseline accuracy this point was normalized against, recovered
    /// from the stored normalization (points do not carry their baseline).
    pub fn baseline_accuracy(&self) -> f64 {
        if self.normalized_accuracy > 0.0 {
            self.accuracy / self.normalized_accuracy
        } else {
            self.accuracy
        }
    }

    /// Area reduction factor relative to the baseline (`2.0` = half the area).
    pub fn area_gain(&self) -> f64 {
        if self.normalized_area > 0.0 {
            1.0 / self.normalized_area
        } else {
            f64::INFINITY
        }
    }

    /// Energy per inference in pJ: static power (µW) × critical-path delay
    /// (µs). `NaN` when the point predates delay persistence.
    pub fn energy_pj(&self) -> f64 {
        self.power_uw * self.delay_us
    }

    /// The full measurement record of this point, from which any objective
    /// vector is projected.
    pub fn metrics(&self) -> DesignMetrics {
        DesignMetrics {
            accuracy: self.accuracy,
            area_mm2: self.area_mm2,
            power_uw: self.power_uw,
            delay_us: self.delay_us,
            energy_pj: self.energy_pj(),
        }
    }
}

/// The complete measurement of one circuit — every quantity an
/// [`ObjectiveSpace`] can project an objective vector from.
///
/// Derived quantities (energy) are computed, never stored: a
/// [`DesignPoint`] persists only `accuracy`/`area_mm2`/`power_uw`/`delay_us`,
/// so the on-disk record format is independent of which objectives exist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignMetrics {
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Cell area in mm².
    pub area_mm2: f64,
    /// Static power in µW.
    pub power_uw: f64,
    /// Critical-path delay in µs.
    pub delay_us: f64,
    /// Energy per inference in pJ (`power_uw × delay_us`).
    pub energy_pj: f64,
}

impl DesignMetrics {
    /// Builds the metrics record from a synthesis summary plus the measured
    /// accuracy — the form used for baselines, whose reference values anchor
    /// hypervolume normalization.
    pub fn from_synthesis(accuracy: f64, synthesis: &crate::bridge::SynthesisSummary) -> Self {
        DesignMetrics {
            accuracy,
            area_mm2: synthesis.area_mm2,
            power_uw: synthesis.power_uw,
            delay_us: synthesis.critical_path_us,
            energy_pj: synthesis.energy_pj(),
        }
    }
}

/// One axis of the multi-objective search space.
///
/// Every kind knows how to read its **raw measured value** off a
/// [`DesignPoint`] and whether larger raw values are better. Selection
/// (dominance, crowding) compares raw values directly — never re-derived
/// losses or ratios — so the classic two-objective space is bit-for-bit the
/// comparison the pipeline always performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectiveKind {
    /// Accuracy loss vs. the baseline, minimized. The raw value compared
    /// during selection is the measured `accuracy` (maximized — identical
    /// ordering, no floating-point re-derivation); the hypervolume axis is
    /// the loss `baseline_accuracy − accuracy`.
    AccuracyLoss,
    /// Cell area in mm², minimized.
    Area,
    /// Static power in µW, minimized.
    Power,
    /// Critical-path delay in µs, minimized.
    Delay,
    /// Energy per inference in pJ (`power × delay`), minimized.
    EnergyPerInference,
}

impl ObjectiveKind {
    /// The raw measured value selection compares for this axis.
    pub fn raw_value(self, point: &DesignPoint) -> f64 {
        match self {
            ObjectiveKind::AccuracyLoss => point.accuracy,
            ObjectiveKind::Area => point.area_mm2,
            ObjectiveKind::Power => point.power_uw,
            ObjectiveKind::Delay => point.delay_us,
            ObjectiveKind::EnergyPerInference => point.energy_pj(),
        }
    }

    /// `true` when larger raw values are better (only the accuracy axis).
    pub fn maximize_raw(self) -> bool {
        matches!(self, ObjectiveKind::AccuracyLoss)
    }

    /// Short CLI/report name of the axis.
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveKind::AccuracyLoss => "accuracy",
            ObjectiveKind::Area => "area",
            ObjectiveKind::Power => "power",
            ObjectiveKind::Delay => "delay",
            ObjectiveKind::EnergyPerInference => "energy",
        }
    }

    /// Parses one CLI token (`accuracy`/`loss`, `area`, `power`, `delay`,
    /// `energy`).
    pub fn parse(token: &str) -> Option<Self> {
        match token.trim() {
            "accuracy" | "loss" | "accuracy_loss" => Some(ObjectiveKind::AccuracyLoss),
            "area" => Some(ObjectiveKind::Area),
            "power" => Some(ObjectiveKind::Power),
            "delay" => Some(ObjectiveKind::Delay),
            "energy" | "energy_per_inference" => Some(ObjectiveKind::EnergyPerInference),
            _ => None,
        }
    }
}

/// An ordered list of objectives — the search space NSGA-II fronts, crowding
/// and environmental selection operate over, and the axes of the hypervolume
/// indicator.
///
/// The default (“classic”) space is `(accuracy, area)`, reproducing the
/// paper's fixed trade-off bit for bit. Objective choice never touches the
/// evaluation cache key: every candidate is measured in full and the vector
/// is projected afterwards, so stores and shared servers populated under one
/// space serve every other space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveSpace {
    /// The ordered objective axes.
    pub objectives: Vec<ObjectiveKind>,
}

impl Default for ObjectiveSpace {
    fn default() -> Self {
        Self::classic()
    }
}

impl std::fmt::Display for ObjectiveSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, kind) in self.objectives.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(kind.name())?;
        }
        Ok(())
    }
}

impl ObjectiveSpace {
    /// The paper's fixed two-objective space: accuracy (loss) vs. area.
    pub fn classic() -> Self {
        ObjectiveSpace {
            objectives: vec![ObjectiveKind::AccuracyLoss, ObjectiveKind::Area],
        }
    }

    /// Builds a space from an explicit axis list.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the list is empty or
    /// contains a duplicate axis.
    pub fn new(objectives: Vec<ObjectiveKind>) -> Result<Self, CoreError> {
        if objectives.is_empty() {
            return Err(CoreError::InvalidConfig {
                context: "objective space must name at least one objective".into(),
            });
        }
        for (i, kind) in objectives.iter().enumerate() {
            if objectives[..i].contains(kind) {
                return Err(CoreError::InvalidConfig {
                    context: format!("duplicate objective `{}`", kind.name()),
                });
            }
        }
        Ok(ObjectiveSpace { objectives })
    }

    /// Parses a comma-separated CLI list, e.g. `accuracy,area,energy`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on an unknown token, an empty
    /// list or a duplicate axis.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let objectives = text
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| {
                ObjectiveKind::parse(t).ok_or_else(|| CoreError::InvalidConfig {
                    context: format!(
                        "unknown objective `{}` (expected accuracy, area, power, delay or energy)",
                        t.trim()
                    ),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(objectives)
    }

    /// `true` when this is the classic `(accuracy, area)` space.
    pub fn is_classic(&self) -> bool {
        self.objectives == [ObjectiveKind::AccuracyLoss, ObjectiveKind::Area]
    }

    /// Number of objective axes.
    pub fn dim(&self) -> usize {
        self.objectives.len()
    }

    /// Validates the axis list of a deserialized space (checkpoint/config
    /// payloads bypass [`ObjectiveSpace::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] as [`ObjectiveSpace::new`] would.
    pub fn validate(&self) -> Result<(), CoreError> {
        Self::new(self.objectives.clone()).map(|_| ())
    }

    /// Projects the raw objective vector selection compares (one entry per
    /// axis, in axis order).
    pub fn values(&self, point: &DesignPoint) -> Vec<f64> {
        self.objectives
            .iter()
            .map(|kind| kind.raw_value(point))
            .collect()
    }

    /// `true` when any axis of `point` is NaN — such points never dominate
    /// anything and sort behind every clean point.
    pub fn has_nan(&self, point: &DesignPoint) -> bool {
        self.objectives
            .iter()
            .any(|kind| kind.raw_value(point).is_nan())
    }

    /// Pareto dominance of `a` over `b` in this space: at least as good on
    /// every axis and strictly better on at least one. NaN-safe: a point
    /// with any NaN axis dominates nothing and is dominated by every clean
    /// point.
    pub fn dominates(&self, a: &DesignPoint, b: &DesignPoint) -> bool {
        if self.has_nan(a) {
            return false;
        }
        if self.has_nan(b) {
            return true;
        }
        let mut strictly_better = false;
        for kind in &self.objectives {
            let (va, vb) = (kind.raw_value(a), kind.raw_value(b));
            let (better, worse) = if kind.maximize_raw() {
                (va > vb, va < vb)
            } else {
                (va < vb, va > vb)
            };
            if worse {
                return false;
            }
            if better {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

/// Evaluates `config` against the baseline in `ctx`.
///
/// The candidate is produced by running the full minimization pipeline
/// (prune → cluster → QAT) on a copy of the baseline's float model, its
/// accuracy is measured on the held-out test split, and its bespoke circuit is
/// synthesized with multiplier sharing enabled exactly when the configuration
/// clusters weights.
///
/// `salt` perturbs the fine-tuning RNG so repeated evaluations of the same
/// configuration (e.g. in different GA generations) stay deterministic per
/// `(config, salt)` pair.
///
/// # Errors
///
/// Propagates minimization and synthesis errors.
pub fn evaluate_config(
    ctx: &EvaluationContext<'_>,
    config: &MinimizationConfig,
    salt: u64,
) -> Result<DesignPoint, CoreError> {
    evaluate_config_detailed(ctx, config, salt).map(|detailed| detailed.point)
}

/// One evaluated design together with the artefacts the two-tier engine needs
/// to finalize it later: the minimized integer layers (so Pareto-front
/// finalists can run full synthesis without re-training) and the sharing
/// strategy the hardware model used.
#[derive(Debug, Clone)]
pub struct EvaluatedDesign {
    /// The scored design point.
    pub point: DesignPoint,
    /// Integer layers the minimization pipeline produced.
    pub layers: Vec<IntegerLayer>,
    /// Multiplier-sharing strategy used for the hardware cost.
    pub sharing: SharingStrategy,
}

/// The full-detail form of [`evaluate_config`]: additionally returns the
/// minimized integer layers and the sharing strategy, which the engine caches
/// so finalist verification can re-synthesize without re-running the
/// minimization pipeline.
///
/// # Errors
///
/// Propagates minimization and synthesis errors.
pub fn evaluate_config_detailed(
    ctx: &EvaluationContext<'_>,
    config: &MinimizationConfig,
    salt: u64,
) -> Result<EvaluatedDesign, CoreError> {
    let baseline = ctx.baseline();
    let mut config = *config;
    config.input_bits = baseline.input_bits;
    config.fine_tune_epochs = ctx.fine_tune_epochs;

    let mut rng = StdRng::seed_from_u64(baseline.seed ^ salt ^ config_hash(&config));
    let minimized = minimize(
        &baseline.model,
        &baseline.train,
        Some(&baseline.test),
        &config,
        &mut rng,
    )?;
    let sharing = if minimized.shares_multipliers() {
        SharingStrategy::SharedPerInput
    } else {
        SharingStrategy::None
    };
    let accuracy = match ctx.accuracy_tier {
        AccuracyTier::Float => minimized.accuracy(&baseline.quantized_test),
        AccuracyTier::Integer => integer_accuracy(
            &minimized.integer_layers,
            config.input_bits,
            sharing,
            &baseline.test_rows,
            baseline.test.labels(),
        )?,
    };
    let synthesis = match ctx.tier {
        SynthesisTier::FastPath => estimate_area(
            &minimized.integer_layers,
            config.input_bits,
            &baseline.library,
            sharing,
        )?,
        SynthesisTier::FullSynthesis => synthesize_area(
            &minimized.integer_layers,
            config.input_bits,
            &baseline.library,
            sharing,
        )?,
    };

    let point = DesignPoint {
        config,
        accuracy,
        area_mm2: synthesis.area_mm2,
        power_uw: synthesis.power_uw,
        delay_us: synthesis.critical_path_us,
        normalized_accuracy: if baseline.accuracy > 0.0 {
            accuracy / baseline.accuracy
        } else {
            0.0
        },
        normalized_area: if baseline.synthesis.area_mm2 > 0.0 {
            synthesis.area_mm2 / baseline.synthesis.area_mm2
        } else {
            0.0
        },
        sparsity: minimized.sparsity(),
        gate_count: synthesis.gate_count,
    };
    Ok(EvaluatedDesign {
        point,
        layers: minimized.integer_layers,
        sharing,
    })
}

/// Scores minimized integer layers on pre-quantized test rows with the
/// pure-integer inference engine ([`pmlp_hw::intinfer`]) — the exact
/// arithmetic of the bespoke circuit, bit-identical to gate-level netlist
/// simulation.
///
/// `rows` is the flattened sample-major grid view of the test features (see
/// [`pmlp_hw::quantize_rows`]); `sharing` selects the kernel mirroring the
/// circuit's multiplier-sharing structure (it never changes the scores, only
/// which code path computes them).
///
/// # Errors
///
/// Returns [`CoreError::Hw`] when the layers do not form a valid circuit
/// spec or their worst-case accumulator exceeds `i64`.
pub fn integer_accuracy(
    layers: &[IntegerLayer],
    input_bits: u8,
    sharing: SharingStrategy,
    rows: &[u16],
    labels: &[usize],
) -> Result<f64, CoreError> {
    let spec = circuit_spec_from_layers(layers, input_bits)?;
    let engine = IntInferEngine::from_spec_with(&spec, sharing).map_err(CoreError::from)?;
    Ok(engine.accuracy(rows, labels))
}

/// Deterministic hash of a configuration, used to derive per-candidate seeds.
fn config_hash(config: &MinimizationConfig) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(config.weight_bits.map(u64::from).unwrap_or(99));
    mix(config.sparsity.map(|s| (s * 1000.0) as u64).unwrap_or(9999));
    mix(config.clusters_per_input.map(|c| c as u64).unwrap_or(77777));
    mix(u64::from(config.input_bits));
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineConfig;
    use pmlp_data::UciDataset;

    fn baseline() -> BaselineDesign {
        BaselineDesign::train_with(
            UciDataset::Seeds,
            5,
            &BaselineConfig {
                epochs: 12,
                ..BaselineConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn baseline_config_evaluates_to_unity_normalization() {
        let baseline = baseline();
        let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(2);
        let point = evaluate_config(&ctx, &MinimizationConfig::baseline(), 0).unwrap();
        // The baseline configuration reproduces the baseline circuit exactly.
        assert!(
            (point.normalized_area - 1.0).abs() < 1e-9,
            "area {}",
            point.normalized_area
        );
        assert!((point.area_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_reduces_area() {
        let baseline = baseline();
        let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(3);
        let q3 =
            evaluate_config(&ctx, &MinimizationConfig::default().with_weight_bits(3), 0).unwrap();
        assert!(
            q3.normalized_area < 0.8,
            "3-bit area ratio {}",
            q3.normalized_area
        );
        assert!(q3.area_gain() > 1.25);
    }

    #[test]
    fn pruning_reduces_area_proportionally() {
        let baseline = baseline();
        let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(3);
        let p =
            evaluate_config(&ctx, &MinimizationConfig::default().with_sparsity(0.6), 0).unwrap();
        assert!(p.sparsity >= 0.55);
        assert!(
            p.normalized_area < 0.85,
            "pruned area ratio {}",
            p.normalized_area
        );
    }

    #[test]
    fn fast_path_and_full_synthesis_tiers_agree_exactly() {
        let baseline = baseline();
        let fast_ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(2);
        let full_ctx = EvaluationContext::new(&baseline)
            .with_fine_tune_epochs(2)
            .with_tier(SynthesisTier::FullSynthesis);
        assert_eq!(fast_ctx.tier, SynthesisTier::FastPath);
        for config in [
            MinimizationConfig::baseline(),
            MinimizationConfig::default().with_weight_bits(3),
            MinimizationConfig::default().with_sparsity(0.5),
            MinimizationConfig::default().with_clusters(3),
        ] {
            let fast = evaluate_config(&fast_ctx, &config, 1).unwrap();
            let full = evaluate_config(&full_ctx, &config, 1).unwrap();
            assert_eq!(fast, full, "tier mismatch for {config:?}");
        }
    }

    #[test]
    fn evaluation_is_deterministic_per_salt() {
        let baseline = baseline();
        let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(2);
        let cfg = MinimizationConfig::default().with_weight_bits(4);
        let a = evaluate_config(&ctx, &cfg, 9).unwrap();
        let b = evaluate_config(&ctx, &cfg, 9).unwrap();
        assert_eq!(a, b);
    }

    fn sample_point(accuracy: f64, area: f64) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default().with_weight_bits(4),
            accuracy,
            area_mm2: area,
            power_uw: area * 10.0,
            delay_us: 2.5,
            normalized_accuracy: accuracy / 0.9,
            normalized_area: area / 100.0,
            sparsity: 0.0,
            gate_count: 123,
        }
    }

    #[test]
    fn design_point_serde_round_trips_and_tolerates_legacy_records() {
        let point = sample_point(0.85, 42.0);
        let json = point.serialize_value().render_compact();
        assert!(json.contains("\"delay_us\":2.5"));
        let back = DesignPoint::deserialize_value(&serde::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, point);

        // Records written before delay persistence lack the field: they must
        // keep parsing, with an unknown (NaN) delay ...
        let legacy = json.replace("\"delay_us\":2.5,", "");
        assert!(!legacy.contains("delay_us"));
        let old = DesignPoint::deserialize_value(&serde::json::parse(&legacy).unwrap()).unwrap();
        assert!(old.delay_us.is_nan());
        assert!(old.energy_pj().is_nan());
        assert_eq!(old.accuracy, point.accuracy);

        // ... and re-serializing such a point must omit the field again
        // (non-finite numbers would render as `null` and fail to re-parse).
        let rewritten = old.serialize_value().render_compact();
        assert!(!rewritten.contains("delay_us"));
        let again =
            DesignPoint::deserialize_value(&serde::json::parse(&rewritten).unwrap()).unwrap();
        assert!(again.delay_us.is_nan());
    }

    #[test]
    fn accuracy_loss_is_baseline_minus_candidate() {
        let mut point = sample_point(0.85, 42.0);
        point.normalized_accuracy = 0.85 / 0.9;
        assert!((point.baseline_accuracy() - 0.9).abs() < 1e-12);
        assert!((point.accuracy_loss() - (0.9 - 0.85)).abs() < 1e-12);
        // A candidate above baseline has negative loss.
        point.accuracy = 0.95;
        point.normalized_accuracy = 0.95 / 0.9;
        assert!(point.accuracy_loss() < 0.0);
    }

    #[test]
    fn energy_is_power_times_delay() {
        let point = sample_point(0.85, 42.0);
        assert!((point.energy_pj() - 420.0 * 2.5).abs() < 1e-9);
        let metrics = point.metrics();
        assert_eq!(metrics.energy_pj, point.energy_pj());
        assert_eq!(metrics.delay_us, point.delay_us);
    }

    #[test]
    fn objective_space_parses_and_validates_cli_lists() {
        let classic = ObjectiveSpace::parse("accuracy,area").unwrap();
        assert!(classic.is_classic());
        assert_eq!(classic, ObjectiveSpace::default());
        assert_eq!(classic.to_string(), "accuracy,area");

        let three = ObjectiveSpace::parse("accuracy,area,energy").unwrap();
        assert_eq!(three.dim(), 3);
        assert_eq!(
            three.objectives[2],
            ObjectiveKind::EnergyPerInference,
            "energy maps to energy-per-inference"
        );
        assert!(!three.is_classic());

        assert!(ObjectiveSpace::parse("").is_err());
        assert!(ObjectiveSpace::parse("accuracy,area,area").is_err());
        assert!(ObjectiveSpace::parse("accuracy,frobnitz").is_err());
        ObjectiveSpace::parse("loss,power,delay")
            .unwrap()
            .validate()
            .unwrap();
    }

    #[test]
    fn objective_space_serde_round_trips() {
        let space = ObjectiveSpace::parse("accuracy,area,energy").unwrap();
        let json = space.serialize_value().render_compact();
        let back = ObjectiveSpace::deserialize_value(&serde::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, space);
    }

    #[test]
    fn dominance_in_three_dimensions_considers_every_axis() {
        let space = ObjectiveSpace::parse("accuracy,area,energy").unwrap();
        let a = sample_point(0.9, 40.0);
        let mut b = sample_point(0.9, 50.0);
        assert!(space.dominates(&a, &b), "smaller area and energy dominate");
        assert!(!space.dominates(&b, &a));
        // Same accuracy/area, but b is faster: neither dominates in 3-D even
        // though a dominates in the classic space.
        b.area_mm2 = 40.0;
        b.power_uw = 400.0;
        b.delay_us = 1.0;
        assert!(!space.dominates(&a, &b), "b is strictly faster");
        assert!(
            space.dominates(&b, &a),
            "b ties accuracy/area and wins energy"
        );

        // NaN delay: dominated by every clean point under an energy space.
        let mut nan = sample_point(0.99, 1.0);
        nan.delay_us = f64::NAN;
        assert!(space.has_nan(&nan));
        assert!(space.dominates(&a, &nan));
        assert!(!space.dominates(&nan, &a));
        // ... but perfectly healthy in the classic space.
        assert!(!ObjectiveSpace::classic().has_nan(&nan));
        assert!(ObjectiveSpace::classic().dominates(&nan, &a));
    }

    #[test]
    fn config_hash_distinguishes_configs() {
        let a = config_hash(&MinimizationConfig::default().with_weight_bits(3));
        let b = config_hash(&MinimizationConfig::default().with_weight_bits(4));
        let c = config_hash(&MinimizationConfig::default().with_sparsity(0.3));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
