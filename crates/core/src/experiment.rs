//! Experiment drivers that regenerate every figure and table of the paper.
//!
//! * [`Figure1Experiment`] — one subplot of Fig. 1: the three standalone
//!   technique Pareto fronts for one dataset, normalized to its bespoke
//!   baseline.
//! * [`Figure2Experiment`] — Fig. 2: the combined hardware-aware GA front for
//!   WhiteWine compared against the standalone fronts.
//! * [`headline_summary`] — the Section III text claims (area gain at ≤5 %
//!   accuracy loss per technique).

use crate::baseline::BaselineConfig;
use crate::engine::EvalEngine;
use crate::error::CoreError;
use crate::nsga2::{IslandOptions, Nsga2, Nsga2Config, SearchResult};
use crate::objective::{DesignPoint, ObjectiveSpace};
use crate::pareto::{area_gain_at_accuracy_loss, pareto_front_in};
use crate::report::{FigureSeries, HeadlineRow};
use crate::store::StoreBackend;
use crate::sweep::{sweep_all, SweepRanges, Technique};
use pmlp_data::UciDataset;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Effort level of an experiment run: `Full` reproduces the paper's ranges,
/// `Quick` shrinks everything for smoke tests and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Effort {
    /// Paper-scale parameter ranges and training budgets.
    #[default]
    Full,
    /// Reduced ranges/budgets for fast runs.
    Quick,
}

impl Effort {
    /// Baseline training budget for this effort level. `Quick` also swaps the
    /// baseline's hardware characterization to the bit-identical analytic
    /// fast path (full synthesis of the reference circuit is the single most
    /// expensive hardware step of a smoke run; the equivalence suite pins the
    /// two tiers to each other).
    ///
    /// Both efforts keep the default
    /// [accuracy tier](crate::objective::AccuracyTier): baseline and candidate
    /// accuracies are measured by pure-integer inference — the exact
    /// arithmetic of the printed circuit — not by the fake-quantized float
    /// model.
    pub fn baseline_config(self) -> BaselineConfig {
        match self {
            Effort::Full => BaselineConfig::default(),
            Effort::Quick => BaselineConfig {
                epochs: 12,
                synthesis_tier: crate::objective::SynthesisTier::FastPath,
                ..BaselineConfig::default()
            },
        }
    }

    /// Sweep ranges for this effort level.
    pub fn sweep_ranges(self) -> SweepRanges {
        match self {
            Effort::Full => SweepRanges::default(),
            Effort::Quick => SweepRanges::quick(),
        }
    }

    /// Fine-tuning epochs per candidate for this effort level.
    pub fn fine_tune_epochs(self) -> usize {
        match self {
            Effort::Full => 10,
            Effort::Quick => 2,
        }
    }

    /// GA configuration for this effort level.
    pub fn nsga2_config(self) -> Nsga2Config {
        match self {
            Effort::Full => Nsga2Config::default(),
            Effort::Quick => Nsga2Config {
                population: 6,
                generations: 2,
                ..Nsga2Config::default()
            },
        }
    }

    /// Whether Pareto-front finalists are re-verified through full gate-level
    /// synthesis after the fast-path search.
    ///
    /// `Full` runs verify every finalist (the second tier of the two-tier
    /// evaluation scheme); `Quick` runs skip it — CI smoke tests rely on the
    /// fast-path/full-synthesis equivalence test suite instead, keeping the
    /// smoke budget proportional to the analytic cost model.
    pub fn verify_finalists(self) -> bool {
        match self {
            Effort::Full => true,
            Effort::Quick => false,
        }
    }
}

/// Re-runs every Pareto-front finalist through full gate-level synthesis via
/// [`EvalEngine::finalize`] and fails loudly if any fast-path number is not
/// reproduced exactly.
fn verify_front(
    engine: &EvalEngine,
    front: &[crate::objective::DesignPoint],
) -> Result<(), CoreError> {
    for point in front {
        let finalized = engine.finalize(&point.config)?;
        if !finalized.matches_fast_path {
            return Err(CoreError::Hw {
                context: format!(
                    "fast-path cost model diverged from full synthesis for {:?}: \
                     fast ({:.6} mm2, {:.6} uW, {} gates) vs full ({:.6} mm2, {:.6} uW, {} gates)",
                    point.config.describe(),
                    finalized.point.area_mm2,
                    finalized.point.power_uw,
                    finalized.point.gate_count,
                    finalized.full.area_mm2,
                    finalized.full.power_uw,
                    finalized.full.gate_count,
                ),
            });
        }
    }
    Ok(())
}

/// The data behind one subplot of Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1Result {
    /// Dataset of this subplot.
    pub dataset: String,
    /// Baseline absolute accuracy.
    pub baseline_accuracy: f64,
    /// Baseline circuit area in mm².
    pub baseline_area_mm2: f64,
    /// One Pareto-filtered series per technique.
    pub series: Vec<FigureSeries>,
    /// Every evaluated point per technique (not Pareto filtered), for
    /// completeness of the record.
    pub raw_points: Vec<(Technique, Vec<DesignPoint>)>,
}

/// Driver for one Fig. 1 subplot.
#[derive(Debug, Clone)]
pub struct Figure1Experiment {
    /// Dataset to evaluate.
    pub dataset: UciDataset,
    /// Effort level.
    pub effort: Effort,
    /// RNG seed (data generation + training).
    pub seed: u64,
    /// Objective space the Pareto fronts are computed in. Defaults to the
    /// classic `(accuracy, area)` space, reproducing the paper's figures
    /// byte for byte; evaluation itself (and hence the store/cache) is
    /// objective-agnostic.
    pub objectives: ObjectiveSpace,
}

impl Figure1Experiment {
    /// Creates the experiment for `dataset` at the given effort, over the
    /// classic `(accuracy, area)` objective space.
    pub fn new(dataset: UciDataset, effort: Effort, seed: u64) -> Self {
        Figure1Experiment {
            dataset,
            effort,
            seed,
            objectives: ObjectiveSpace::classic(),
        }
    }

    /// Overrides the objective space the fronts are computed in.
    #[must_use]
    pub fn with_objectives(mut self, objectives: ObjectiveSpace) -> Self {
        self.objectives = objectives;
        self
    }

    /// Builds the evaluation engine this experiment would use: baseline
    /// trained at this effort's budget, fine-tuning budget set accordingly.
    ///
    /// # Errors
    ///
    /// Propagates baseline training and synthesis errors.
    pub fn build_engine(&self) -> Result<EvalEngine, CoreError> {
        Ok(
            EvalEngine::train_with(self.dataset, self.seed, &self.effort.baseline_config())?
                .with_fine_tune_epochs(self.effort.fine_tune_epochs()),
        )
    }

    /// Like [`Figure1Experiment::build_engine`], but consults (and publishes
    /// to) the baseline characterization cache in `backend` — see
    /// [`BaselineDesign::train_cached`](crate::baseline::BaselineDesign::train_cached).
    /// A warm cache turns the most expensive part of figure regeneration and
    /// of stealing a campaign dataset into a single document read.
    ///
    /// # Errors
    ///
    /// Propagates baseline training, synthesis and cache-write errors.
    pub fn build_engine_cached(
        &self,
        backend: Option<&dyn StoreBackend>,
    ) -> Result<EvalEngine, CoreError> {
        Ok(EvalEngine::train_cached(
            self.dataset,
            self.seed,
            &self.effort.baseline_config(),
            backend,
        )?
        .with_fine_tune_epochs(self.effort.fine_tune_epochs()))
    }

    /// Runs the experiment: trains the baseline, runs the three standalone
    /// sweeps and packages the normalized Pareto fronts.
    ///
    /// # Errors
    ///
    /// Propagates baseline, evaluation and synthesis errors.
    pub fn run(&self) -> Result<Figure1Result, CoreError> {
        self.run_with(&self.build_engine()?)
    }

    /// Same as [`Figure1Experiment::run`] against a caller-provided engine,
    /// so several experiments can share one warm evaluation cache.
    ///
    /// # Errors
    ///
    /// Propagates evaluation and synthesis errors.
    pub fn run_with(&self, engine: &EvalEngine) -> Result<Figure1Result, CoreError> {
        let sweeps = sweep_all(engine, &self.effort.sweep_ranges())?;

        let mut series = Vec::with_capacity(sweeps.len());
        let mut raw_points = Vec::with_capacity(sweeps.len());
        for sweep in sweeps {
            let front = pareto_front_in(&self.objectives, &sweep.points);
            if self.effort.verify_finalists() {
                verify_front(engine, &front)?;
            }
            series.push(FigureSeries::from_points(sweep.technique, &front));
            raw_points.push((sweep.technique, sweep.points));
        }
        Ok(Figure1Result {
            dataset: self.dataset.to_string(),
            baseline_accuracy: engine.baseline().accuracy(),
            baseline_area_mm2: engine.baseline().area_mm2(),
            series,
            raw_points,
        })
    }
}

/// The data behind Fig. 2: the combined GA front plus the standalone fronts
/// for the same dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2Result {
    /// Dataset (the paper uses WhiteWine).
    pub dataset: String,
    /// Baseline absolute accuracy.
    pub baseline_accuracy: f64,
    /// Baseline circuit area in mm².
    pub baseline_area_mm2: f64,
    /// Standalone series (quantization, pruning, clustering).
    pub standalone: Vec<FigureSeries>,
    /// The combined hardware-aware GA series.
    pub combined: FigureSeries,
    /// Full GA search result (front, all points, history).
    pub search: SearchResult,
}

/// Where a Fig. 2 GA checkpoint lives: a file path, a store document, or a
/// store document plus island-model migration through the same store.
enum CheckpointSpec<'a> {
    File(&'a Path),
    Doc(&'a str),
    Island {
        doc: &'a str,
        worker_id: &'a str,
        migration_interval: usize,
    },
}

/// Driver for Fig. 2.
#[derive(Debug, Clone)]
pub struct Figure2Experiment {
    /// Dataset to evaluate (the paper uses WhiteWine).
    pub dataset: UciDataset,
    /// Effort level.
    pub effort: Effort,
    /// RNG seed.
    pub seed: u64,
    /// Objective space the GA selects in and the fronts are computed in.
    /// Defaults to the classic `(accuracy, area)` space (bit-identical to the
    /// fixed two-objective pipeline, GA checkpoints included).
    pub objectives: ObjectiveSpace,
}

impl Figure2Experiment {
    /// Creates the Fig. 2 experiment (defaults to WhiteWine in the binaries)
    /// over the classic `(accuracy, area)` objective space.
    pub fn new(dataset: UciDataset, effort: Effort, seed: u64) -> Self {
        Figure2Experiment {
            dataset,
            effort,
            seed,
            objectives: ObjectiveSpace::classic(),
        }
    }

    /// Overrides the objective space of the search and its fronts.
    #[must_use]
    pub fn with_objectives(mut self, objectives: ObjectiveSpace) -> Self {
        self.objectives = objectives;
        self
    }

    /// Builds the evaluation engine this experiment would use.
    ///
    /// # Errors
    ///
    /// Propagates baseline training and synthesis errors.
    pub fn build_engine(&self) -> Result<EvalEngine, CoreError> {
        Ok(
            EvalEngine::train_with(self.dataset, self.seed, &self.effort.baseline_config())?
                .with_fine_tune_epochs(self.effort.fine_tune_epochs()),
        )
    }

    /// Like [`Figure2Experiment::build_engine`], but consults (and publishes
    /// to) the baseline characterization cache in `backend` — see
    /// [`BaselineDesign::train_cached`](crate::baseline::BaselineDesign::train_cached).
    ///
    /// # Errors
    ///
    /// Propagates baseline training, synthesis and cache-write errors.
    pub fn build_engine_cached(
        &self,
        backend: Option<&dyn StoreBackend>,
    ) -> Result<EvalEngine, CoreError> {
        Ok(EvalEngine::train_cached(
            self.dataset,
            self.seed,
            &self.effort.baseline_config(),
            backend,
        )?
        .with_fine_tune_epochs(self.effort.fine_tune_epochs()))
    }

    /// Runs the standalone sweeps and the combined GA and packages the
    /// normalized fronts.
    ///
    /// # Errors
    ///
    /// Propagates baseline, evaluation, synthesis and search errors.
    pub fn run(&self) -> Result<Figure2Result, CoreError> {
        self.run_with(&self.build_engine()?)
    }

    /// Same as [`Figure2Experiment::run`] against a caller-provided engine.
    ///
    /// The sweeps and the GA share the engine's memo cache, so any
    /// configuration the GA re-discovers from the standalone ranges is
    /// answered without retraining.
    ///
    /// # Errors
    ///
    /// Propagates evaluation, synthesis and search errors.
    pub fn run_with(&self, engine: &EvalEngine) -> Result<Figure2Result, CoreError> {
        self.run_impl(engine, None)
    }

    /// Same as [`Figure2Experiment::run_with`], with the GA checkpointed to
    /// `checkpoint` after every generation
    /// ([`Nsga2::run_resumable`](crate::nsga2::Nsga2::run_resumable)): an
    /// interrupted run re-invoked with the same arguments resumes the search
    /// instead of restarting it, and a finished checkpoint replays without
    /// evaluations. Pair with
    /// [`EvalEngine::with_store`](crate::engine::EvalEngine::with_store) so
    /// the standalone sweeps are persistent too.
    ///
    /// # Errors
    ///
    /// Propagates evaluation, synthesis, search and checkpoint-write errors.
    pub fn run_with_checkpoint(
        &self,
        engine: &EvalEngine,
        checkpoint: &Path,
    ) -> Result<Figure2Result, CoreError> {
        self.run_impl(engine, Some(CheckpointSpec::File(checkpoint)))
    }

    /// Same as [`Figure2Experiment::run_with_checkpoint`], but the GA
    /// checkpoint lives as the named document `doc_name` in the engine's
    /// attached store backend (see
    /// [`EvalEngine::with_backend`](crate::engine::EvalEngine::with_backend)) —
    /// against a tiered or remote backend the checkpoint replicates to the
    /// `pmlp-serve` server, so another worker can resume the search.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the engine has no store
    /// attached; otherwise see [`Figure2Experiment::run_with_checkpoint`].
    pub fn run_with_checkpoint_doc(
        &self,
        engine: &EvalEngine,
        doc_name: &str,
    ) -> Result<Figure2Result, CoreError> {
        if engine.store().is_none() {
            return Err(CoreError::InvalidConfig {
                context: "run_with_checkpoint_doc needs an engine with an attached store".into(),
            });
        }
        self.run_impl(engine, Some(CheckpointSpec::Doc(doc_name)))
    }

    /// Runs the GA as one **island** of a distributed fleet: the search
    /// checkpoints to the store document `checkpoint_doc` exactly like
    /// [`Figure2Experiment::run_with_checkpoint_doc`], and additionally
    /// publishes its elite front / imports foreign elites through the same
    /// store every `migration_interval` generations
    /// ([`Nsga2::run_island`](crate::nsga2::Nsga2::run_island)).
    ///
    /// Each worker of a fleet needs a unique `worker_id` **and its own
    /// checkpoint document** (islands evolve distinct populations); share the
    /// store backend between them so migrants flow. A single worker run with
    /// no foreign islands in the store is bit-identical to
    /// [`Figure2Experiment::run_with_checkpoint_doc`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the engine has no store
    /// attached, the worker id is not a safe document-name component, or
    /// `migration_interval` is zero; otherwise see
    /// [`Figure2Experiment::run_with_checkpoint`].
    pub fn run_distributed(
        &self,
        engine: &EvalEngine,
        checkpoint_doc: &str,
        worker_id: &str,
        migration_interval: usize,
    ) -> Result<Figure2Result, CoreError> {
        if engine.store().is_none() {
            return Err(CoreError::InvalidConfig {
                context: "run_distributed needs an engine with an attached store".into(),
            });
        }
        self.run_impl(
            engine,
            Some(CheckpointSpec::Island {
                doc: checkpoint_doc,
                worker_id,
                migration_interval,
            }),
        )
    }

    fn run_impl(
        &self,
        engine: &EvalEngine,
        checkpoint: Option<CheckpointSpec<'_>>,
    ) -> Result<Figure2Result, CoreError> {
        let sweeps = sweep_all(engine, &self.effort.sweep_ranges())?;
        let standalone: Vec<FigureSeries> = sweeps
            .iter()
            .map(|s| {
                FigureSeries::from_points(
                    s.technique,
                    &pareto_front_in(&self.objectives, &s.points),
                )
            })
            .collect();

        let mut ga_config = self.effort.nsga2_config();
        ga_config.seed ^= self.seed;
        ga_config.objectives = self.objectives.clone();
        let searcher = Nsga2::new(ga_config);
        let search = match checkpoint {
            // The checkpoint identity is tagged with the baseline fingerprint
            // so a checkpoint written against one baseline (or cost model) is
            // never replayed against a retrained/changed one.
            Some(CheckpointSpec::File(path)) => {
                searcher.run_resumable_tagged(engine, path, engine.fingerprint())?
            }
            Some(CheckpointSpec::Doc(name)) => {
                let store = engine.store().expect("checked by run_with_checkpoint_doc");
                searcher.run_resumable_store(engine, store, name, engine.fingerprint())?
            }
            Some(CheckpointSpec::Island {
                doc,
                worker_id,
                migration_interval,
            }) => {
                let store = engine.store().expect("checked by run_distributed");
                let island = IslandOptions {
                    store,
                    worker_id,
                    migration_interval,
                    fingerprint: engine.fingerprint(),
                };
                searcher.run_island(engine, &island, doc, engine.fingerprint())?
            }
            None => searcher.run(engine)?,
        };
        if self.effort.verify_finalists() {
            verify_front(engine, &search.pareto_front)?;
        }
        let combined = FigureSeries::from_points(Technique::Combined, &search.pareto_front);

        Ok(Figure2Result {
            dataset: self.dataset.to_string(),
            baseline_accuracy: engine.baseline().accuracy(),
            baseline_area_mm2: engine.baseline().area_mm2(),
            standalone,
            combined,
            search,
        })
    }
}

/// Computes the headline rows (area gain at `max_accuracy_loss`) for one
/// Fig. 1 result.
///
/// The baseline reference point that leads every sweep series is excluded
/// here: a headline row reports what the *technique* buys, so a technique
/// that never meets the threshold must stay `None` ("n/a") rather than
/// borrow the baseline's trivial 1.0x gain.
pub fn headline_summary(result: &Figure1Result, max_accuracy_loss: f64) -> Vec<HeadlineRow> {
    result
        .raw_points
        .iter()
        .map(|(technique, points)| {
            let technique_points: Vec<DesignPoint> = points
                .iter()
                .filter(|p| !p.config.is_baseline())
                .cloned()
                .collect();
            HeadlineRow {
                dataset: result.dataset.clone(),
                technique: technique.name().to_string(),
                baseline_accuracy: result.baseline_accuracy,
                area_gain: area_gain_at_accuracy_loss(
                    &technique_points,
                    result.baseline_accuracy,
                    max_accuracy_loss,
                ),
                max_accuracy_loss,
            }
        })
        .collect()
}

/// Computes the headline row of a Fig. 2 (combined GA) result.
pub fn headline_combined(result: &Figure2Result, max_accuracy_loss: f64) -> HeadlineRow {
    HeadlineRow {
        dataset: result.dataset.clone(),
        technique: Technique::Combined.name().to_string(),
        baseline_accuracy: result.baseline_accuracy,
        area_gain: area_gain_at_accuracy_loss(
            &result.search.all_points,
            result.baseline_accuracy,
            max_accuracy_loss,
        ),
        max_accuracy_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_levels_scale_budgets() {
        assert!(Effort::Quick.baseline_config().epochs < Effort::Full.baseline_config().epochs);
        assert!(Effort::Quick.fine_tune_epochs() < Effort::Full.fine_tune_epochs());
        assert!(Effort::Quick.nsga2_config().population < Effort::Full.nsga2_config().population);
        assert!(
            Effort::Quick.sweep_ranges().weight_bits.len()
                < Effort::Full.sweep_ranges().weight_bits.len()
        );
    }

    #[test]
    fn quick_figure1_on_seeds_produces_three_series() {
        let result = Figure1Experiment::new(UciDataset::Seeds, Effort::Quick, 3)
            .run()
            .unwrap();
        assert_eq!(result.series.len(), 3);
        assert!(result.baseline_area_mm2 > 0.0);
        assert!(result.baseline_accuracy > 0.5);
        // Every series has at least one point and all normalized areas are
        // positive.
        for series in &result.series {
            assert!(!series.points.is_empty());
            assert!(series.points.iter().all(|&(_, area, _)| area > 0.0));
        }
        // Quantization and pruning produce designs smaller than the baseline.
        let min_area = |t: Technique| {
            result
                .raw_points
                .iter()
                .find(|(tech, _)| *tech == t)
                .map(|(_, pts)| {
                    pts.iter()
                        .map(|p| p.normalized_area)
                        .fold(f64::INFINITY, f64::min)
                })
                .unwrap()
        };
        assert!(min_area(Technique::Quantization) < 1.0);
        assert!(min_area(Technique::Pruning) < 1.0);
    }

    #[test]
    fn headline_summary_ignores_the_baseline_reference_point() {
        use pmlp_minimize::MinimizationConfig;
        let point = |config: MinimizationConfig, accuracy: f64, norm_area: f64| DesignPoint {
            config,
            accuracy,
            area_mm2: norm_area * 100.0,
            power_uw: 1.0,
            delay_us: 1.0,
            normalized_accuracy: accuracy / 0.9,
            normalized_area: norm_area,
            sparsity: 0.0,
            gate_count: 10,
        };
        let result = Figure1Result {
            dataset: "Synthetic".into(),
            baseline_accuracy: 0.9,
            baseline_area_mm2: 100.0,
            series: Vec::new(),
            raw_points: vec![
                (
                    crate::sweep::Technique::Quantization,
                    vec![
                        point(MinimizationConfig::baseline(), 0.9, 1.0),
                        point(
                            MinimizationConfig::default().with_weight_bits(4),
                            0.88,
                            0.25,
                        ),
                    ],
                ),
                (
                    crate::sweep::Technique::Pruning,
                    // Only the baseline reference meets the 5% threshold: the
                    // technique itself never does, so the row must be `None`
                    // ("n/a"), not a borrowed 1.0x.
                    vec![
                        point(MinimizationConfig::baseline(), 0.9, 1.0),
                        point(MinimizationConfig::default().with_sparsity(0.6), 0.7, 0.5),
                    ],
                ),
            ],
        };
        let rows = headline_summary(&result, 0.05);
        assert!((rows[0].area_gain.unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(
            rows[1].area_gain, None,
            "baseline must not count for pruning"
        );
    }

    #[test]
    fn headline_summary_has_one_row_per_technique() {
        let result = Figure1Experiment::new(UciDataset::Seeds, Effort::Quick, 5)
            .run()
            .unwrap();
        let rows = headline_summary(&result, 0.05);
        assert_eq!(rows.len(), 3);
        assert!(rows
            .iter()
            .all(|r| (r.baseline_accuracy - result.baseline_accuracy).abs() < 1e-12));
    }
}
