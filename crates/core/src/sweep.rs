//! Standalone technique sweeps — the experiments behind Fig. 1 of the paper.
//!
//! Each sweep evaluates one minimization technique in isolation over the same
//! parameter ranges the paper reports: quantization at 2–7 bits, unstructured
//! pruning at 20–60 % sparsity, and weight clustering over a range of cluster
//! counts.
//!
//! Accuracy numbers come from whatever [`Evaluator`] backs the sweep; through
//! the production [`EvalEngine`](crate::engine::EvalEngine) that means the
//! engine's [accuracy tier](crate::objective::AccuracyTier) — by default the
//! pure-integer arithmetic of the bespoke circuit itself.

use crate::engine::Evaluator;
use crate::error::CoreError;
use crate::objective::DesignPoint;
use pmlp_minimize::MinimizationConfig;
use serde::{Deserialize, Serialize};

/// The three standalone techniques of Fig. 1 (plus the combined GA of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// Weight quantization with QAT.
    Quantization,
    /// Unstructured magnitude pruning with fine-tuning.
    Pruning,
    /// Per-input weight clustering with multiplier sharing.
    Clustering,
    /// All three combined under the hardware-aware GA.
    Combined,
}

impl Technique {
    /// Display name used in figures and tables.
    pub fn name(self) -> &'static str {
        match self {
            Technique::Quantization => "quantization",
            Technique::Pruning => "pruning",
            Technique::Clustering => "weight clustering",
            Technique::Combined => "combined (GA)",
        }
    }
}

/// Parameter ranges of the standalone sweeps, defaulting to the paper's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRanges {
    /// Quantization bit-widths (paper: 2–7).
    pub weight_bits: Vec<u8>,
    /// Pruning sparsity levels (paper: 0.2–0.6).
    pub sparsities: Vec<f64>,
    /// Clusters-per-input counts for weight clustering.
    pub cluster_counts: Vec<usize>,
}

impl Default for SweepRanges {
    fn default() -> Self {
        SweepRanges {
            weight_bits: (2..=7).collect(),
            sparsities: vec![0.2, 0.3, 0.4, 0.5, 0.6],
            cluster_counts: vec![2, 3, 4, 6, 8],
        }
    }
}

impl SweepRanges {
    /// A reduced range used by fast tests and smoke benches.
    pub fn quick() -> Self {
        SweepRanges {
            weight_bits: vec![3, 5],
            sparsities: vec![0.3, 0.6],
            cluster_counts: vec![3],
        }
    }
}

/// Result of one standalone sweep: the technique and its evaluated points
/// (including the baseline point for reference).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Which technique was swept.
    pub technique: Technique,
    /// All evaluated points, in sweep order. The first point is always the
    /// un-minimized baseline configuration — the reference every Fig. 1
    /// series is read against — followed by the technique's range.
    pub points: Vec<DesignPoint>,
}

/// Runs the standalone sweep of `technique` over `ranges`.
///
/// The baseline configuration is evaluated first (memoized, so the three
/// sweeps of one engine share a single baseline evaluation) and leads the
/// result's points, so every series carries its reference point. The
/// technique's candidates follow, evaluated as one batch through `evaluator`
/// — in parallel and memoized when the evaluator is an
/// [`EvalEngine`](crate::engine::EvalEngine).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn sweep_technique<E: Evaluator + ?Sized>(
    evaluator: &E,
    technique: Technique,
    ranges: &SweepRanges,
) -> Result<SweepResult, CoreError> {
    let mut configs: Vec<MinimizationConfig> = vec![MinimizationConfig::baseline()];
    match technique {
        Technique::Quantization => configs.extend(
            ranges
                .weight_bits
                .iter()
                .map(|&b| MinimizationConfig::default().with_weight_bits(b)),
        ),
        Technique::Pruning => configs.extend(
            ranges
                .sparsities
                .iter()
                .map(|&s| MinimizationConfig::default().with_sparsity(s)),
        ),
        Technique::Clustering => configs.extend(
            ranges
                .cluster_counts
                .iter()
                .map(|&k| MinimizationConfig::default().with_clusters(k)),
        ),
        Technique::Combined => {
            return Err(CoreError::InvalidConfig {
                context: "the combined technique is explored with Nsga2, not a sweep".into(),
            })
        }
    };
    let points = evaluator.evaluate_batch(&configs)?;
    Ok(SweepResult { technique, points })
}

/// Runs all three standalone sweeps (the content of one Fig. 1 subplot).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn sweep_all<E: Evaluator + ?Sized>(
    evaluator: &E,
    ranges: &SweepRanges,
) -> Result<Vec<SweepResult>, CoreError> {
    [
        Technique::Quantization,
        Technique::Pruning,
        Technique::Clustering,
    ]
    .into_iter()
    .map(|t| sweep_technique(evaluator, t, ranges))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineConfig;
    use crate::engine::EvalEngine;
    use pmlp_data::UciDataset;

    fn quick_engine(seed: u64, epochs: usize) -> EvalEngine {
        EvalEngine::train_with(
            UciDataset::Seeds,
            seed,
            &BaselineConfig {
                epochs,
                ..BaselineConfig::default()
            },
        )
        .unwrap()
        .with_fine_tune_epochs(2)
    }

    #[test]
    fn technique_names_are_stable() {
        assert_eq!(Technique::Quantization.name(), "quantization");
        assert_eq!(Technique::Combined.name(), "combined (GA)");
    }

    #[test]
    fn combined_technique_cannot_be_swept() {
        let engine = quick_engine(2, 8);
        assert!(sweep_technique(&engine, Technique::Combined, &SweepRanges::quick()).is_err());
    }

    #[test]
    fn quantization_sweep_produces_monotone_area_trend() {
        let engine = quick_engine(3, 10);
        let ranges = SweepRanges {
            weight_bits: vec![2, 4, 7],
            sparsities: vec![],
            cluster_counts: vec![],
        };
        let result = sweep_technique(&engine, Technique::Quantization, &ranges).unwrap();
        // The baseline reference point leads, then one point per bit-width.
        assert_eq!(result.points.len(), 4);
        assert!(result.points[0].config.is_baseline());
        assert!((result.points[0].normalized_area - 1.0).abs() < 1e-9);
        // Fewer bits -> smaller circuits.
        assert!(result.points[1].area_mm2 < result.points[2].area_mm2);
        assert!(result.points[2].area_mm2 < result.points[3].area_mm2);
        // Every quantized design is smaller than the baseline.
        assert!(result.points[1..].iter().all(|p| p.normalized_area < 1.0));
    }

    #[test]
    fn pruning_sweep_area_decreases_with_sparsity() {
        let engine = quick_engine(4, 10);
        let ranges = SweepRanges {
            weight_bits: vec![],
            sparsities: vec![0.2, 0.6],
            cluster_counts: vec![],
        };
        let result = sweep_technique(&engine, Technique::Pruning, &ranges).unwrap();
        assert_eq!(result.points.len(), 3);
        assert!(result.points[0].config.is_baseline());
        assert!(result.points[2].area_mm2 < result.points[1].area_mm2);
    }

    #[test]
    fn every_sweep_leads_with_the_baseline_reference_point() {
        let engine = quick_engine(6, 8);
        for result in sweep_all(&engine, &SweepRanges::quick()).unwrap() {
            assert!(
                result.points[0].config.is_baseline(),
                "{:?} series must carry the baseline reference",
                result.technique
            );
            assert!((result.points[0].normalized_area - 1.0).abs() < 1e-9);
            assert_eq!(
                result.points[1..]
                    .iter()
                    .filter(|p| p.config.is_baseline())
                    .count(),
                0,
                "the baseline appears exactly once"
            );
        }
        // The three sweeps share one memoized baseline evaluation.
        let ranges = SweepRanges::quick();
        let expected =
            1 + ranges.weight_bits.len() + ranges.sparsities.len() + ranges.cluster_counts.len();
        assert_eq!(engine.stats().entries, expected);
    }

    #[test]
    fn sweep_all_covers_three_techniques_and_fills_the_cache() {
        let engine = quick_engine(5, 8);
        let results = sweep_all(&engine, &SweepRanges::quick()).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].technique, Technique::Quantization);
        assert_eq!(results[1].technique, Technique::Pruning);
        assert_eq!(results[2].technique, Technique::Clustering);
        assert!(results.iter().all(|r| !r.points.is_empty()));
        // A repeated sweep is answered entirely from the engine's cache.
        let misses = engine.stats().misses;
        let again = sweep_all(&engine, &SweepRanges::quick()).unwrap();
        assert_eq!(again, results);
        assert_eq!(engine.stats().misses, misses);
        assert!(engine.stats().hits > 0);
    }
}
