//! Persistent, crash-safe evaluation store: survives process death so that
//! campaigns, CI runs and figure regenerations never pay for the same
//! candidate evaluation twice.
//!
//! Every candidate evaluation in this workspace is deterministic and keyed by
//! a canonical [`EvalKey`] (quantization bits, sparsity grid cell, cluster
//! count, input precision, fine-tuning budget, RNG salt). The
//! [`EvalEngine`](crate::engine::EvalEngine) memoizes those evaluations in
//! memory; an [`EvalStore`] extends that memo across processes:
//!
//! * **append-only JSONL log** — one header line binding the file to a
//!   [`BaselineDesign::fingerprint`](crate::baseline::BaselineDesign::fingerprint),
//!   then one record per evaluated design point. Appends are single
//!   `write` + `flush` calls of whole lines, so a crash can only ever
//!   truncate the final record;
//! * **corruption-tolerant replay** — [`EvalStore::open`] skips a truncated
//!   or garbled tail record (and any mid-file garbage) instead of failing,
//!   then **compacts** the salvaged records back to disk with an atomic
//!   tmp+rename commit so the file is clean again;
//! * **fingerprint invalidation** — the store directory holds one file per
//!   `(dataset, baseline fingerprint)` pair; retraining the baseline under a
//!   different budget produces a different fingerprint and therefore a fresh
//!   file, so stale results can never leak into a new campaign;
//! * **versioning** — a [`STORE_VERSION`] bump makes old files unreadable by
//!   design: they are ignored and rewritten rather than misparsed.
//!
//! The same atomic-commit primitive ([`write_atomic`]) backs the NSGA-II
//! per-generation checkpoints ([`crate::nsga2::Nsga2::run_resumable`]) and
//! the campaign's per-dataset completion markers
//! ([`crate::campaign::CampaignConfig::store_dir`]).
//!
//! # Example
//!
//! ```no_run
//! use pmlp_core::engine::{EvalEngine, Evaluator};
//! use pmlp_data::UciDataset;
//! use pmlp_minimize::MinimizationConfig;
//! use std::path::Path;
//!
//! # fn main() -> Result<(), pmlp_core::CoreError> {
//! // First run: misses are computed and appended to the store.
//! let engine = EvalEngine::train(UciDataset::Seeds, 42)?
//!     .with_store(Path::new("target/eval-store"))?;
//! engine.evaluate(&MinimizationConfig::default().with_weight_bits(4))?;
//!
//! // A later process warm-starts from disk: the same request is a hit.
//! let engine = EvalEngine::train(UciDataset::Seeds, 42)?
//!     .with_store(Path::new("target/eval-store"))?;
//! engine.evaluate(&MinimizationConfig::default().with_weight_bits(4))?;
//! assert_eq!(engine.stats().misses, 0);
//! # Ok(())
//! # }
//! ```

use crate::engine::EvalKey;
use crate::error::CoreError;
use crate::objective::{DesignPoint, SynthesisTier};
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Format version of the store's JSONL record log. Files written under a
/// different version are ignored (and rewritten) on open, never misparsed.
pub const STORE_VERSION: u32 = 1;

/// Magic string of the store header line.
const STORE_MAGIC: &str = "pmlp-eval-store";

/// One persisted evaluation: the canonical cache key, the hardware-model tier
/// that produced it (the two tiers are bit-for-bit identical, recorded for
/// the audit trail) and the scored design point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Canonical identity of the evaluated configuration under its engine.
    pub key: EvalKey,
    /// Which hardware model scored the point.
    pub tier: SynthesisTier,
    /// The scored design point.
    pub point: DesignPoint,
}

/// Incremental FNV-1a hasher behind baseline fingerprints and checkpoint
/// config identities.
pub(crate) struct FingerprintHasher(u64);

impl FingerprintHasher {
    /// Starts a fresh FNV-1a state.
    pub fn new() -> Self {
        FingerprintHasher(0xcbf29ce484222325)
    }

    /// Mixes one 64-bit word.
    pub fn mix_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    /// Mixes a byte string.
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix_u64(u64::from(b));
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// `*.tmp` file first and are renamed over the target, so readers (and
/// crash-interrupted writers) only ever observe the old or the new complete
/// file, never a torn one.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// Renders a `u64` as the fixed-width hex string used in store headers and
/// record salts (JSON numbers are `f64` in this workspace's serializer, which
/// cannot represent every `u64` exactly).
fn hex(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses a [`hex`]-formatted field.
fn parse_hex(value: &Value) -> Result<u64, json::Error> {
    let text = value
        .as_str()
        .ok_or_else(|| json::Error::custom("expected hex string"))?;
    u64::from_str_radix(text, 16).map_err(|_| json::Error::custom(format!("bad hex `{text}`")))
}

/// Wraps a payload in the standard persistence envelope shared by store
/// headers, NSGA-II checkpoints and campaign markers: a magic string, a
/// format version and a hex identity fingerprint ahead of the payload fields.
pub(crate) fn seal_envelope(
    magic: &str,
    version: u32,
    fingerprint: u64,
    fields: Vec<(String, Value)>,
) -> Value {
    let mut entries = vec![
        ("magic".to_string(), Value::String(magic.into())),
        ("version".to_string(), Value::Number(f64::from(version))),
        ("fingerprint".to_string(), Value::String(hex(fingerprint))),
    ];
    entries.extend(fields);
    Value::Object(entries)
}

/// Validates an envelope written by [`seal_envelope`]: returns the value for
/// payload access only when magic, version and fingerprint all match, so
/// foreign, stale or incompatible files are ignored instead of misread.
pub(crate) fn check_envelope<'v>(
    value: &'v Value,
    magic: &str,
    version: u32,
    fingerprint: u64,
) -> Option<&'v Value> {
    (value.get("magic")?.as_str()? == magic).then_some(())?;
    (u32::deserialize_value(value.get("version")?).ok()? == version).then_some(())?;
    (parse_hex(value.get("fingerprint")?).ok()? == fingerprint).then_some(())?;
    Some(value)
}

fn header_line(fingerprint: u64) -> String {
    seal_envelope(STORE_MAGIC, STORE_VERSION, fingerprint, Vec::new()).render_compact()
}

/// `true` when `line` is a valid header for `fingerprint` at the current
/// store version.
fn header_matches(line: &str, fingerprint: u64) -> bool {
    json::parse(line)
        .ok()
        .and_then(|value| {
            check_envelope(&value, STORE_MAGIC, STORE_VERSION, fingerprint).map(|_| ())
        })
        .is_some()
}

fn record_to_line(record: &EvalRecord) -> String {
    let key = Value::Object(vec![
        (
            "weight_bits".into(),
            Value::Number(f64::from(record.key.weight_bits)),
        ),
        (
            "sparsity_millis".into(),
            Value::Number(f64::from(record.key.sparsity_millis)),
        ),
        ("clusters".into(), Value::Number(record.key.clusters as f64)),
        (
            "input_bits".into(),
            Value::Number(f64::from(record.key.input_bits)),
        ),
        (
            "fine_tune_epochs".into(),
            Value::Number(record.key.fine_tune_epochs as f64),
        ),
        ("salt".into(), Value::String(hex(record.key.salt))),
    ]);
    Value::Object(vec![
        ("key".into(), key),
        ("tier".into(), record.tier.serialize_value()),
        ("point".into(), record.point.serialize_value()),
    ])
    .render_compact()
}

fn record_from_line(line: &str) -> Result<EvalRecord, json::Error> {
    let value = json::parse(line)?;
    let key_value = value.field("key")?;
    let key = EvalKey {
        weight_bits: u8::deserialize_value(key_value.field("weight_bits")?)?,
        sparsity_millis: u32::deserialize_value(key_value.field("sparsity_millis")?)?,
        clusters: usize::deserialize_value(key_value.field("clusters")?)?,
        input_bits: u8::deserialize_value(key_value.field("input_bits")?)?,
        fine_tune_epochs: usize::deserialize_value(key_value.field("fine_tune_epochs")?)?,
        salt: parse_hex(key_value.field("salt")?)?,
    };
    Ok(EvalRecord {
        key,
        tier: SynthesisTier::deserialize_value(value.field("tier")?)?,
        point: DesignPoint::deserialize_value(value.field("point")?)?,
    })
}

/// The on-disk half of the evaluation cache: an append-only JSONL record log
/// bound to one baseline fingerprint.
///
/// See the [module documentation](self) for the format and crash-safety
/// guarantees. Appends are internally synchronized; one store is shared by
/// all worker threads of its engine.
pub struct EvalStore {
    path: PathBuf,
    fingerprint: u64,
    writer: Mutex<fs::File>,
    loaded: Vec<EvalRecord>,
    dropped: usize,
}

impl std::fmt::Debug for EvalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalStore")
            .field("path", &self.path)
            .field("fingerprint", &hex(self.fingerprint))
            .field("loaded", &self.loaded.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl EvalStore {
    /// Opens (or creates) the record log for `(name, fingerprint)` inside
    /// `dir` and replays its surviving records.
    ///
    /// Replay is corruption-tolerant: a truncated final record — the only
    /// damage a crashed append can cause — is skipped, as is any garbled
    /// line; whenever anything had to be skipped (or the header belongs to a
    /// different version), the salvaged records are committed back via an
    /// atomic tmp+rename rewrite so the next open sees a clean file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the directory or file cannot be
    /// created, read or rewritten.
    pub fn open(dir: &Path, name: &str, fingerprint: u64) -> Result<Self, CoreError> {
        let to_store_err = |context: String| CoreError::Store { context };
        fs::create_dir_all(dir)
            .map_err(|e| to_store_err(format!("create {}: {e}", dir.display())))?;
        let file_name = format!(
            "{}_{}.jsonl",
            name.to_lowercase().replace([' ', '/'], "-"),
            hex(fingerprint)
        );
        let path = dir.join(file_name);

        let mut loaded: Vec<EvalRecord> = Vec::new();
        let mut dropped = 0usize;
        let mut needs_rewrite = true;
        if path.exists() {
            let text = fs::read_to_string(&path)
                .map_err(|e| to_store_err(format!("read {}: {e}", path.display())))?;
            let mut lines = text.lines();
            match lines.next() {
                Some(header) if header_matches(header, fingerprint) => {
                    needs_rewrite = false;
                    for line in lines {
                        if line.trim().is_empty() {
                            continue;
                        }
                        match record_from_line(line) {
                            Ok(record) => loaded.push(record),
                            Err(_) => {
                                // Truncated tail (crash mid-append) or garbled
                                // line: skip it and schedule a compaction.
                                dropped += 1;
                                needs_rewrite = true;
                            }
                        }
                    }
                }
                // Missing, foreign or incompatible-version header: the file
                // is unusable as-is; start fresh (atomically) below.
                _ => dropped += text.lines().count(),
            }
        }

        if needs_rewrite {
            let mut contents = header_line(fingerprint);
            contents.push('\n');
            for record in &loaded {
                contents.push_str(&record_to_line(record));
                contents.push('\n');
            }
            write_atomic(&path, &contents)
                .map_err(|e| to_store_err(format!("rewrite {}: {e}", path.display())))?;
        }

        let writer = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| to_store_err(format!("open {} for append: {e}", path.display())))?;
        Ok(EvalStore {
            path,
            fingerprint,
            writer: Mutex::new(writer),
            loaded,
            dropped,
        })
    }

    /// Takes the records replayed by [`EvalStore::open`], leaving the store
    /// ready for appends. The engine feeds these into its in-memory cache.
    pub fn warm_start(&mut self) -> Vec<EvalRecord> {
        std::mem::take(&mut self.loaded)
    }

    /// Appends one record to the log as a single flushed line, so a crash
    /// can lose at most this record (and only by truncation, which the next
    /// [`EvalStore::open`] tolerates).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the write fails.
    pub fn append(&self, record: &EvalRecord) -> Result<(), CoreError> {
        let mut line = record_to_line(record);
        line.push('\n');
        let mut writer = self.writer.lock().expect("store writer lock");
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| CoreError::Store {
                context: format!("append to {}: {e}", self.path.display()),
            })
    }

    /// Path of the record log on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The baseline fingerprint this store is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of corrupt records skipped during the last
    /// [`EvalStore::open`] replay.
    pub fn dropped_records(&self) -> usize {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;

    fn record(bits: u8, accuracy: f64, area: f64) -> EvalRecord {
        let config = MinimizationConfig::default().with_weight_bits(bits);
        EvalRecord {
            key: EvalKey {
                weight_bits: bits,
                sparsity_millis: u32::MAX,
                clusters: 0,
                input_bits: 4,
                fine_tune_epochs: 2,
                salt: 0xDEAD_BEEF_DEAD_BEEF,
            },
            tier: SynthesisTier::FastPath,
            point: DesignPoint {
                config,
                accuracy,
                area_mm2: area,
                power_uw: area * 10.0,
                normalized_accuracy: accuracy / 0.9,
                normalized_area: area / 100.0,
                sparsity: 0.0,
                gate_count: (area * 7.0) as usize,
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pmlp-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn records_round_trip_through_open_append_warm_start() {
        let dir = temp_dir("roundtrip");
        let records = vec![
            record(3, 0.8, 40.0),
            record(4, 0.85, 55.5),
            record(5, 0.9, 72.25),
        ];
        {
            let store = EvalStore::open(&dir, "Seeds", 0xABCD).unwrap();
            for r in &records {
                store.append(r).unwrap();
            }
        }
        let mut store = EvalStore::open(&dir, "Seeds", 0xABCD).unwrap();
        assert_eq!(store.dropped_records(), 0);
        assert_eq!(store.warm_start(), records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salts_and_fingerprints_survive_as_full_u64s() {
        // u64 values above 2^53 cannot live in a JSON f64; the hex encoding
        // must carry them losslessly.
        let dir = temp_dir("hex");
        let fingerprint = u64::MAX - 12345;
        {
            let store = EvalStore::open(&dir, "Seeds", fingerprint).unwrap();
            store.append(&record(4, 0.8, 40.0)).unwrap();
        }
        let mut store = EvalStore::open(&dir, "Seeds", fingerprint).unwrap();
        let replayed = store.warm_start();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.salt, 0xDEAD_BEEF_DEAD_BEEF);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tail_record_is_skipped_and_compacted_away() {
        let dir = temp_dir("truncated");
        {
            let store = EvalStore::open(&dir, "Seeds", 7).unwrap();
            store.append(&record(3, 0.8, 40.0)).unwrap();
            store.append(&record(4, 0.85, 55.0)).unwrap();
        }
        // Simulate a crash mid-append: chop the last record in half.
        let path = {
            let store = EvalStore::open(&dir, "Seeds", 7).unwrap();
            store.path().to_path_buf()
        };
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();

        let mut store = EvalStore::open(&dir, "Seeds", 7).unwrap();
        assert_eq!(store.dropped_records(), 1);
        let survivors = store.warm_start();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0], record(3, 0.8, 40.0));
        // The store stays usable after recovery ...
        store.append(&record(5, 0.9, 70.0)).unwrap();
        drop(store);
        // ... and the compaction removed the corrupt bytes for good.
        let mut reopened = EvalStore::open(&dir, "Seeds", 7).unwrap();
        assert_eq!(reopened.dropped_records(), 0);
        assert_eq!(reopened.warm_start().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incompatible_header_discards_the_file_instead_of_misparsing_it() {
        let dir = temp_dir("header");
        std::fs::create_dir_all(&dir).unwrap();
        let store = EvalStore::open(&dir, "Seeds", 9).unwrap();
        let path = store.path().to_path_buf();
        drop(store);
        std::fs::write(&path, "{\"magic\":\"something-else\"}\ngarbage\n").unwrap();
        let mut reopened = EvalStore::open(&dir, "Seeds", 9).unwrap();
        assert_eq!(reopened.warm_start(), Vec::new());
        assert_eq!(reopened.dropped_records(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn different_fingerprints_use_disjoint_files() {
        let dir = temp_dir("fingerprints");
        {
            let store = EvalStore::open(&dir, "Seeds", 1).unwrap();
            store.append(&record(3, 0.8, 40.0)).unwrap();
        }
        let mut other = EvalStore::open(&dir, "Seeds", 2).unwrap();
        assert!(other.warm_start().is_empty(), "fingerprints must isolate");
        let mut original = EvalStore::open(&dir, "Seeds", 1).unwrap();
        assert_eq!(original.warm_start().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_the_target_in_one_step() {
        let dir = temp_dir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("marker.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;
    use proptest::prelude::*;

    /// Strategy-built records spanning the whole configuration space,
    /// including disabled techniques and extreme float values.
    fn build_record(
        bits: u8,
        sparsity: f64,
        clusters: usize,
        accuracy: f64,
        area: f64,
        salt: u64,
    ) -> EvalRecord {
        let mut config = MinimizationConfig::default();
        let sparsity_millis = if sparsity < 0.05 {
            u32::MAX
        } else {
            config = config.with_sparsity(sparsity);
            crate::genome::sparsity_millis(sparsity)
        };
        let weight_bits = if bits >= 2 {
            config = config.with_weight_bits(bits);
            bits
        } else {
            0
        };
        let cluster_key = if clusters >= 2 {
            config = config.with_clusters(clusters);
            clusters
        } else {
            0
        };
        EvalRecord {
            key: EvalKey {
                weight_bits,
                sparsity_millis,
                clusters: cluster_key,
                input_bits: 4,
                fine_tune_epochs: 2,
                salt,
            },
            tier: SynthesisTier::FastPath,
            point: DesignPoint {
                config,
                accuracy,
                area_mm2: area,
                power_uw: area * 9.5,
                normalized_accuracy: accuracy,
                normalized_area: area / 128.0,
                sparsity: if sparsity < 0.05 { 0.0 } else { sparsity },
                gate_count: (area * 3.0) as usize,
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn replay_round_trips_arbitrary_points_even_with_a_truncated_tail(
            raw in proptest::collection::vec(
                (0u8..9, 0.0f64..0.9, 0usize..9, 0.0f64..1.0, 0.001f64..500.0, 0u64..=u64::MAX),
                1..12,
            ),
            chop in 1usize..40,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "pmlp-store-proptest-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let records: Vec<EvalRecord> = raw
                .iter()
                .map(|&(b, s, c, acc, area, salt)| build_record(b, s, c, acc, area, salt))
                .collect();
            let path = {
                let store = EvalStore::open(&dir, "proptest", 0x5EED).unwrap();
                for r in &records {
                    store.append(r).unwrap();
                }
                store.path().to_path_buf()
            };

            // Full replay reproduces every record bit-for-bit.
            let mut store = EvalStore::open(&dir, "proptest", 0x5EED).unwrap();
            prop_assert_eq!(store.warm_start(), records.clone());

            // Truncating the final record (by up to `chop` bytes — always
            // fewer than one whole record line) loses exactly that record.
            let text = std::fs::read_to_string(&path).unwrap();
            let cut = text.trim_end().len() - chop;
            std::fs::write(&path, &text[..cut]).unwrap();
            let mut store = EvalStore::open(&dir, "proptest", 0x5EED).unwrap();
            let survivors = store.warm_start();
            prop_assert_eq!(&records[..records.len() - 1], &survivors[..]);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
