//! Glue between the software model (`pmlp-minimize` integer layers) and the
//! bespoke hardware model (`pmlp-hw` circuit specs).

use crate::error::CoreError;
use pmlp_hw::{
    BespokeMlpCircuit, CellLibrary, CircuitSpec, HwActivation, LayerSpec, SharingStrategy,
};
use pmlp_minimize::IntegerLayer;
use serde::{Deserialize, Serialize};

/// Builds a [`CircuitSpec`] from the integer layers produced by the
/// minimization pipeline.
///
/// Hidden layers map to ReLU hardware activations and the output layer to an
/// argmax comparator tree, mirroring the bespoke classifier architecture of
/// Mubarik et al.
///
/// # Errors
///
/// Returns [`CoreError::Hw`] when the integer layers are structurally
/// inconsistent (e.g. empty).
pub fn circuit_spec_from_layers(
    layers: &[IntegerLayer],
    input_bits: u8,
) -> Result<CircuitSpec, CoreError> {
    if layers.is_empty() {
        return Err(CoreError::InvalidConfig {
            context: "no layers to synthesize".into(),
        });
    }
    let last = layers.len() - 1;
    let mut hw_layers = Vec::with_capacity(layers.len());
    for (i, layer) in layers.iter().enumerate() {
        let activation = if i == last {
            HwActivation::Argmax
        } else {
            HwActivation::ReLU
        };
        // The codes may exceed the nominal bit-width after clustering snaps
        // values between grid points; derive the width from the actual codes.
        let max_code = layer
            .codes
            .iter()
            .flatten()
            .map(|c| c.abs())
            .max()
            .unwrap_or(0);
        let needed_bits = (64 - max_code.leading_zeros() as u8 + 1)
            .max(layer.weight_bits)
            .min(24);
        let spec = LayerSpec::with_biases(
            layer.codes.clone(),
            layer.bias_codes.clone(),
            needed_bits,
            activation,
        )
        .map_err(CoreError::from)?;
        hw_layers.push(spec);
    }
    CircuitSpec::new(input_bits, hw_layers).map_err(CoreError::from)
}

/// Synthesizes the bespoke circuit for a set of integer layers and returns its
/// total cell area in mm².
///
/// `sharing` should be [`SharingStrategy::SharedPerInput`] when the model was
/// weight-clustered (the paper's multiplier-sharing architecture) and
/// [`SharingStrategy::None`] otherwise.
///
/// # Errors
///
/// Propagates [`CoreError::Hw`] from synthesis.
pub fn synthesize_area(
    layers: &[IntegerLayer],
    input_bits: u8,
    library: &CellLibrary,
    sharing: SharingStrategy,
) -> Result<SynthesisSummary, CoreError> {
    let spec = circuit_spec_from_layers(layers, input_bits)?;
    let circuit = BespokeMlpCircuit::synthesize_with(
        &spec,
        library,
        sharing,
        pmlp_hw::constmul::RecodingStrategy::Csd,
    )
    .map_err(CoreError::from)?;
    let area = circuit.area();
    let power = circuit.power();
    let timing = circuit.timing();
    Ok(SynthesisSummary {
        area_mm2: area.total_mm2,
        power_uw: power.total_uw,
        critical_path_us: timing.critical_path_us,
        gate_count: area.gate_count,
    })
}

/// Fast-path counterpart of [`synthesize_area`]: the same
/// [`SynthesisSummary`] numbers computed through the analytic cost model
/// ([`pmlp_hw::cost::estimate_circuit`]) without materializing a netlist.
///
/// The cost model mirrors synthesis gate for gate, so the summary is
/// bit-for-bit identical to the full path — the equivalence suite asserts
/// exact equality — at a small fraction of the cost. Search loops evaluate
/// through this; Pareto-front finalists and the baseline run
/// [`synthesize_area`] for a verifiable netlist.
///
/// # Errors
///
/// Propagates [`CoreError::Hw`] from spec validation.
pub fn estimate_area(
    layers: &[IntegerLayer],
    input_bits: u8,
    library: &CellLibrary,
    sharing: SharingStrategy,
) -> Result<SynthesisSummary, CoreError> {
    let spec = circuit_spec_from_layers(layers, input_bits)?;
    let report = pmlp_hw::cost::estimate_circuit(
        &spec,
        library,
        sharing,
        pmlp_hw::constmul::RecodingStrategy::Csd,
    )
    .map_err(CoreError::from)?;
    Ok(SynthesisSummary {
        area_mm2: report.area.total_mm2,
        power_uw: report.power.total_uw,
        critical_path_us: report.timing.critical_path_us,
        gate_count: report.area.gate_count,
    })
}

/// Compact synthesis result used by the search objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisSummary {
    /// Total cell area in mm².
    pub area_mm2: f64,
    /// Total static power in µW.
    pub power_uw: f64,
    /// Critical path in µs.
    pub critical_path_us: f64,
    /// Total gate count.
    pub gate_count: usize,
}

impl SynthesisSummary {
    /// Energy per inference in pJ: static power (µW) × critical path (µs).
    /// Like every other field, bit-identical between the fast path and full
    /// synthesis (both factors are).
    pub fn energy_pj(&self) -> f64 {
        self.power_uw * self.critical_path_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layers() -> Vec<IntegerLayer> {
        vec![
            IntegerLayer {
                codes: vec![vec![3, -2, 0], vec![1, 4, -5]],
                bias_codes: vec![0, 2],
                scale: 0.1,
                weight_bits: 4,
            },
            IntegerLayer {
                codes: vec![vec![2, -1], vec![-3, 1]],
                bias_codes: vec![0, 0],
                scale: 0.2,
                weight_bits: 4,
            },
        ]
    }

    #[test]
    fn builds_spec_with_relu_hidden_and_argmax_output() {
        let spec = circuit_spec_from_layers(&layers(), 4).unwrap();
        assert_eq!(spec.layers.len(), 2);
        assert_eq!(spec.layers[0].activation, HwActivation::ReLU);
        assert_eq!(spec.layers[1].activation, HwActivation::Argmax);
        assert_eq!(spec.input_count(), 3);
        assert_eq!(spec.output_count(), 2);
    }

    #[test]
    fn empty_layer_list_is_rejected() {
        assert!(circuit_spec_from_layers(&[], 4).is_err());
    }

    #[test]
    fn synthesize_area_returns_positive_numbers() {
        let summary =
            synthesize_area(&layers(), 4, &CellLibrary::egt(), SharingStrategy::None).unwrap();
        assert!(summary.area_mm2 > 0.0);
        assert!(summary.power_uw > 0.0);
        assert!(summary.critical_path_us > 0.0);
        assert!(summary.gate_count > 0);
    }

    #[test]
    fn codes_wider_than_nominal_bits_are_accepted() {
        // Clustering can move a code slightly outside the nominal grid; the
        // bridge widens the declared bit-width instead of failing.
        let wide = vec![IntegerLayer {
            codes: vec![vec![9, -12]],
            bias_codes: vec![0],
            scale: 0.05,
            weight_bits: 4,
        }];
        let spec = circuit_spec_from_layers(&wide, 4).unwrap();
        assert!(spec.layers[0].weight_bits >= 5);
    }

    #[test]
    fn estimate_area_matches_full_synthesis_exactly() {
        let lib = CellLibrary::egt();
        for sharing in [SharingStrategy::None, SharingStrategy::SharedPerInput] {
            let full = synthesize_area(&layers(), 4, &lib, sharing).unwrap();
            let fast = estimate_area(&layers(), 4, &lib, sharing).unwrap();
            assert_eq!(fast, full, "{sharing:?}");
            // Delay (and hence derived energy) rides on the same guarantee.
            assert_eq!(fast.critical_path_us, full.critical_path_us);
            assert_eq!(fast.energy_pj(), full.energy_pj());
            assert!(fast.energy_pj() > 0.0);
        }
    }

    #[test]
    fn sharing_never_increases_area() {
        // Fully clustered codes: sharing must help (or at worst tie).
        let clustered = vec![IntegerLayer {
            codes: vec![vec![5, -3, 6]; 8],
            bias_codes: vec![0; 8],
            scale: 0.1,
            weight_bits: 4,
        }];
        let lib = CellLibrary::egt();
        let unshared = synthesize_area(&clustered, 4, &lib, SharingStrategy::None).unwrap();
        let shared = synthesize_area(&clustered, 4, &lib, SharingStrategy::SharedPerInput).unwrap();
        assert!(shared.area_mm2 <= unshared.area_mm2);
        assert!(
            shared.area_mm2 < unshared.area_mm2 * 0.8,
            "sharing saved too little"
        );
    }
}
