//! Figure/table data structures and text rendering in the format the paper
//! reports (normalized area vs normalized accuracy).

use crate::objective::DesignPoint;
use crate::sweep::Technique;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One plotted series of a figure: a technique and its (normalized accuracy,
/// normalized area) points, sorted by area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// The technique this series belongs to.
    pub technique: Technique,
    /// Label of the series (e.g. "quantization").
    pub label: String,
    /// `(normalized accuracy, normalized area, config description)` tuples,
    /// sorted by increasing normalized area.
    pub points: Vec<(f64, f64, String)>,
}

impl FigureSeries {
    /// Builds a series from raw design points (Pareto-filtered by the caller
    /// if desired).
    pub fn from_points(technique: Technique, points: &[DesignPoint]) -> Self {
        let mut tuples: Vec<(f64, f64, String)> = points
            .iter()
            .map(|p| {
                (
                    p.normalized_accuracy,
                    p.normalized_area,
                    p.config.describe(),
                )
            })
            .collect();
        tuples.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite areas"));
        FigureSeries {
            technique,
            label: technique.name().to_string(),
            points: tuples,
        }
    }
}

impl fmt::Display for FigureSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# series: {}", self.label)?;
        writeln!(
            f,
            "{:<22} {:>18} {:>14}",
            "config", "norm. accuracy", "norm. area"
        )?;
        for (acc, area, config) in &self.points {
            writeln!(f, "{config:<22} {acc:>18.4} {area:>14.4}")?;
        }
        Ok(())
    }
}

/// One row of the headline table: a dataset/technique pair and its area gain
/// at the 5 % accuracy-loss threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineRow {
    /// Dataset name.
    pub dataset: String,
    /// Technique name.
    pub technique: String,
    /// Baseline accuracy (absolute).
    pub baseline_accuracy: f64,
    /// Best area-reduction factor achievable with at most
    /// `max_accuracy_loss` absolute accuracy loss, `None` when the technique
    /// never meets the threshold (as the paper observes for clustering on
    /// Pendigits/Seeds).
    pub area_gain: Option<f64>,
    /// The accuracy-loss threshold used (the paper uses 0.05).
    pub max_accuracy_loss: f64,
}

impl fmt::Display for HeadlineRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.area_gain {
            Some(gain) => write!(
                f,
                "{:<12} {:<18} baseline {:>6.1}%  area gain {:>5.2}x @ <= {:.0}% loss",
                self.dataset,
                self.technique,
                self.baseline_accuracy * 100.0,
                gain,
                self.max_accuracy_loss * 100.0
            ),
            None => write!(
                f,
                "{:<12} {:<18} baseline {:>6.1}%  no design meets the {:.0}% loss threshold",
                self.dataset,
                self.technique,
                self.baseline_accuracy * 100.0,
                self.max_accuracy_loss * 100.0
            ),
        }
    }
}

/// Renders a whole headline table.
pub fn render_headline_table(rows: &[HeadlineRow]) -> String {
    let mut out = String::new();
    out.push_str("=== area gain at <=5% accuracy loss (normalized to the bespoke baseline) ===\n");
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;

    fn point(acc: f64, area: f64, bits: u8) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default().with_weight_bits(bits),
            accuracy: acc,
            area_mm2: area,
            power_uw: 0.0,
            normalized_accuracy: acc,
            normalized_area: area,
            sparsity: 0.0,
            gate_count: 0,
        }
    }

    #[test]
    fn series_is_sorted_by_area() {
        let series = FigureSeries::from_points(
            Technique::Quantization,
            &[point(0.9, 0.8, 7), point(0.85, 0.3, 3), point(0.88, 0.5, 5)],
        );
        assert_eq!(series.points.len(), 3);
        assert!(series.points.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(series.label, "quantization");
    }

    #[test]
    fn series_display_lists_every_point() {
        let series = FigureSeries::from_points(
            Technique::Pruning,
            &[point(0.9, 0.8, 4), point(0.8, 0.5, 4)],
        );
        let text = series.to_string();
        assert!(text.contains("pruning"));
        assert_eq!(text.lines().count(), 2 + 2);
    }

    #[test]
    fn headline_row_renders_both_cases() {
        let with_gain = HeadlineRow {
            dataset: "WhiteWine".into(),
            technique: "quantization".into(),
            baseline_accuracy: 0.52,
            area_gain: Some(5.2),
            max_accuracy_loss: 0.05,
        };
        assert!(with_gain.to_string().contains("5.20x"));
        let without = HeadlineRow {
            area_gain: None,
            ..with_gain.clone()
        };
        assert!(without.to_string().contains("no design"));
        let table = render_headline_table(&[with_gain, without]);
        assert!(table.lines().count() >= 3);
    }
}
