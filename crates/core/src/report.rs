//! Figure/table data structures and text rendering in the format the paper
//! reports (normalized area vs normalized accuracy), including the
//! cross-dataset campaign table.

use crate::campaign::CampaignResult;
use crate::objective::DesignPoint;
use crate::sweep::Technique;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One plotted series of a figure: a technique and its (normalized accuracy,
/// normalized area) points, sorted by area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// The technique this series belongs to.
    pub technique: Technique,
    /// Label of the series (e.g. "quantization").
    pub label: String,
    /// `(normalized accuracy, normalized area, config description)` tuples,
    /// sorted by increasing normalized area.
    pub points: Vec<(f64, f64, String)>,
}

impl FigureSeries {
    /// Builds a series from raw design points (Pareto-filtered by the caller
    /// if desired).
    pub fn from_points(technique: Technique, points: &[DesignPoint]) -> Self {
        let mut tuples: Vec<(f64, f64, String)> = points
            .iter()
            .map(|p| {
                (
                    p.normalized_accuracy,
                    p.normalized_area,
                    p.config.describe(),
                )
            })
            .collect();
        tuples.sort_by(|a, b| a.1.total_cmp(&b.1));
        FigureSeries {
            technique,
            label: technique.name().to_string(),
            points: tuples,
        }
    }
}

impl fmt::Display for FigureSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# series: {}", self.label)?;
        writeln!(
            f,
            "{:<22} {:>18} {:>14}",
            "config", "norm. accuracy", "norm. area"
        )?;
        for (acc, area, config) in &self.points {
            writeln!(f, "{config:<22} {acc:>18.4} {area:>14.4}")?;
        }
        Ok(())
    }
}

/// One row of the headline table: a dataset/technique pair and its area gain
/// at the 5 % accuracy-loss threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineRow {
    /// Dataset name.
    pub dataset: String,
    /// Technique name.
    pub technique: String,
    /// Baseline accuracy (absolute).
    pub baseline_accuracy: f64,
    /// Best area-reduction factor achievable with at most
    /// `max_accuracy_loss` absolute accuracy loss, `None` when the technique
    /// never meets the threshold (as the paper observes for clustering on
    /// Pendigits/Seeds).
    pub area_gain: Option<f64>,
    /// The accuracy-loss threshold used (the paper uses 0.05).
    pub max_accuracy_loss: f64,
}

impl fmt::Display for HeadlineRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.area_gain {
            Some(gain) => write!(
                f,
                "{:<12} {:<18} baseline {:>6.1}%  area gain {:>5.2}x @ <= {:.0}% loss",
                self.dataset,
                self.technique,
                self.baseline_accuracy * 100.0,
                gain,
                self.max_accuracy_loss * 100.0
            ),
            None => write!(
                f,
                "{:<12} {:<18} baseline {:>6.1}%  no design meets the {:.0}% loss threshold",
                self.dataset,
                self.technique,
                self.baseline_accuracy * 100.0,
                self.max_accuracy_loss * 100.0
            ),
        }
    }
}

/// Renders a whole headline table.
pub fn render_headline_table(rows: &[HeadlineRow]) -> String {
    let mut out = String::new();
    out.push_str("=== area gain at <=5% accuracy loss (normalized to the bespoke baseline) ===\n");
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

/// Cross-dataset aggregate of one technique's headline gains, the way the
/// paper quotes per-technique averages in Section III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechniqueSummary {
    /// Technique name.
    pub technique: String,
    /// Mean area gain over the datasets where the technique met the
    /// accuracy-loss threshold, `None` when it met it nowhere.
    pub mean_gain: Option<f64>,
    /// Best area gain over those datasets.
    pub max_gain: Option<f64>,
    /// Number of datasets where the technique met the threshold.
    pub datasets_met: usize,
    /// Number of datasets in the campaign.
    pub datasets_total: usize,
}

impl fmt::Display for TechniqueSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.mean_gain, self.max_gain) {
            (Some(mean), Some(max)) => write!(
                f,
                "{:<18} avg {:>5.2}x   max {:>5.2}x   ({}/{} datasets)",
                self.technique, mean, max, self.datasets_met, self.datasets_total
            ),
            _ => write!(
                f,
                "{:<18} met the loss threshold on 0/{} datasets",
                self.technique, self.datasets_total
            ),
        }
    }
}

/// Formats an optional area gain for the campaign table (`-` when the
/// technique never met the threshold on that dataset).
fn format_gain(gain: Option<f64>) -> String {
    gain.map_or_else(|| "-".to_string(), |g| format!("{g:.2}x"))
}

/// Renders the aggregate paper-style campaign table: one row per dataset with
/// its topology, baseline accuracy/area and per-technique headline gains,
/// followed by the cross-dataset technique averages.
pub fn render_campaign_table(result: &CampaignResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== cross-dataset campaign ({:?} effort, seed {}, area gain at <={:.0}% accuracy loss) ===\n",
        result.effort,
        result.seed,
        result.max_accuracy_loss * 100.0
    ));
    out.push_str(&format!(
        "{:<14} {:>10} {:>9} {:>10} {:>10} {:>8} {:>11} {:>8}\n",
        "dataset", "topology", "base acc", "area mm2", "power uW", "quant", "prune", "cluster"
    ));
    for report in &result.reports {
        let topology = format!(
            "{}-{}-{}",
            report.feature_count, report.hidden_neurons, report.class_count
        );
        out.push_str(&format!(
            "{:<14} {:>10} {:>8.1}% {:>10.1} {:>10.1} {:>8} {:>11} {:>8}\n",
            report.name,
            topology,
            report.baseline_accuracy * 100.0,
            report.baseline_area_mm2,
            report.baseline_power_uw,
            format_gain(report.gain_for(Technique::Quantization)),
            format_gain(report.gain_for(Technique::Pruning)),
            format_gain(report.gain_for(Technique::Clustering)),
        ));
    }
    out.push_str(&format!(
        "=== evaluation cost and hypervolume (objectives: {}) ===\n",
        result.objectives
    ));
    out.push_str(&format!(
        "{:<14} {:>6} {:>10} {:>10} {:>11} {:>12} {:>10} {:>9}\n",
        "dataset", "evals", "cache hit", "fast-path", "full-synth", "mul-cache", "hypervol", "secs"
    ));
    for report in &result.reports {
        out.push_str(&format!(
            "{:<14} {:>6} {:>9.0}% {:>10} {:>11} {:>11.0}% {:>10.4} {:>9.2}\n",
            report.name,
            report.evaluations,
            report.cache_hit_rate * 100.0,
            report.fast_path_evals,
            report.full_synthesis_evals,
            report.multiplier_cache_hit_rate * 100.0,
            report.hypervolume,
            report.elapsed_secs,
        ));
    }
    out.push_str("=== cross-dataset average area gain per technique ===\n");
    for summary in result.technique_summaries() {
        out.push_str(&summary.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;

    fn point(acc: f64, area: f64, bits: u8) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default().with_weight_bits(bits),
            accuracy: acc,
            area_mm2: area,
            power_uw: 0.0,
            delay_us: 1.0,
            normalized_accuracy: acc,
            normalized_area: area,
            sparsity: 0.0,
            gate_count: 0,
        }
    }

    #[test]
    fn series_is_sorted_by_area() {
        let series = FigureSeries::from_points(
            Technique::Quantization,
            &[point(0.9, 0.8, 7), point(0.85, 0.3, 3), point(0.88, 0.5, 5)],
        );
        assert_eq!(series.points.len(), 3);
        assert!(series.points.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(series.label, "quantization");
    }

    #[test]
    fn series_display_lists_every_point() {
        let series = FigureSeries::from_points(
            Technique::Pruning,
            &[point(0.9, 0.8, 4), point(0.8, 0.5, 4)],
        );
        let text = series.to_string();
        assert!(text.contains("pruning"));
        assert_eq!(text.lines().count(), 2 + 2);
    }

    #[test]
    fn campaign_table_lists_every_dataset_and_every_technique_summary() {
        use crate::campaign::{CampaignResult, DatasetReport};
        use crate::experiment::Effort;
        use pmlp_data::UciDataset;

        let report = DatasetReport {
            dataset: UciDataset::Seeds,
            name: "Seeds".into(),
            feature_count: 7,
            class_count: 3,
            hidden_neurons: 10,
            baseline_accuracy: 0.91,
            baseline_area_mm2: 12.5,
            baseline_power_uw: 80.0,
            series: Vec::new(),
            hypervolume: 0.4375,
            headline: vec![HeadlineRow {
                dataset: "Seeds".into(),
                technique: Technique::Quantization.name().into(),
                baseline_accuracy: 0.91,
                area_gain: Some(4.5),
                max_accuracy_loss: 0.05,
            }],
            evaluations: 5,
            cache_hit_rate: 0.2,
            fast_path_evals: 5,
            full_synthesis_evals: 2,
            multiplier_cache_hit_rate: 0.9,
            elapsed_secs: 1.0,
        };
        let result = CampaignResult {
            effort: Effort::Quick,
            seed: 42,
            max_accuracy_loss: 0.05,
            objectives: "accuracy,area".into(),
            reports: vec![report],
        };
        let table = render_campaign_table(&result);
        assert!(table.contains("Seeds"));
        assert!(table.contains("7-10-3"));
        assert!(table.contains("4.50x"));
        // The evaluation-cost section reports fast-path vs full-synthesis
        // counts and the multiplier-cache hit rate.
        assert!(table.contains("evaluation cost"));
        assert!(table.contains("fast-path"));
        assert!(table.contains("90%"));
        // The per-dataset hypervolume and the objective space are reported.
        assert!(table.contains("objectives: accuracy,area"));
        assert!(table.contains("0.4375"));
        // Pruning/clustering have no headline row -> rendered as "-".
        assert!(table.contains('-'));
        for technique in ["quantization", "pruning", "weight clustering"] {
            assert!(table.contains(technique), "missing {technique}");
        }
    }

    #[test]
    fn technique_summary_renders_both_cases() {
        let met = TechniqueSummary {
            technique: "quantization".into(),
            mean_gain: Some(5.0),
            max_gain: Some(6.25),
            datasets_met: 11,
            datasets_total: 12,
        };
        let text = met.to_string();
        assert!(text.contains("5.00x") && text.contains("6.25x") && text.contains("11/12"));
        let unmet = TechniqueSummary {
            technique: "weight clustering".into(),
            mean_gain: None,
            max_gain: None,
            datasets_met: 0,
            datasets_total: 12,
        };
        assert!(unmet.to_string().contains("0/12"));
    }

    #[test]
    fn headline_row_renders_both_cases() {
        let with_gain = HeadlineRow {
            dataset: "WhiteWine".into(),
            technique: "quantization".into(),
            baseline_accuracy: 0.52,
            area_gain: Some(5.2),
            max_accuracy_loss: 0.05,
        };
        assert!(with_gain.to_string().contains("5.20x"));
        let without = HeadlineRow {
            area_gain: None,
            ..with_gain.clone()
        };
        assert!(without.to_string().contains("no design"));
        let table = render_headline_table(&[with_gain, without]);
        assert!(table.lines().count() >= 3);
    }
}
