//! # pmlp-core — hardware-aware automated neural minimization
//!
//! The paper's contribution: given a trained printed-MLP classifier, search
//! the joint space of quantization bit-width, unstructured sparsity and
//! per-input weight-cluster count for accuracy/area Pareto-optimal bespoke
//! circuits, where the area of every candidate is measured by synthesizing it
//! with the bespoke hardware model of [`pmlp_hw`].
//!
//! Main entry points:
//!
//! * [`engine::EvalEngine`] — the shared, memoizing, parallel evaluation
//!   engine every search, sweep and experiment scores candidates through,
//! * [`baseline::BaselineDesign`] — trains and characterizes the un-minimized
//!   bespoke MLP (Mubarik et al.) every figure is normalized against,
//! * [`objective::evaluate_config`] — the raw (uncached) accuracy + area
//!   measurement of a single
//!   [`MinimizationConfig`](pmlp_minimize::MinimizationConfig),
//! * [`sweep`] — the standalone technique sweeps of Fig. 1,
//! * [`nsga2::Nsga2`] — the hardware-aware genetic algorithm of Fig. 2,
//! * [`experiment`] — drivers that regenerate every figure/table of the paper,
//! * [`campaign::Campaign`] — the cross-dataset reproduction campaign that
//!   fans the whole dataset registry out over the worker pool,
//! * [`store::EvalStore`] — the persistent, crash-safe evaluation store that
//!   carries cached evaluations (and search checkpoints) across processes,
//! * [`pareto`] / [`report`] — Pareto-front utilities and result tables.
//!
//! ## Example
//!
//! ```no_run
//! use pmlp_core::engine::{EvalEngine, Evaluator};
//! use pmlp_data::UciDataset;
//! use pmlp_minimize::MinimizationConfig;
//!
//! # fn main() -> Result<(), pmlp_core::CoreError> {
//! let engine = EvalEngine::train(UciDataset::Seeds, 42)?;
//! let point = engine.evaluate(&MinimizationConfig::default().with_weight_bits(4))?;
//! println!("area gain {:.2}x at {:.1}% accuracy", point.area_gain(), point.accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod bridge;
pub mod campaign;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod genome;
pub mod nsga2;
pub mod objective;
pub mod pareto;
pub mod report;
pub mod store;
pub mod sweep;

pub use baseline::{baseline_doc_name, BaselineConfig, BaselineDesign};
pub use campaign::{
    Campaign, CampaignConfig, CampaignResult, CampaignRunStats, DatasetReport, WorkerOptions,
};
pub use engine::{EngineStats, EvalEngine, EvalKey, EvalProgress, Evaluator, FinalizedDesign};
pub use error::CoreError;
pub use genome::Genome;
pub use nsga2::{island_doc_prefix, IslandOptions, Nsga2, Nsga2Config};
pub use objective::{
    evaluate_config, AccuracyTier, DesignMetrics, DesignPoint, EvaluationContext, ObjectiveKind,
    ObjectiveSpace, SynthesisTier,
};
pub use pareto::{area_gain_at_accuracy_loss, hypervolume, pareto_front, pareto_front_in};
pub use report::{render_campaign_table, FigureSeries, HeadlineRow, TechniqueSummary};
pub use store::{EvalRecord, EvalStore};
