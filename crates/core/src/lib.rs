//! # pmlp-core — hardware-aware automated neural minimization
//!
//! The paper's contribution: given a trained printed-MLP classifier, search
//! the joint space of quantization bit-width, unstructured sparsity and
//! per-input weight-cluster count for accuracy/area Pareto-optimal bespoke
//! circuits, where the area of every candidate is measured by synthesizing it
//! with the bespoke hardware model of [`pmlp_hw`].
//!
//! Main entry points:
//!
//! * [`baseline::BaselineDesign`] — trains and characterizes the un-minimized
//!   bespoke MLP (Mubarik et al.) every figure is normalized against,
//! * [`objective::evaluate_config`] — accuracy + area of a single
//!   [`MinimizationConfig`](pmlp_minimize::MinimizationConfig),
//! * [`sweep`] — the standalone technique sweeps of Fig. 1,
//! * [`nsga2::Nsga2`] — the hardware-aware genetic algorithm of Fig. 2,
//! * [`experiment`] — drivers that regenerate every figure/table of the paper,
//! * [`pareto`] / [`report`] — Pareto-front utilities and result tables.
//!
//! ## Example
//!
//! ```no_run
//! use pmlp_core::baseline::BaselineDesign;
//! use pmlp_core::objective::{evaluate_config, EvaluationContext};
//! use pmlp_data::UciDataset;
//! use pmlp_minimize::MinimizationConfig;
//!
//! # fn main() -> Result<(), pmlp_core::CoreError> {
//! let baseline = BaselineDesign::train(UciDataset::Seeds, 42)?;
//! let ctx = EvaluationContext::new(&baseline);
//! let point = evaluate_config(&ctx, &MinimizationConfig::default().with_weight_bits(4), 0)?;
//! println!("area gain {:.2}x at {:.1}% accuracy", point.area_gain(), point.accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod bridge;
pub mod error;
pub mod experiment;
pub mod genome;
pub mod nsga2;
pub mod objective;
pub mod pareto;
pub mod report;
pub mod sweep;

pub use baseline::BaselineDesign;
pub use error::CoreError;
pub use genome::Genome;
pub use nsga2::{Nsga2, Nsga2Config};
pub use objective::{evaluate_config, DesignPoint, EvaluationContext};
pub use pareto::{area_gain_at_accuracy_loss, pareto_front};
pub use report::{FigureSeries, HeadlineRow};
