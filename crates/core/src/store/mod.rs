//! Layered, crash-safe persistence for candidate evaluations: campaigns, CI
//! runs and figure regenerations never pay for the same evaluation twice —
//! not on this machine, and (with a remote tier) not on any machine.
//!
//! Every candidate evaluation in this workspace is deterministic and keyed by
//! a canonical [`EvalKey`] (quantization bits, sparsity grid cell, cluster
//! count, input precision, fine-tuning budget, RNG salt, accuracy tier) under a
//! [`BaselineDesign::fingerprint`](crate::baseline::BaselineDesign::fingerprint).
//! That `(fingerprint, key)` pair is a **content address**: the persistence
//! subsystem stores scored design points (plus compressed finalization
//! artifacts) under it, behind the [`StoreBackend`] trait:
//!
//! * [`LocalJsonlBackend`] — the historical on-disk format: one append-only
//!   JSONL log per `(dataset, fingerprint)` pair, a sealed-envelope header
//!   line, single flushed whole-line appends (a crash can only truncate the
//!   final record), corruption-tolerant replay that compacts salvaged
//!   records back with an atomic tmp+rename commit;
//! * [`MemoryBackend`] — an in-process map for tests and for the
//!   `pmlp-serve` server's default state;
//! * [`RemoteBackend`] — an HTTP/1.1 client for a `pmlp-serve`
//!   evaluation-cache server, speaking the same sealed-envelope JSONL wire
//!   format;
//! * [`TieredStore`] — local-as-write-through-cache over remote: scans fill
//!   the local cache from the server, appends land locally and replicate to
//!   the server, and a killed server degrades the composition to local-only
//!   instead of failing the run.
//!
//! [`EvalStore`] binds a backend to one `(dataset name, fingerprint)` pair —
//! the view an [`EvalEngine`](crate::engine::EvalEngine) warm-starts from and
//! appends to. Backends also carry named *documents* (NSGA-II checkpoints,
//! campaign completion markers), so resumable searches work identically
//! against every tier. [`EvalStore::gc`] garbage-collects a local store
//! directory: logs of dead baselines are dropped, duplicate keys merged, and
//! oversized logs compacted.
//!
//! Versioning: a [`STORE_VERSION`] bump makes old files unreadable by design —
//! they are ignored and rewritten rather than misparsed. The same atomic
//! commit primitive ([`write_atomic`]) backs NSGA-II checkpoints
//! ([`crate::nsga2::Nsga2::run_resumable`]) and campaign completion markers.
//!
//! # Example
//!
//! ```no_run
//! use pmlp_core::engine::{EvalEngine, Evaluator};
//! use pmlp_data::UciDataset;
//! use pmlp_minimize::MinimizationConfig;
//! use std::path::Path;
//!
//! # fn main() -> Result<(), pmlp_core::CoreError> {
//! // First run: misses are computed and appended to the store.
//! let engine = EvalEngine::train(UciDataset::Seeds, 42)?
//!     .with_store(Path::new("target/eval-store"))?;
//! engine.evaluate(&MinimizationConfig::default().with_weight_bits(4))?;
//!
//! // A later process warm-starts from disk: the same request is a hit.
//! let engine = EvalEngine::train(UciDataset::Seeds, 42)?
//!     .with_store(Path::new("target/eval-store"))?;
//! engine.evaluate(&MinimizationConfig::default().with_weight_bits(4))?;
//! assert_eq!(engine.stats().misses, 0);
//!
//! // Sharing across machines: compose the local cache over a pmlp-serve
//! // instance. Records stream in from the server on warm start and every
//! // local miss replicates back to it.
//! use pmlp_core::store::open_backend;
//! let backend = open_backend(
//!     Some(Path::new("target/eval-store")),
//!     Some("http://127.0.0.1:7878"),
//! )?
//! .expect("a tier was configured");
//! let engine = EvalEngine::train(UciDataset::Seeds, 42)?.with_backend(backend)?;
//! # Ok(())
//! # }
//! ```

mod backend;
mod codec;
mod fault;
mod indexed;
mod jsonl;
mod memory;
mod remote;
mod tiered;

pub use backend::{safe_component, sanitize_name, ResilienceStats, ScanOutcome, StoreBackend};
pub use codec::{decode_artifacts, encode_artifacts};
pub use fault::FaultBackend;
pub use indexed::IndexedBackend;
pub use jsonl::{
    gc_store_dir, list_record_logs, now_epoch_ms, DurabilityPolicy, GcPolicy, GcReport,
    LocalJsonlBackend,
};
pub use memory::MemoryBackend;
pub use remote::{RemoteBackend, RetryPolicy};
pub use tiered::{BreakerConfig, TieredStats, TieredStore};

use crate::engine::EvalKey;
use crate::error::CoreError;
use crate::objective::{AccuracyTier, DesignPoint, SynthesisTier};
use pmlp_hw::SharingStrategy;
use pmlp_minimize::IntegerLayer;
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Format version of the store's JSONL record log. Files written under a
/// different version are ignored (and rewritten) on open, never misparsed.
/// The optional per-record `artifacts` blob is a backward-compatible
/// extension of the version-1 format — blob-less records parse as
/// point-only — so adding it did **not** bump the version: existing stores
/// keep warm-starting.
pub const STORE_VERSION: u32 = 1;

/// Magic string of the store header line.
const STORE_MAGIC: &str = "pmlp-eval-store";

/// The artifacts finalization needs, persisted next to a hot design point so
/// that [`EvalEngine::finalize`](crate::engine::EvalEngine::finalize) of a
/// store-warmed Pareto finalist runs full synthesis directly instead of
/// re-running the whole minimization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalArtifacts {
    /// The minimized integer layers of the candidate.
    pub layers: Vec<IntegerLayer>,
    /// The multiplier-sharing strategy its hardware cost was measured under.
    pub sharing: SharingStrategy,
}

/// One persisted evaluation: the canonical cache key, the hardware-model tier
/// that produced it (the two tiers are bit-for-bit identical, recorded for
/// the audit trail), the scored design point and, when available, the
/// compressed finalization artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Canonical identity of the evaluated configuration under its engine.
    pub key: EvalKey,
    /// Which hardware model scored the point.
    pub tier: SynthesisTier,
    /// The scored design point.
    pub point: DesignPoint,
    /// Minimized layers + sharing strategy (`None` for records written
    /// before artifact persistence, or whose blob failed to decode — the
    /// engine then regenerates them on demand).
    pub artifacts: Option<EvalArtifacts>,
}

/// Incremental FNV-1a hasher behind baseline fingerprints and checkpoint
/// config identities.
pub(crate) struct FingerprintHasher(u64);

impl FingerprintHasher {
    /// Starts a fresh FNV-1a state.
    pub fn new() -> Self {
        FingerprintHasher(0xcbf29ce484222325)
    }

    /// Mixes one 64-bit word.
    pub fn mix_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    /// Mixes a byte string.
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix_u64(u64::from(b));
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// `*.tmp` file first and are renamed over the target, so readers (and
/// crash-interrupted writers) only ever observe the old or the new complete
/// file, never a torn one.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// Renders a `u64` as the fixed-width hex string used in store headers and
/// record salts (JSON numbers are `f64` in this workspace's serializer, which
/// cannot represent every `u64` exactly).
pub(crate) fn hex(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses a [`hex`]-formatted field.
pub(crate) fn parse_hex(value: &Value) -> Result<u64, json::Error> {
    let text = value
        .as_str()
        .ok_or_else(|| json::Error::custom("expected hex string"))?;
    u64::from_str_radix(text, 16).map_err(|_| json::Error::custom(format!("bad hex `{text}`")))
}

/// Wraps a payload in the standard persistence envelope shared by store
/// headers, NSGA-II checkpoints and campaign markers: a magic string, a
/// format version and a hex identity fingerprint ahead of the payload fields.
pub(crate) fn seal_envelope(
    magic: &str,
    version: u32,
    fingerprint: u64,
    fields: Vec<(String, Value)>,
) -> Value {
    let mut entries = vec![
        ("magic".to_string(), Value::String(magic.into())),
        ("version".to_string(), Value::Number(f64::from(version))),
        ("fingerprint".to_string(), Value::String(hex(fingerprint))),
    ];
    entries.extend(fields);
    Value::Object(entries)
}

/// Validates an envelope written by [`seal_envelope`]: returns the value for
/// payload access only when magic, version and fingerprint all match, so
/// foreign, stale or incompatible files are ignored instead of misread.
pub(crate) fn check_envelope<'v>(
    value: &'v Value,
    magic: &str,
    version: u32,
    fingerprint: u64,
) -> Option<&'v Value> {
    (value.get("magic")?.as_str()? == magic).then_some(())?;
    (u32::deserialize_value(value.get("version")?).ok()? == version).then_some(())?;
    (parse_hex(value.get("fingerprint")?).ok()? == fingerprint).then_some(())?;
    Some(value)
}

/// Renders the sealed-envelope header line binding a record log (on disk or
/// on the wire) to `fingerprint` at the current [`STORE_VERSION`].
pub fn header_line(fingerprint: u64) -> String {
    seal_envelope(STORE_MAGIC, STORE_VERSION, fingerprint, Vec::new()).render_compact()
}

/// `true` when `line` is a valid header for `fingerprint` at the current
/// store version.
pub fn header_matches(line: &str, fingerprint: u64) -> bool {
    json::parse(line)
        .ok()
        .and_then(|value| {
            check_envelope(&value, STORE_MAGIC, STORE_VERSION, fingerprint).map(|_| ())
        })
        .is_some()
}

/// Renders one record as its canonical single-line JSON wire form — the
/// format of local record logs and of `pmlp-serve` scan/append bodies alike.
pub fn record_line(record: &EvalRecord) -> String {
    let key = Value::Object(vec![
        (
            "weight_bits".into(),
            Value::Number(f64::from(record.key.weight_bits)),
        ),
        (
            "sparsity_millis".into(),
            Value::Number(f64::from(record.key.sparsity_millis)),
        ),
        ("clusters".into(), Value::Number(record.key.clusters as f64)),
        (
            "input_bits".into(),
            Value::Number(f64::from(record.key.input_bits)),
        ),
        (
            "fine_tune_epochs".into(),
            Value::Number(record.key.fine_tune_epochs as f64),
        ),
        ("salt".into(), Value::String(hex(record.key.salt))),
        (
            "accuracy_tier".into(),
            record.key.accuracy_tier.serialize_value(),
        ),
    ]);
    let mut entries = vec![
        ("key".into(), key),
        ("tier".into(), record.tier.serialize_value()),
        ("point".into(), record.point.serialize_value()),
    ];
    if let Some(artifacts) = &record.artifacts {
        entries.push((
            "artifacts".into(),
            Value::String(encode_artifacts(&artifacts.layers, artifacts.sharing)),
        ));
    }
    Value::Object(entries).render_compact()
}

/// Parses a line written by [`record_line`]. A missing or undecodable
/// `artifacts` blob yields a record without artifacts (the design point is
/// the scientific payload; artifacts are a regenerable optimization), while
/// a damaged key/point is an error the caller counts as a dropped record.
///
/// # Errors
///
/// Returns [`CoreError::Store`] for malformed JSON or a damaged key/point.
pub fn parse_record_line(line: &str) -> Result<EvalRecord, CoreError> {
    record_from_line_inner(line).map_err(|e| CoreError::Store {
        context: format!("bad record line: {e}"),
    })
}

fn record_from_line_inner(line: &str) -> Result<EvalRecord, json::Error> {
    let value = json::parse(line)?;
    let key_value = value.field("key")?;
    let key = EvalKey {
        weight_bits: u8::deserialize_value(key_value.field("weight_bits")?)?,
        sparsity_millis: u32::deserialize_value(key_value.field("sparsity_millis")?)?,
        clusters: usize::deserialize_value(key_value.field("clusters")?)?,
        input_bits: u8::deserialize_value(key_value.field("input_bits")?)?,
        fine_tune_epochs: usize::deserialize_value(key_value.field("fine_tune_epochs")?)?,
        salt: parse_hex(key_value.field("salt")?)?,
        // Records written before the accuracy-tier field existed were all
        // scored on the fake-quantized float model.
        accuracy_tier: match key_value.get("accuracy_tier") {
            Some(v) => AccuracyTier::deserialize_value(v)?,
            None => AccuracyTier::Float,
        },
    };
    let artifacts = value
        .get("artifacts")
        .and_then(Value::as_str)
        .and_then(decode_artifacts)
        .map(|(layers, sharing)| EvalArtifacts { layers, sharing });
    Ok(EvalRecord {
        key,
        tier: SynthesisTier::deserialize_value(value.field("tier")?)?,
        point: DesignPoint::deserialize_value(value.field("point")?)?,
        artifacts,
    })
}

/// Composes a [`StoreBackend`] from the two optional tiers every driver and
/// binary exposes: a local directory (`--store DIR`) and/or a remote
/// `pmlp-serve` URL (`--remote-store URL`).
///
/// | local | remote | result |
/// |-------|--------|--------|
/// | — | — | `None` (in-memory caching only) |
/// | dir | — | [`LocalJsonlBackend`] |
/// | — | url | [`TieredStore`] ([`MemoryBackend`] cache over the server) |
/// | dir | url | [`TieredStore`] (local cache over the server) |
///
/// Remote-only compositions sit behind the same [`TieredStore`] as the
/// dir+url case (with an in-process memory tier as the cache), so the
/// circuit breaker and the replay journal protect every remote
/// configuration uniformly.
///
/// # Errors
///
/// Returns [`CoreError::Store`] when the directory cannot be created or the
/// URL is malformed.
pub fn open_backend(
    local_dir: Option<&Path>,
    remote_url: Option<&str>,
) -> Result<Option<Box<dyn StoreBackend>>, CoreError> {
    open_backend_with(local_dir, remote_url, None)
}

/// [`open_backend`] with an explicit remote timeout (`--remote-timeout-ms`):
/// `None` keeps the [`RemoteBackend`] default. The timeout covers connect,
/// read and write of each remote request — the knob that decides how fast a
/// dead server degrades a tiered composition.
///
/// # Errors
///
/// Returns [`CoreError::Store`] when the directory cannot be created or the
/// URL is malformed.
pub fn open_backend_with(
    local_dir: Option<&Path>,
    remote_url: Option<&str>,
    remote_timeout: Option<std::time::Duration>,
) -> Result<Option<Box<dyn StoreBackend>>, CoreError> {
    open_backend_durable(
        local_dir,
        remote_url,
        remote_timeout,
        DurabilityPolicy::default(),
    )
}

/// [`open_backend_with`] with an explicit [`DurabilityPolicy`]
/// (`--durability`) for the local JSONL tier; remote and in-memory tiers
/// ignore it.
///
/// # Errors
///
/// Returns [`CoreError::Store`] when the directory cannot be created or the
/// URL is malformed.
pub fn open_backend_durable(
    local_dir: Option<&Path>,
    remote_url: Option<&str>,
    remote_timeout: Option<std::time::Duration>,
    durability: DurabilityPolicy,
) -> Result<Option<Box<dyn StoreBackend>>, CoreError> {
    open_backend_opts(
        local_dir,
        remote_url,
        &BackendOptions {
            remote_timeout,
            durability,
            breaker: None,
        },
    )
}

/// Tuning knobs of [`open_backend_opts`] beyond the tier selection itself.
#[derive(Debug, Clone, Default)]
pub struct BackendOptions {
    /// Per-request deadline of the remote tier (`--remote-timeout-ms`);
    /// `None` keeps the client default.
    pub remote_timeout: Option<std::time::Duration>,
    /// Durability policy of the local JSONL tier (`--durability`).
    pub durability: DurabilityPolicy,
    /// Circuit-breaker tuning of a tiered composition; `None` keeps the
    /// [`BreakerConfig`] defaults (trip on the first failure, 1 s cooldown).
    pub breaker: Option<BreakerConfig>,
}

/// The fully-tunable backend composition every other `open_backend*` helper
/// delegates to.
///
/// # Errors
///
/// Returns [`CoreError::Store`] when the directory cannot be created or the
/// URL is malformed.
pub fn open_backend_opts(
    local_dir: Option<&Path>,
    remote_url: Option<&str>,
    options: &BackendOptions,
) -> Result<Option<Box<dyn StoreBackend>>, CoreError> {
    let remote = |url: &str| -> Result<RemoteBackend, CoreError> {
        let client = RemoteBackend::new(url)?;
        Ok(match options.remote_timeout {
            Some(timeout) => client.with_timeout(timeout),
            None => client,
        })
    };
    let tiered = |local: Box<dyn StoreBackend>, url: &str| -> Result<TieredStore, CoreError> {
        let remote = Box::new(remote(url)?);
        Ok(match options.breaker {
            Some(breaker) => TieredStore::with_breaker(local, remote, breaker),
            None => TieredStore::new(local, remote),
        })
    };
    match (local_dir, remote_url) {
        (None, None) => Ok(None),
        (Some(dir), None) => Ok(Some(Box::new(LocalJsonlBackend::open_with(
            dir,
            options.durability,
        )?))),
        (None, Some(url)) => Ok(Some(Box::new(tiered(Box::new(MemoryBackend::new()), url)?))),
        (Some(dir), Some(url)) => Ok(Some(Box::new(tiered(
            Box::new(LocalJsonlBackend::open_with(dir, options.durability)?),
            url,
        )?))),
    }
}

/// A backend bound to one `(dataset name, baseline fingerprint)` pair: the
/// view an engine warm-starts from and appends to, plus the document
/// namespace its searches checkpoint into.
///
/// See the [module documentation](self) for the format and crash-safety
/// guarantees. Appends are internally synchronized; one store is shared by
/// all worker threads of its engine.
pub struct EvalStore {
    name: String,
    fingerprint: u64,
    backend: Box<dyn StoreBackend>,
    loaded: Vec<EvalRecord>,
    dropped: usize,
}

impl std::fmt::Debug for EvalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalStore")
            .field("backend", &self.backend.describe())
            .field("name", &self.name)
            .field("fingerprint", &hex(self.fingerprint))
            .field("loaded", &self.loaded.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl EvalStore {
    /// Opens (or creates) the local record log for `(name, fingerprint)`
    /// inside `dir` and replays its surviving records — the historical
    /// single-machine store.
    ///
    /// Replay is corruption-tolerant: a truncated final record — the only
    /// damage a crashed append can cause — is skipped, as is any garbled
    /// line; whenever anything had to be skipped (or the header belongs to a
    /// different version), the salvaged records are committed back via an
    /// atomic tmp+rename rewrite so the next open sees a clean file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the directory or file cannot be
    /// created, read or rewritten.
    pub fn open(dir: &Path, name: &str, fingerprint: u64) -> Result<Self, CoreError> {
        Self::with_backend(Box::new(LocalJsonlBackend::open(dir)?), name, fingerprint)
    }

    /// Binds any [`StoreBackend`] to `(name, fingerprint)` and replays its
    /// records (for a [`TieredStore`] this is also the moment the local cache
    /// fills from the server).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backend's scan fails.
    pub fn with_backend(
        backend: Box<dyn StoreBackend>,
        name: &str,
        fingerprint: u64,
    ) -> Result<Self, CoreError> {
        let outcome = backend.scan(name, fingerprint)?;
        Ok(EvalStore {
            name: name.to_string(),
            fingerprint,
            backend,
            loaded: outcome.records,
            dropped: outcome.dropped,
        })
    }

    /// Takes the records replayed at construction, leaving the store ready
    /// for appends. The engine feeds these into its in-memory cache.
    pub fn warm_start(&mut self) -> Vec<EvalRecord> {
        std::mem::take(&mut self.loaded)
    }

    /// Appends one record to the log as a single flushed line, so a crash
    /// can lose at most this record (and only by truncation, which the next
    /// replay tolerates).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the write fails.
    pub fn append(&self, record: &EvalRecord) -> Result<(), CoreError> {
        self.backend.append(&self.name, self.fingerprint, record)
    }

    /// Appends many records as one batch — one flushed write locally, one
    /// HTTP `POST` remotely (see [`StoreBackend::append_batch`]). The engine
    /// buffers per-candidate appends across
    /// [`evaluate_batch`](crate::engine::Evaluator::evaluate_batch) and
    /// lands them here at the batch boundary.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the write fails.
    pub fn append_batch(&self, records: &[EvalRecord]) -> Result<(), CoreError> {
        self.backend
            .append_batch(&self.name, self.fingerprint, records)
    }

    /// Path of the record log on disk, for backends that have one (`None`
    /// for memory and remote tiers).
    pub fn path(&self) -> Option<PathBuf> {
        self.backend.record_path(&self.name, self.fingerprint)
    }

    /// The baseline fingerprint this store is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The dataset label this store is bound to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of corrupt records skipped during the construction replay.
    pub fn dropped_records(&self) -> usize {
        self.dropped
    }

    /// The backend this store writes through.
    pub fn backend(&self) -> &dyn StoreBackend {
        self.backend.as_ref()
    }

    /// Reads a named document (checkpoint, completion marker) from the
    /// backend; `None` when it does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backend fails.
    pub fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        self.backend.get_doc(name)
    }

    /// Writes (atomically replacing) a named document through the backend.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backend fails.
    pub fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        self.backend.put_doc(name, contents)
    }

    /// Deletes a named document; a missing document is not an error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backend fails.
    pub fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        self.backend.remove_doc(name)
    }

    /// Lists the names of stored documents starting with `prefix`, sorted —
    /// how islands discover each other's published elite fronts and workers
    /// survey the lease board. An empty prefix lists every document.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backend fails.
    pub fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        self.backend.list_docs(prefix)
    }

    /// Garbage-collects a local store directory: record logs (and completion
    /// markers) bound to a baseline fingerprint not in `live_fingerprints`
    /// are deleted, duplicate keys are merged, and logs at or above the
    /// policy's size threshold are compacted. See [`gc_store_dir`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the directory cannot be read or a
    /// rewrite fails.
    pub fn gc(
        dir: &Path,
        live_fingerprints: &[u64],
        policy: &GcPolicy,
    ) -> Result<GcReport, CoreError> {
        gc_store_dir(dir, live_fingerprints, policy)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;

    /// Shared test fixture: a record with a distinctive key and point.
    pub(crate) fn record(bits: u8, accuracy: f64, area: f64) -> EvalRecord {
        let config = MinimizationConfig::default().with_weight_bits(bits);
        EvalRecord {
            key: EvalKey {
                weight_bits: bits,
                sparsity_millis: u32::MAX,
                clusters: 0,
                input_bits: 4,
                fine_tune_epochs: 2,
                salt: 0xDEAD_BEEF_DEAD_BEEF,
                accuracy_tier: AccuracyTier::Integer,
            },
            tier: SynthesisTier::FastPath,
            point: DesignPoint {
                config,
                accuracy,
                area_mm2: area,
                power_uw: area * 10.0,
                delay_us: 2.0,
                normalized_accuracy: accuracy / 0.9,
                normalized_area: area / 100.0,
                sparsity: 0.0,
                gate_count: (area * 7.0) as usize,
            },
            artifacts: None,
        }
    }

    /// Shared test fixture: a unique temp directory per test.
    pub(crate) fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pmlp-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn record_with_artifacts(bits: u8) -> EvalRecord {
        let mut r = record(bits, 0.85, 50.0);
        r.artifacts = Some(EvalArtifacts {
            layers: vec![IntegerLayer {
                codes: vec![vec![1, -2, 3], vec![0, 0, 4]],
                bias_codes: vec![-1, 2],
                scale: 0.125,
                weight_bits: bits,
            }],
            sharing: SharingStrategy::SharedPerInput,
        });
        r
    }

    #[test]
    fn records_round_trip_through_open_append_warm_start() {
        let dir = temp_dir("roundtrip");
        let records = vec![
            record(3, 0.8, 40.0),
            record(4, 0.85, 55.5),
            record(5, 0.9, 72.25),
        ];
        {
            let store = EvalStore::open(&dir, "Seeds", 0xABCD).unwrap();
            for r in &records {
                store.append(r).unwrap();
            }
        }
        let mut store = EvalStore::open(&dir, "Seeds", 0xABCD).unwrap();
        assert_eq!(store.dropped_records(), 0);
        assert_eq!(store.warm_start(), records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifacts_travel_with_their_records() {
        let dir = temp_dir("artifacts");
        let records = vec![record_with_artifacts(4), record(5, 0.9, 70.0)];
        {
            let store = EvalStore::open(&dir, "Seeds", 0xF00D).unwrap();
            for r in &records {
                store.append(r).unwrap();
            }
        }
        let mut store = EvalStore::open(&dir, "Seeds", 0xF00D).unwrap();
        let replayed = store.warm_start();
        assert_eq!(replayed, records);
        assert!(replayed[0].artifacts.is_some());
        assert!(replayed[1].artifacts.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_corrupt_artifact_blob_degrades_to_a_point_only_record() {
        let with = record_with_artifacts(4);
        let line = record_line(&with).replace("artifacts\":\"", "artifacts\":\"!corrupt!");
        let parsed = parse_record_line(&line).unwrap();
        assert_eq!(parsed.point, with.point);
        assert_eq!(
            parsed.artifacts, None,
            "blob damage must not drop the point"
        );
    }

    #[test]
    fn salts_and_fingerprints_survive_as_full_u64s() {
        // u64 values above 2^53 cannot live in a JSON f64; the hex encoding
        // must carry them losslessly.
        let dir = temp_dir("hex");
        let fingerprint = u64::MAX - 12345;
        {
            let store = EvalStore::open(&dir, "Seeds", fingerprint).unwrap();
            store.append(&record(4, 0.8, 40.0)).unwrap();
        }
        let mut store = EvalStore::open(&dir, "Seeds", fingerprint).unwrap();
        let replayed = store.warm_start();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.salt, 0xDEAD_BEEF_DEAD_BEEF);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tail_record_is_skipped_and_compacted_away() {
        let dir = temp_dir("truncated");
        {
            let store = EvalStore::open(&dir, "Seeds", 7).unwrap();
            store.append(&record(3, 0.8, 40.0)).unwrap();
            store.append(&record(4, 0.85, 55.0)).unwrap();
        }
        // Simulate a crash mid-append: chop the last record in half.
        let path = {
            let store = EvalStore::open(&dir, "Seeds", 7).unwrap();
            store.path().expect("local store has a path")
        };
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();

        let mut store = EvalStore::open(&dir, "Seeds", 7).unwrap();
        assert_eq!(store.dropped_records(), 1);
        let survivors = store.warm_start();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0], record(3, 0.8, 40.0));
        // The store stays usable after recovery ...
        store.append(&record(5, 0.9, 70.0)).unwrap();
        drop(store);
        // ... and the compaction removed the corrupt bytes for good.
        let mut reopened = EvalStore::open(&dir, "Seeds", 7).unwrap();
        assert_eq!(reopened.dropped_records(), 0);
        assert_eq!(reopened.warm_start().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incompatible_header_discards_the_file_instead_of_misparsing_it() {
        let dir = temp_dir("header");
        std::fs::create_dir_all(&dir).unwrap();
        let store = EvalStore::open(&dir, "Seeds", 9).unwrap();
        let path = store.path().expect("local store has a path");
        drop(store);
        std::fs::write(&path, "{\"magic\":\"something-else\"}\ngarbage\n").unwrap();
        let mut reopened = EvalStore::open(&dir, "Seeds", 9).unwrap();
        assert_eq!(reopened.warm_start(), Vec::new());
        assert_eq!(reopened.dropped_records(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn different_fingerprints_use_disjoint_files() {
        let dir = temp_dir("fingerprints");
        {
            let store = EvalStore::open(&dir, "Seeds", 1).unwrap();
            store.append(&record(3, 0.8, 40.0)).unwrap();
        }
        let mut other = EvalStore::open(&dir, "Seeds", 2).unwrap();
        assert!(other.warm_start().is_empty(), "fingerprints must isolate");
        let mut original = EvalStore::open(&dir, "Seeds", 1).unwrap();
        assert_eq!(original.warm_start().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_the_target_in_one_step() {
        let dir = temp_dir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("marker.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_store_works_over_any_backend() {
        let backend = MemoryBackend::new();
        backend.append("Seeds", 5, &record(3, 0.8, 40.0)).unwrap();
        let mut store = EvalStore::with_backend(Box::new(backend), "Seeds", 5).unwrap();
        assert_eq!(store.path(), None, "memory tier has no path");
        assert_eq!(store.warm_start().len(), 1);
        store.append(&record(4, 0.9, 50.0)).unwrap();
        store.put_doc("m.json", "x").unwrap();
        assert_eq!(store.get_doc("m.json").unwrap().as_deref(), Some("x"));
        store.remove_doc("m.json").unwrap();
        assert_eq!(store.get_doc("m.json").unwrap(), None);
    }

    #[test]
    fn open_backend_composes_the_configured_tiers() {
        let dir = temp_dir("compose");
        assert!(open_backend(None, None).unwrap().is_none());
        let local = open_backend(Some(&dir), None).unwrap().unwrap();
        assert!(local.describe().starts_with("local jsonl"));
        let remote = open_backend(None, Some("http://127.0.0.1:7878"))
            .unwrap()
            .unwrap();
        assert!(remote.describe().contains("pmlp-serve"));
        let tiered = open_backend(Some(&dir), Some("http://127.0.0.1:7878"))
            .unwrap()
            .unwrap();
        assert!(tiered.describe().starts_with("tiered"));
        assert!(open_backend(None, Some("ftp://nope")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;
    use proptest::prelude::*;

    /// Strategy-built records spanning the whole configuration space,
    /// including disabled techniques and extreme float values.
    fn build_record(
        bits: u8,
        sparsity: f64,
        clusters: usize,
        accuracy: f64,
        area: f64,
        salt: u64,
    ) -> EvalRecord {
        let mut config = MinimizationConfig::default();
        let sparsity_millis = if sparsity < 0.05 {
            u32::MAX
        } else {
            config = config.with_sparsity(sparsity);
            crate::genome::sparsity_millis(sparsity)
        };
        let weight_bits = if bits >= 2 {
            config = config.with_weight_bits(bits);
            bits
        } else {
            0
        };
        let cluster_key = if clusters >= 2 {
            config = config.with_clusters(clusters);
            clusters
        } else {
            0
        };
        // Give some records artifacts so the blob field round-trips too.
        let artifacts = bits.is_multiple_of(2).then(|| EvalArtifacts {
            layers: vec![IntegerLayer {
                codes: vec![vec![bits as i64, -(clusters as i64)]],
                bias_codes: vec![salt as i64 >> 32],
                scale: (sparsity as f32).max(0.01),
                weight_bits: bits.max(2),
            }],
            sharing: if clusters >= 2 {
                pmlp_hw::SharingStrategy::SharedPerInput
            } else {
                pmlp_hw::SharingStrategy::None
            },
        });
        EvalRecord {
            key: EvalKey {
                weight_bits,
                sparsity_millis,
                clusters: cluster_key,
                input_bits: 4,
                fine_tune_epochs: 2,
                salt,
                // Exercise both tiers across the strategy space.
                accuracy_tier: if bits.is_multiple_of(2) {
                    AccuracyTier::Integer
                } else {
                    AccuracyTier::Float
                },
            },
            tier: SynthesisTier::FastPath,
            point: DesignPoint {
                config,
                accuracy,
                area_mm2: area,
                power_uw: area * 9.5,
                delay_us: 0.5 + area / 256.0,
                normalized_accuracy: accuracy,
                normalized_area: area / 128.0,
                sparsity: if sparsity < 0.05 { 0.0 } else { sparsity },
                gate_count: (area * 3.0) as usize,
            },
            artifacts,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn replay_round_trips_arbitrary_points_even_with_a_truncated_tail(
            raw in proptest::collection::vec(
                (0u8..9, 0.0f64..0.9, 0usize..9, 0.0f64..1.0, 0.001f64..500.0, 0u64..=u64::MAX),
                1..12,
            ),
            chop in 1usize..40,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "pmlp-store-proptest-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let records: Vec<EvalRecord> = raw
                .iter()
                .map(|&(b, s, c, acc, area, salt)| build_record(b, s, c, acc, area, salt))
                .collect();
            let path = {
                let store = EvalStore::open(&dir, "proptest", 0x5EED).unwrap();
                for r in &records {
                    store.append(r).unwrap();
                }
                store.path().expect("local store has a path")
            };

            // Full replay reproduces every record bit-for-bit.
            let mut store = EvalStore::open(&dir, "proptest", 0x5EED).unwrap();
            prop_assert_eq!(store.warm_start(), records.clone());

            // Truncating the final record (by up to `chop` bytes — always
            // fewer than one whole record line) loses exactly that record.
            let text = std::fs::read_to_string(&path).unwrap();
            let cut = text.trim_end().len() - chop;
            std::fs::write(&path, &text[..cut]).unwrap();
            let mut store = EvalStore::open(&dir, "proptest", 0x5EED).unwrap();
            let survivors = store.warm_start();
            prop_assert_eq!(&records[..records.len() - 1], &survivors[..]);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn indexed_replay_quarantines_mid_file_garbage_without_losing_the_tail(
            raw in proptest::collection::vec(
                (0u8..9, 0.0f64..0.9, 0usize..9, 0.0f64..1.0, 0.001f64..500.0, 0u64..=u64::MAX),
                2..10,
            ),
            position_seed in 0usize..64,
            garbage_seed in 0u64..=u64::MAX,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "pmlp-store-quarantine-proptest-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let records: Vec<EvalRecord> = raw
                .iter()
                .map(|&(b, s, c, acc, area, salt)| build_record(b, s, c, acc, area, salt))
                .collect();
            let jsonl = LocalJsonlBackend::open(&dir).unwrap();
            for r in &records {
                jsonl.append("proptest", 0x5EED, r).unwrap();
            }
            let path = jsonl.record_path("proptest", 0x5EED).unwrap();

            // Inject a garbage line anywhere after the header — damage a
            // crashed append can never cause, only bit rot or a bug can.
            let text = std::fs::read_to_string(&path).unwrap();
            let mut lines: Vec<&str> = text.lines().collect();
            let garbage = format!("!!garbage-{garbage_seed:016x}!!");
            let at = 1 + position_seed % records.len();
            lines.insert(at, &garbage);
            std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

            // A fresh indexed replay (the server's read path) must keep every
            // real record — including all of them *after* the garbage —
            // counting and quarantining the bad line instead of panicking or
            // truncating the tail.
            let indexed = IndexedBackend::new(Box::new(LocalJsonlBackend::open(&dir).unwrap()));
            let outcome = indexed.scan("proptest", 0x5EED).unwrap();
            prop_assert_eq!(&outcome.records[..], &records[..]);
            prop_assert_eq!(outcome.dropped, 1, "exactly the injected line");
            let sidecar = format!("{}.quarantine", path.display());
            let quarantined = std::fs::read_to_string(&sidecar).unwrap();
            prop_assert!(quarantined.contains(&garbage));

            // The salvage rewrite is durable: the next replay is clean.
            indexed.invalidate();
            let outcome = indexed.scan("proptest", 0x5EED).unwrap();
            prop_assert_eq!(&outcome.records[..], &records[..]);
            prop_assert_eq!(outcome.dropped, 0, "salvage rewrite committed");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
