//! An in-memory record index over any [`StoreBackend`]: scans and point-gets
//! answer from RAM, appends write through to the inner tier and update the
//! index in place.
//!
//! This is the serve tier's read path: `pmlp-serve` fronts its durable
//! [`LocalJsonlBackend`](crate::store::LocalJsonlBackend) with one of these so
//! a record-log scan stops re-reading (and re-parsing) the whole JSONL file
//! on every request — the log is replayed **once** (at startup preload or on
//! first touch) and kept current by the appends that flow through it. The
//! index holds exactly what a scan would return, so responses are
//! bit-identical to the uncached path.
//!
//! Consistency: the map lock is held across the inner-tier call of every
//! record operation, so a cached log can never diverge from its file — an
//! append updates disk and index under one critical section (the inner
//! backend serializes appends per log anyway). External rewrites of the
//! directory (an offline `gc`) are the one thing the index cannot see; the
//! owner invalidates it explicitly ([`IndexedBackend::invalidate`]) after
//! such surgery.

use super::backend::{sanitize_name, ScanOutcome, StoreBackend};
use crate::engine::EvalKey;
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// One cached record log: the records in append order plus a key index
/// pointing at the last (= winning) record per key.
#[derive(Debug, Default)]
struct LogCache {
    records: Vec<EvalRecord>,
    index: HashMap<EvalKey, usize>,
    dropped: usize,
}

impl LogCache {
    fn from_outcome(outcome: ScanOutcome) -> Self {
        let mut cache = LogCache {
            index: HashMap::with_capacity(outcome.records.len()),
            records: outcome.records,
            dropped: outcome.dropped,
        };
        for (i, record) in cache.records.iter().enumerate() {
            cache.index.insert(record.key, i);
        }
        cache
    }

    fn push(&mut self, record: &EvalRecord) {
        self.index.insert(record.key, self.records.len());
        self.records.push(record.clone());
    }
}

/// The in-memory index tier: wraps any backend, keeps every touched record
/// log resident, and serves scans/gets without re-reading the inner tier.
pub struct IndexedBackend {
    inner: Box<dyn StoreBackend>,
    logs: Mutex<HashMap<(String, u64), LogCache>>,
}

impl std::fmt::Debug for IndexedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexedBackend")
            .field("inner", &self.inner.describe())
            .finish()
    }
}

impl IndexedBackend {
    /// Wraps `inner` with an (initially empty) index; logs load lazily on
    /// first touch, or eagerly via [`IndexedBackend::warm`].
    pub fn new(inner: Box<dyn StoreBackend>) -> Self {
        IndexedBackend {
            inner,
            logs: Mutex::new(HashMap::new()),
        }
    }

    /// Loads the given `(shard label, fingerprint)` logs into the index now
    /// (a server does this once at startup, from
    /// [`list_record_logs`](super::list_record_logs)), returning how many
    /// records are resident afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when an inner scan fails.
    pub fn warm(&self, logs: &[(String, u64)]) -> Result<usize, CoreError> {
        let mut map = self.logs.lock().expect("index map lock");
        for (name, fingerprint) in logs {
            Self::load(&mut map, self.inner.as_ref(), name, *fingerprint)?;
        }
        Ok(map.values().map(|c| c.records.len()).sum())
    }

    /// Drops every cached log, forcing reloads from the inner tier — called
    /// after out-of-band surgery on the inner storage (an online GC pass
    /// rewrites log files underneath the index).
    pub fn invalidate(&self) {
        self.logs.lock().expect("index map lock").clear();
    }

    /// `(resident logs, resident records)` — observability for `/v1/stats`.
    pub fn resident(&self) -> (usize, usize) {
        let map = self.logs.lock().expect("index map lock");
        (map.len(), map.values().map(|c| c.records.len()).sum())
    }

    /// Ensures `(name, fingerprint)` is cached, loading it from the inner
    /// tier if needed. Call with the map lock held (the map *is* the lock's
    /// contents).
    fn load<'m>(
        map: &'m mut HashMap<(String, u64), LogCache>,
        inner: &dyn StoreBackend,
        name: &str,
        fingerprint: u64,
    ) -> Result<&'m mut LogCache, CoreError> {
        let key = (sanitize_name(name), fingerprint);
        if !map.contains_key(&key) {
            let outcome = inner.scan(name, fingerprint)?;
            map.insert(key.clone(), LogCache::from_outcome(outcome));
        }
        Ok(map.get_mut(&key).expect("cached log"))
    }
}

impl StoreBackend for IndexedBackend {
    fn describe(&self) -> String {
        format!("indexed {}", self.inner.describe())
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        let mut map = self.logs.lock().expect("index map lock");
        let cache = Self::load(&mut map, self.inner.as_ref(), name, fingerprint)?;
        Ok(ScanOutcome {
            records: cache.records.clone(),
            dropped: cache.dropped,
        })
    }

    fn get(
        &self,
        name: &str,
        fingerprint: u64,
        key: &EvalKey,
    ) -> Result<Option<EvalRecord>, CoreError> {
        let mut map = self.logs.lock().expect("index map lock");
        let cache = Self::load(&mut map, self.inner.as_ref(), name, fingerprint)?;
        Ok(cache.index.get(key).map(|&i| cache.records[i].clone()))
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        let mut map = self.logs.lock().expect("index map lock");
        let cache = Self::load(&mut map, self.inner.as_ref(), name, fingerprint)?;
        self.inner.append(name, fingerprint, record)?;
        cache.push(record);
        Ok(())
    }

    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut map = self.logs.lock().expect("index map lock");
        let cache = Self::load(&mut map, self.inner.as_ref(), name, fingerprint)?;
        self.inner.append_batch(name, fingerprint, records)?;
        for record in records {
            cache.push(record);
        }
        Ok(())
    }

    fn compact(&self, name: &str, fingerprint: u64) -> Result<usize, CoreError> {
        // The inner tier rewrites its log; drop the cached copy and reload
        // lazily so the index reflects the merged file.
        let mut map = self.logs.lock().expect("index map lock");
        let removed = self.inner.compact(name, fingerprint)?;
        map.remove(&(sanitize_name(name), fingerprint));
        Ok(removed)
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        self.inner.get_doc(name)
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        self.inner.put_doc(name, contents)
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        self.inner.remove_doc(name)
    }

    fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        // Documents are never indexed (they are small and read rarely); the
        // listing passes straight through to the inner tier.
        self.inner.list_docs(prefix)
    }

    fn record_path(&self, name: &str, fingerprint: u64) -> Option<PathBuf> {
        self.inner.record_path(name, fingerprint)
    }

    fn resilience(&self) -> Option<super::backend::ResilienceStats> {
        self.inner.resilience()
    }

    fn flush(&self) -> Result<(), CoreError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::super::jsonl::LocalJsonlBackend;
    use super::super::memory::MemoryBackend;
    use super::super::tests::{record, temp_dir};
    use super::*;

    #[test]
    fn scans_and_gets_answer_from_the_index_after_one_inner_read() {
        let dir = temp_dir("indexed-read");
        let inner = LocalJsonlBackend::open(&dir).unwrap();
        let a = record(3, 0.8, 40.0);
        let b = record(4, 0.9, 50.0);
        inner.append("Seeds", 7, &a).unwrap();
        inner.append("Seeds", 7, &b).unwrap();

        let indexed = IndexedBackend::new(Box::new(inner));
        assert_eq!(
            indexed.scan("Seeds", 7).unwrap().records,
            vec![a.clone(), b.clone()]
        );
        // Mangle the file behind the index's back: cached reads must not
        // notice (they no longer touch the file), proving they come from RAM.
        let path = indexed.record_path("Seeds", 7).unwrap();
        std::fs::write(&path, "gone").unwrap();
        assert_eq!(indexed.scan("Seeds", 7).unwrap().records.len(), 2);
        assert_eq!(indexed.get("Seeds", 7, &a.key).unwrap(), Some(a));
        // ...until invalidated.
        indexed.invalidate();
        assert_eq!(indexed.scan("Seeds", 7).unwrap().records.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_write_through_and_update_the_index() {
        let dir = temp_dir("indexed-append");
        let indexed = IndexedBackend::new(Box::new(LocalJsonlBackend::open(&dir).unwrap()));
        let a = record(3, 0.8, 40.0);
        let mut a2 = a.clone();
        a2.point.accuracy = 0.81;
        indexed.append("Seeds", 1, &a).unwrap();
        indexed
            .append_batch("Seeds", 1, &[a2.clone(), record(4, 0.9, 50.0)])
            .unwrap();
        // Last write wins in the index.
        assert_eq!(indexed.get("Seeds", 1, &a.key).unwrap(), Some(a2));
        assert_eq!(indexed.resident(), (1, 3));
        // The write-through is durable: a plain backend over the same
        // directory sees all three records.
        let plain = LocalJsonlBackend::open(&dir).unwrap();
        assert_eq!(plain.scan("Seeds", 1).unwrap().records.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_preloads_and_compact_reloads() {
        let inner = MemoryBackend::new();
        let a = record(3, 0.8, 40.0);
        inner.append("Seeds", 2, &a).unwrap();
        inner.append("Seeds", 2, &a).unwrap(); // duplicate
        inner.append("Wine", 3, &record(4, 0.9, 50.0)).unwrap();

        let indexed = IndexedBackend::new(Box::new(inner));
        let resident = indexed
            .warm(&[("seeds".into(), 2), ("wine".into(), 3)])
            .unwrap();
        assert_eq!(resident, 3);
        assert_eq!(indexed.compact("Seeds", 2).unwrap(), 1);
        assert_eq!(indexed.scan("Seeds", 2).unwrap().records, vec![a]);
        assert_eq!(indexed.resident(), (2, 2));
    }
}
