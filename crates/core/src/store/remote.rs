//! HTTP/1.1 client backend for a `pmlp-serve` evaluation-cache server.
//!
//! The wire format is the store's own sealed-envelope JSONL: a record scan
//! response is byte-compatible with a local record log (header line bound to
//! the baseline fingerprint, then one record per line), so the client reuses
//! the same corruption-tolerant parsing as the local tier. Endpoints:
//!
//! | Method + path | Meaning |
//! |---------------|---------|
//! | `GET /v1/records/{name}/{fp}` | scan one record log |
//! | `POST /v1/records/{name}/{fp}` | append record line(s) |
//! | `GET /v1/docs/{name}` | read a document (404 = absent) |
//! | `PUT /v1/docs/{name}` | write a document |
//! | `DELETE /v1/docs/{name}` | delete a document |
//! | `GET /v1/healthz` | liveness probe |
//! | `GET /v1/stats` | server counters (JSON) |
//! | `POST /v1/gc` | run a garbage-collection pass on the server |
//!
//! The client is deliberately dependency-free (`std::net` only). The
//! authority resolves **once** (at construction, or lazily on the first
//! request when construction-time resolution is unavailable) and requests
//! ride **persistent keep-alive connections** drawn from a small shared pool:
//! a completed request parks its socket for the next one, a stale parked
//! socket (server restarted, idle timeout fired) is retried once on a fresh
//! connection, and a fresh connection that still fails is a real error — the
//! signal a [`TieredStore`](crate::store::TieredStore) degrades on. All
//! sockets carry the configured timeout (connect, read, write), so a dead
//! server fails fast instead of hanging a search.
//!
//! Authentication: a server started with `--token` expects
//! `Authorization: Bearer <token>`; the client learns the token from
//! [`RemoteBackend::with_token`] or inline in the URL
//! (`http://TOKEN@host:port`), which threads through every existing
//! `--remote-store` plumbing unchanged.

use super::backend::{check_doc_name, sanitize_name, ScanOutcome, StoreBackend};
use super::{header_matches, hex, parse_record_line, record_line};
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

fn store_err(context: String) -> CoreError {
    CoreError::Store { context }
}

/// Largest accepted response head; a `pmlp-serve` head is a few lines.
const MAX_RESPONSE_HEAD: usize = 64 * 1024;

/// Most idle keep-alive sockets parked per client. Engines hammer the store
/// from a rayon pool, so a handful of connections covers the realistic
/// concurrency without holding dozens of server workers hostage.
const POOL_CAP: usize = 8;

/// One parsed HTTP response.
#[derive(Debug)]
struct Response {
    status: u16,
    body: String,
}

/// The remote tier: an HTTP client bound to one `pmlp-serve` base URL.
#[derive(Debug, Clone)]
pub struct RemoteBackend {
    /// `host:port` the server listens on (token stripped).
    authority: String,
    /// Addresses the authority resolved to, filled at most once.
    resolved: Arc<OnceLock<Vec<SocketAddr>>>,
    /// Per-request connect/read/write timeout.
    timeout: Duration,
    /// Bearer token sent as `Authorization` on every request.
    token: Option<String>,
    /// Idle keep-alive connections, shared by clones of this client.
    pool: Arc<Mutex<Vec<TcpStream>>>,
}

impl RemoteBackend {
    /// Creates a client for `url` (`http://host:port` or
    /// `http://TOKEN@host:port`; a trailing slash is tolerated; `https` is
    /// not supported — the store speaks plain HTTP on a trusted network,
    /// typically loopback or a cluster-internal address).
    ///
    /// The authority is resolved here when the resolver cooperates (and never
    /// again); the server is *not* contacted — a client can be constructed
    /// before its server starts, and a hostname that fails to resolve now is
    /// retried on the first request.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] for unsupported schemes or a malformed
    /// authority.
    pub fn new(url: &str) -> Result<Self, CoreError> {
        let trimmed = url.trim();
        let rest = match trimmed.split_once("://") {
            Some(("http", rest)) => rest,
            Some((scheme, _)) => {
                return Err(store_err(format!(
                    "remote store: unsupported scheme `{scheme}` in `{url}` (only http)"
                )))
            }
            None => trimmed,
        };
        let rest = rest.trim_end_matches('/');
        // URL userinfo carries the bearer token: http://TOKEN@host:port.
        let (token, authority) = match rest.split_once('@') {
            Some((token, authority)) if !token.is_empty() => (Some(token.to_string()), authority),
            Some((_, authority)) => (None, authority),
            None => (None, rest),
        };
        if authority.is_empty() || authority.contains('/') {
            return Err(store_err(format!("remote store: malformed URL `{url}`")));
        }
        let client = RemoteBackend {
            authority: authority.to_string(),
            resolved: Arc::new(OnceLock::new()),
            timeout: Duration::from_secs(10),
            token,
            pool: Arc::new(Mutex::new(Vec::new())),
        };
        // Resolve eagerly; a failure here (no resolver yet, say) retries on
        // the first request instead of failing construction.
        let _ = client.addrs();
        Ok(client)
    }

    /// Overrides the per-request timeout (connect, read and write).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the bearer token sent with every request (`Authorization:
    /// Bearer <token>`), overriding any token parsed from the URL.
    #[must_use]
    pub fn with_token(mut self, token: &str) -> Self {
        self.token = Some(token.to_string());
        self
    }

    /// The `host:port` this client talks to.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// The bearer token this client authenticates with, if any.
    pub fn token(&self) -> Option<&str> {
        self.token.as_deref()
    }

    /// The resolved (and cached) socket addresses of the authority.
    fn addrs(&self) -> Result<&[SocketAddr], CoreError> {
        if let Some(addrs) = self.resolved.get() {
            return Ok(addrs);
        }
        let addrs: Vec<SocketAddr> = self
            .authority
            .to_socket_addrs()
            .map_err(|e| store_err(format!("remote store: resolve {}: {e}", self.authority)))?
            .collect();
        if addrs.is_empty() {
            return Err(store_err(format!(
                "remote store: no address for {}",
                self.authority
            )));
        }
        Ok(self.resolved.get_or_init(|| addrs))
    }

    /// Opens (and deadline-arms) a fresh connection.
    fn connect(&self) -> Result<TcpStream, CoreError> {
        // Try every resolved address (a dual-stack `localhost` often lists
        // ::1 first while the server bound 127.0.0.1 — the IPv4 attempt must
        // still go through).
        let mut last_err = None;
        for addr in self.addrs()? {
            match TcpStream::connect_timeout(addr, self.timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeout)).ok();
                    stream.set_write_timeout(Some(self.timeout)).ok();
                    stream.set_nodelay(true).ok();
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(store_err(format!(
            "remote store: connect {}: {}",
            self.authority,
            last_err.expect("at least one address was tried")
        )))
    }

    /// Takes an idle keep-alive connection out of the pool, if any.
    fn pool_take(&self) -> Option<TcpStream> {
        self.pool.lock().expect("connection pool lock").pop()
    }

    /// Parks a healthy connection for the next request.
    fn pool_put(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("connection pool lock");
        if pool.len() < POOL_CAP {
            pool.push(stream);
        }
    }

    /// One request/response exchange on `stream`. On success the connection
    /// is parked for reuse unless the server asked to close it.
    fn roundtrip(
        &self,
        mut stream: TcpStream,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<Response> {
        let auth = match &self.token {
            Some(token) => format!("Authorization: Bearer {token}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\n{auth}Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.authority,
            body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        let (response, reusable) = read_response(&mut stream)?;
        if reusable {
            self.pool_put(stream);
        }
        Ok(response)
    }

    /// One request/response round trip, reusing a pooled connection when one
    /// is parked. A stale parked connection (the server restarted or timed
    /// the socket out between requests) gets exactly one retry on a fresh
    /// connection; a fresh connection failing is the real dead-server signal.
    fn request(&self, method: &str, path: &str, body: &str) -> Result<Response, CoreError> {
        if let Some(stream) = self.pool_take() {
            if let Ok(response) = self.roundtrip(stream, method, path, body) {
                return Ok(response);
            }
        }
        let stream = self.connect()?;
        self.roundtrip(stream, method, path, body)
            .map_err(|e| store_err(format!("remote store: {method} {path}: {e}")))
    }

    fn records_path(name: &str, fingerprint: u64) -> String {
        format!("/v1/records/{}/{}", sanitize_name(name), hex(fingerprint))
    }

    /// Liveness probe: `true` when the server answers `GET /v1/healthz`.
    pub fn ping(&self) -> bool {
        self.request("GET", "/v1/healthz", "")
            .map(|r| r.status == 200)
            .unwrap_or(false)
    }

    /// Fetches the server's `/v1/stats` counters as raw JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the server is unreachable or answers
    /// with a non-200 status.
    pub fn stats(&self) -> Result<String, CoreError> {
        let response = self.request("GET", "/v1/stats", "")?;
        if response.status != 200 {
            return Err(store_err(format!(
                "remote store: stats returned HTTP {}",
                response.status
            )));
        }
        Ok(response.body)
    }

    /// Runs an online garbage-collection pass on the server (`POST /v1/gc`),
    /// returning the server's JSON [`GcReport`](crate::store::GcReport).
    /// `body` is the request JSON (`"{}"` for a pure compaction pass with
    /// default policy; see the serve crate's endpoint docs for the fields).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the server is unreachable, rejects
    /// the request or fails the pass.
    pub fn gc(&self, body: &str) -> Result<String, CoreError> {
        let response = self.request("POST", "/v1/gc", body)?;
        if response.status != 200 {
            return Err(store_err(format!(
                "remote store: gc returned HTTP {}: {}",
                response.status,
                response.body.trim()
            )));
        }
        Ok(response.body)
    }
}

/// Reads one HTTP response off `stream`, returning it plus whether the
/// connection may be reused (the server sent `Content-Length` and did not ask
/// to close).
fn read_response(stream: &mut TcpStream) -> std::io::Result<(Response, bool)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_RESPONSE_HEAD {
            return Err(bad("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length: Option<usize> = None;
    let mut close = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?,
                );
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }

    let mut body = buf[head_end + 4..].to_vec();
    match content_length {
        Some(len) => {
            while body.len() < len {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(bad("connection closed mid-body"));
                }
                body.extend_from_slice(&chunk[..n]);
            }
            body.truncate(len);
        }
        None => {
            // No framing: drain to EOF, which forfeits reuse.
            stream.read_to_end(&mut body)?;
            close = true;
        }
    }
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF8 body"))?;
    Ok((Response { status, body }, !close))
}

impl StoreBackend for RemoteBackend {
    fn describe(&self) -> String {
        format!("remote pmlp-serve at http://{}", self.authority)
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        let path = Self::records_path(name, fingerprint);
        let response = self.request("GET", &path, "")?;
        if response.status != 200 {
            return Err(store_err(format!(
                "remote store: scan {path} returned HTTP {}",
                response.status
            )));
        }
        let mut lines = response.body.lines();
        match lines.next() {
            Some(header) if header_matches(header, fingerprint) => {}
            _ => {
                return Err(store_err(format!(
                    "remote store: scan {path} returned a foreign or versionless header"
                )))
            }
        }
        let mut outcome = ScanOutcome::default();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_record_line(line) {
                Ok(record) => outcome.records.push(record),
                Err(_) => outcome.dropped += 1,
            }
        }
        Ok(outcome)
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        self.append_batch(name, fingerprint, std::slice::from_ref(record))
    }

    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        if records.is_empty() {
            return Ok(());
        }
        let path = Self::records_path(name, fingerprint);
        let mut body = String::new();
        for record in records {
            body.push_str(&record_line(record));
            body.push('\n');
        }
        let response = self.request("POST", &path, &body)?;
        if response.status != 204 {
            return Err(store_err(format!(
                "remote store: append {path} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        check_doc_name(name)?;
        let response = self.request("GET", &format!("/v1/docs/{name}"), "")?;
        match response.status {
            200 => Ok(Some(response.body)),
            404 => Ok(None),
            status => Err(store_err(format!(
                "remote store: get doc {name} returned HTTP {status}"
            ))),
        }
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        let response = self.request("PUT", &format!("/v1/docs/{name}"), contents)?;
        if response.status != 204 {
            return Err(store_err(format!(
                "remote store: put doc {name} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        let response = self.request("DELETE", &format!("/v1/docs/{name}"), "")?;
        if response.status != 204 && response.status != 404 {
            return Err(store_err(format!(
                "remote store: delete doc {name} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_http_and_bare_authorities() {
        assert_eq!(
            RemoteBackend::new("http://127.0.0.1:7878")
                .unwrap()
                .authority(),
            "127.0.0.1:7878"
        );
        assert_eq!(
            RemoteBackend::new("http://localhost:8080/")
                .unwrap()
                .authority(),
            "localhost:8080"
        );
        assert_eq!(
            RemoteBackend::new("127.0.0.1:7878").unwrap().authority(),
            "127.0.0.1:7878"
        );
        assert!(RemoteBackend::new("https://x:1").is_err());
        assert!(RemoteBackend::new("http://").is_err());
        assert!(RemoteBackend::new("http://host:1/path").is_err());
    }

    #[test]
    fn url_userinfo_carries_the_bearer_token() {
        let client = RemoteBackend::new("http://s3cr3t@127.0.0.1:7878").unwrap();
        assert_eq!(client.authority(), "127.0.0.1:7878");
        assert_eq!(client.token(), Some("s3cr3t"));
        // with_token overrides the URL's token.
        let client = client.with_token("newer");
        assert_eq!(client.token(), Some("newer"));
        // No token: none parsed.
        assert_eq!(
            RemoteBackend::new("http://127.0.0.1:7878").unwrap().token(),
            None
        );
    }

    #[test]
    fn a_dead_server_errors_instead_of_hanging() {
        // Nothing listens on this port; the client must fail fast (the
        // tiered store converts this error into local-only degradation).
        let client = RemoteBackend::new("http://127.0.0.1:1")
            .unwrap()
            .with_timeout(Duration::from_millis(200));
        assert!(!client.ping());
        assert!(client.scan("seeds", 1).is_err());
        assert!(client.get_doc("m.json").is_err());
    }
}
