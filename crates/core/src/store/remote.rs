//! HTTP/1.1 client backend for a `pmlp-serve` evaluation-cache server.
//!
//! The wire format is the store's own sealed-envelope JSONL: a record scan
//! response is byte-compatible with a local record log (header line bound to
//! the baseline fingerprint, then one record per line), so the client reuses
//! the same corruption-tolerant parsing as the local tier. Endpoints:
//!
//! | Method + path | Meaning |
//! |---------------|---------|
//! | `GET /v1/records/{name}/{fp}` | scan one record log |
//! | `POST /v1/records/{name}/{fp}` | append record line(s) |
//! | `GET /v1/docs/{name}` | read a document (404 = absent) |
//! | `GET /v1/docs?prefix={p}` | list document names with prefix `{p}` (JSON array) |
//! | `PUT /v1/docs/{name}` | write a document |
//! | `DELETE /v1/docs/{name}` | delete a document |
//! | `GET /v1/healthz` | liveness probe |
//! | `GET /v1/stats` | server counters (JSON) |
//! | `POST /v1/gc` | run a garbage-collection pass on the server |
//!
//! The client is deliberately dependency-free (`std::net` only). The
//! authority resolves **once** (at construction, or lazily on the first
//! request when construction-time resolution is unavailable) and requests
//! ride **persistent keep-alive connections** drawn from a small shared pool:
//! a completed request parks its socket for the next one, and a stale parked
//! socket (server restarted, idle timeout fired) gets one free retry on a
//! fresh connection. Fresh-connection failures are classified: *transient*
//! errors (connect refused/reset, timeout, early close, HTTP 5xx) retry with
//! exponential backoff and deterministic jitter up to the configured
//! [`RetryPolicy`]; *permanent* errors (4xx, protocol garbage) fail
//! immediately. An exhausted retry budget is the real dead-server signal a
//! [`TieredStore`](crate::store::TieredStore) opens its circuit breaker on.
//! All sockets carry the configured timeout (connect, read, write), so a
//! dead server fails fast instead of hanging a search.
//!
//! Authentication: a server started with `--token` expects
//! `Authorization: Bearer <token>`; the client learns the token from
//! [`RemoteBackend::with_token`] or inline in the URL
//! (`http://TOKEN@host:port`), which threads through every existing
//! `--remote-store` plumbing unchanged.

use super::backend::{check_doc_name, sanitize_name, ResilienceStats, ScanOutcome, StoreBackend};
use super::{header_matches, hex, parse_record_line, record_line};
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

fn store_err(context: String) -> CoreError {
    CoreError::Store { context }
}

/// Largest accepted response head; a `pmlp-serve` head is a few lines.
const MAX_RESPONSE_HEAD: usize = 64 * 1024;

/// Most idle keep-alive sockets parked per client. Engines hammer the store
/// from a rayon pool, so a handful of connections covers the realistic
/// concurrency without holding dozens of server workers hostage.
const POOL_CAP: usize = 8;

/// One parsed HTTP response.
#[derive(Debug)]
struct Response {
    status: u16,
    body: String,
}

/// Bounded-retry policy of a [`RemoteBackend`]: how many attempts a request
/// gets and how the exponential backoff between them grows. Only *transient*
/// failures (connect/timeout/reset/5xx) consume retries — permanent errors
/// (4xx, protocol garbage) fail on the first attempt by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound of the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (useful for probes that must fail fast).
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Lifetime fault counters, shared by every clone of one client.
#[derive(Debug, Default)]
struct RemoteCounters {
    retries: AtomicUsize,
    transient_errors: AtomicUsize,
    permanent_errors: AtomicUsize,
}

/// `true` when an I/O error is worth retrying: anything that smells like the
/// network or the peer (refused, reset, timeout, early close) rather than a
/// protocol violation in an otherwise-delivered response.
fn transient_io(e: &std::io::Error) -> bool {
    e.kind() != std::io::ErrorKind::InvalidData
}

/// The remote tier: an HTTP client bound to one `pmlp-serve` base URL.
#[derive(Debug, Clone)]
pub struct RemoteBackend {
    /// `host:port` the server listens on (token stripped).
    authority: String,
    /// Addresses the authority resolved to, filled at most once.
    resolved: Arc<OnceLock<Vec<SocketAddr>>>,
    /// Per-request connect/read/write timeout.
    timeout: Duration,
    /// Bearer token sent as `Authorization` on every request.
    token: Option<String>,
    /// Idle keep-alive connections, shared by clones of this client.
    pool: Arc<Mutex<Vec<TcpStream>>>,
    /// Bounded-retry policy applied to transient failures.
    retry: RetryPolicy,
    /// Lifetime fault counters, shared by clones of this client.
    counters: Arc<RemoteCounters>,
}

impl RemoteBackend {
    /// Creates a client for `url` (`http://host:port` or
    /// `http://TOKEN@host:port`; a trailing slash is tolerated; `https` is
    /// not supported — the store speaks plain HTTP on a trusted network,
    /// typically loopback or a cluster-internal address).
    ///
    /// The authority is resolved here when the resolver cooperates (and never
    /// again); the server is *not* contacted — a client can be constructed
    /// before its server starts, and a hostname that fails to resolve now is
    /// retried on the first request.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] for unsupported schemes or a malformed
    /// authority.
    pub fn new(url: &str) -> Result<Self, CoreError> {
        let trimmed = url.trim();
        let rest = match trimmed.split_once("://") {
            Some(("http", rest)) => rest,
            Some((scheme, _)) => {
                return Err(store_err(format!(
                    "remote store: unsupported scheme `{scheme}` in `{url}` (only http)"
                )))
            }
            None => trimmed,
        };
        let rest = rest.trim_end_matches('/');
        // URL userinfo carries the bearer token: http://TOKEN@host:port.
        let (token, authority) = match rest.split_once('@') {
            Some((token, authority)) if !token.is_empty() => (Some(token.to_string()), authority),
            Some((_, authority)) => (None, authority),
            None => (None, rest),
        };
        if authority.is_empty() || authority.contains('/') {
            return Err(store_err(format!("remote store: malformed URL `{url}`")));
        }
        let client = RemoteBackend {
            authority: authority.to_string(),
            resolved: Arc::new(OnceLock::new()),
            timeout: Duration::from_secs(10),
            token,
            pool: Arc::new(Mutex::new(Vec::new())),
            retry: RetryPolicy::default(),
            counters: Arc::new(RemoteCounters::default()),
        };
        // Resolve eagerly; a failure here (no resolver yet, say) retries on
        // the first request instead of failing construction.
        let _ = client.addrs();
        Ok(client)
    }

    /// Overrides the per-request timeout (connect, read and write).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the bearer token sent with every request (`Authorization:
    /// Bearer <token>`), overriding any token parsed from the URL.
    #[must_use]
    pub fn with_token(mut self, token: &str) -> Self {
        self.token = Some(token.to_string());
        self
    }

    /// Overrides the bounded-retry policy (see [`RetryPolicy`]).
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The `host:port` this client talks to.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// The bearer token this client authenticates with, if any.
    pub fn token(&self) -> Option<&str> {
        self.token.as_deref()
    }

    /// The resolved (and cached) socket addresses of the authority.
    fn addrs(&self) -> Result<&[SocketAddr], CoreError> {
        if let Some(addrs) = self.resolved.get() {
            return Ok(addrs);
        }
        let addrs: Vec<SocketAddr> = self
            .authority
            .to_socket_addrs()
            .map_err(|e| store_err(format!("resolve {}: {e}", self.authority)))?
            .collect();
        if addrs.is_empty() {
            return Err(store_err(format!("no address for {}", self.authority)));
        }
        Ok(self.resolved.get_or_init(|| addrs))
    }

    /// Opens (and deadline-arms) a fresh connection.
    fn connect(&self) -> Result<TcpStream, CoreError> {
        // Try every resolved address (a dual-stack `localhost` often lists
        // ::1 first while the server bound 127.0.0.1 — the IPv4 attempt must
        // still go through).
        let mut last_err = None;
        for addr in self.addrs()? {
            match TcpStream::connect_timeout(addr, self.timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeout)).ok();
                    stream.set_write_timeout(Some(self.timeout)).ok();
                    stream.set_nodelay(true).ok();
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(store_err(format!(
            "connect {}: {}",
            self.authority,
            last_err.expect("at least one address was tried")
        )))
    }

    /// Takes an idle keep-alive connection out of the pool, if any.
    fn pool_take(&self) -> Option<TcpStream> {
        self.pool.lock().expect("connection pool lock").pop()
    }

    /// Parks a healthy connection for the next request.
    fn pool_put(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("connection pool lock");
        if pool.len() < POOL_CAP {
            pool.push(stream);
        }
    }

    /// One request/response exchange on `stream`. On success the connection
    /// is parked for reuse unless the server asked to close it.
    fn roundtrip(
        &self,
        mut stream: TcpStream,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<Response> {
        let auth = match &self.token {
            Some(token) => format!("Authorization: Bearer {token}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\n{auth}Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.authority,
            body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        let (response, reusable) = read_response(&mut stream)?;
        if reusable {
            self.pool_put(stream);
        }
        Ok(response)
    }

    /// Deterministic backoff before retry number `retry_no` (1-based):
    /// exponential growth capped at the policy's maximum, plus jitter derived
    /// from a hash of `(authority, path, retry_no)` — reproducible run to
    /// run, yet de-synchronized across workers hitting different paths.
    fn backoff_delay(&self, path: &str, retry_no: u32) -> Duration {
        let exp = self
            .retry
            .base_backoff
            .saturating_mul(1u32 << (retry_no - 1).min(16));
        let capped = exp.min(self.retry.max_backoff);
        let mut fp = crate::store::FingerprintHasher::new();
        fp.mix_bytes(self.authority.as_bytes());
        fp.mix_bytes(path.as_bytes());
        fp.mix_bytes(&retry_no.to_le_bytes());
        let span_ms = (self.retry.base_backoff.as_millis() as u64 / 2).max(1);
        capped + Duration::from_millis(fp.finish() % span_ms)
    }

    /// Counts and builds a *permanent* error (4xx, protocol violation):
    /// dropped on the spot, never retried.
    fn reject(&self, context: String) -> CoreError {
        self.counters
            .permanent_errors
            .fetch_add(1, Ordering::Relaxed);
        store_err(context)
    }

    /// One request/response round trip with bounded retries.
    ///
    /// A stale parked keep-alive connection (the server restarted or timed
    /// the socket out between requests) gets one free retry that is not
    /// charged against the policy. Fresh-connection attempts then classify
    /// every failure: transient ones (connect refused/reset, timeout, early
    /// close, HTTP 5xx) retry with exponential backoff + deterministic
    /// jitter up to the policy's attempt budget; permanent ones (protocol
    /// garbage in a delivered response) fail immediately. Non-5xx HTTP
    /// statuses are returned to the caller — their meaning is per-endpoint.
    fn request(&self, method: &str, path: &str, body: &str) -> Result<Response, CoreError> {
        if let Some(stream) = self.pool_take() {
            match self.roundtrip(stream, method, path, body) {
                Ok(response) if response.status < 500 => return Ok(response),
                // A pooled 5xx or transport error falls through to the
                // fresh-connection attempts below.
                _ => {}
            }
        }
        let attempts = self.retry.attempts.max(1);
        let mut last_failure = String::new();
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.backoff_delay(path, attempt - 1));
            }
            let outcome = match self.connect() {
                Ok(stream) => self
                    .roundtrip(stream, method, path, body)
                    .map_err(|e| (transient_io(&e), format!("{method} {path}: {e}"))),
                Err(CoreError::Store { context }) => Err((true, context)),
                Err(e) => Err((true, e.to_string())),
            };
            match outcome {
                Ok(response) if response.status >= 500 => {
                    last_failure = format!("{method} {path}: HTTP {}", response.status);
                }
                Ok(response) => return Ok(response),
                Err((true, failure)) => last_failure = failure,
                Err((false, failure)) => {
                    return Err(self.reject(format!("remote store: {failure} (permanent)")));
                }
            }
        }
        self.counters
            .transient_errors
            .fetch_add(1, Ordering::Relaxed);
        Err(store_err(format!(
            "remote store: {last_failure} (after {attempts} attempt(s))"
        )))
    }

    fn records_path(name: &str, fingerprint: u64) -> String {
        format!("/v1/records/{}/{}", sanitize_name(name), hex(fingerprint))
    }

    /// Liveness probe: `true` when the server answers `GET /v1/healthz`.
    pub fn ping(&self) -> bool {
        self.request("GET", "/v1/healthz", "")
            .map(|r| r.status == 200)
            .unwrap_or(false)
    }

    /// Fetches the server's `/v1/stats` counters as raw JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the server is unreachable or answers
    /// with a non-200 status.
    pub fn stats(&self) -> Result<String, CoreError> {
        let response = self.request("GET", "/v1/stats", "")?;
        if response.status != 200 {
            return Err(self.reject(format!(
                "remote store: stats returned HTTP {}",
                response.status
            )));
        }
        Ok(response.body)
    }

    /// Runs an online garbage-collection pass on the server (`POST /v1/gc`),
    /// returning the server's JSON [`GcReport`](crate::store::GcReport).
    /// `body` is the request JSON (`"{}"` for a pure compaction pass with
    /// default policy; see the serve crate's endpoint docs for the fields).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the server is unreachable, rejects
    /// the request or fails the pass.
    pub fn gc(&self, body: &str) -> Result<String, CoreError> {
        let response = self.request("POST", "/v1/gc", body)?;
        if response.status != 200 {
            return Err(self.reject(format!(
                "remote store: gc returned HTTP {}: {}",
                response.status,
                response.body.trim()
            )));
        }
        Ok(response.body)
    }
}

/// Reads one HTTP response off `stream`, returning it plus whether the
/// connection may be reused (the server sent `Content-Length` and did not ask
/// to close).
fn read_response(stream: &mut TcpStream) -> std::io::Result<(Response, bool)> {
    // Protocol violations in a delivered response are `InvalidData`
    // (classified permanent — retrying cannot fix a garbled server); an
    // early close is `UnexpectedEof` (transient — classic restart/reset).
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let eof = |msg: &str| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, msg.to_string());

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_RESPONSE_HEAD {
            return Err(bad("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(eof("connection closed before response"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length: Option<usize> = None;
    let mut close = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?,
                );
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }

    let mut body = buf[head_end + 4..].to_vec();
    match content_length {
        Some(len) => {
            while body.len() < len {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(eof("connection closed mid-body"));
                }
                body.extend_from_slice(&chunk[..n]);
            }
            body.truncate(len);
        }
        None => {
            // No framing: drain to EOF, which forfeits reuse.
            stream.read_to_end(&mut body)?;
            close = true;
        }
    }
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF8 body"))?;
    Ok((Response { status, body }, !close))
}

impl StoreBackend for RemoteBackend {
    fn describe(&self) -> String {
        format!("remote pmlp-serve at http://{}", self.authority)
    }

    fn resilience(&self) -> Option<ResilienceStats> {
        Some(ResilienceStats {
            remote_retries: self.counters.retries.load(Ordering::Relaxed),
            transient_errors: self.counters.transient_errors.load(Ordering::Relaxed),
            permanent_errors: self.counters.permanent_errors.load(Ordering::Relaxed),
            ..ResilienceStats::default()
        })
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        let path = Self::records_path(name, fingerprint);
        let response = self.request("GET", &path, "")?;
        if response.status != 200 {
            return Err(self.reject(format!(
                "remote store: scan {path} returned HTTP {}",
                response.status
            )));
        }
        let mut lines = response.body.lines();
        match lines.next() {
            Some(header) if header_matches(header, fingerprint) => {}
            _ => {
                return Err(self.reject(format!(
                    "remote store: scan {path} returned a foreign or versionless header"
                )))
            }
        }
        let mut outcome = ScanOutcome::default();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_record_line(line) {
                Ok(record) => outcome.records.push(record),
                Err(_) => outcome.dropped += 1,
            }
        }
        Ok(outcome)
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        self.append_batch(name, fingerprint, std::slice::from_ref(record))
    }

    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        if records.is_empty() {
            return Ok(());
        }
        let path = Self::records_path(name, fingerprint);
        let mut body = String::new();
        for record in records {
            body.push_str(&record_line(record));
            body.push('\n');
        }
        let response = self.request("POST", &path, &body)?;
        if response.status != 204 {
            return Err(self.reject(format!(
                "remote store: append {path} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        check_doc_name(name)?;
        let response = self.request("GET", &format!("/v1/docs/{name}"), "")?;
        match response.status {
            200 => Ok(Some(response.body)),
            404 => Ok(None),
            status => Err(self.reject(format!(
                "remote store: get doc {name} returned HTTP {status}"
            ))),
        }
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        let response = self.request("PUT", &format!("/v1/docs/{name}"), contents)?;
        if response.status != 204 {
            return Err(self.reject(format!(
                "remote store: put doc {name} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        let response = self.request("DELETE", &format!("/v1/docs/{name}"), "")?;
        if response.status != 204 && response.status != 404 {
            return Err(self.reject(format!(
                "remote store: delete doc {name} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }

    fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        // An empty prefix lists everything; anything else must be a safe
        // document-name fragment (it travels as a URL query value verbatim).
        if !prefix.is_empty() {
            check_doc_name(prefix)?;
        }
        let response = self.request("GET", &format!("/v1/docs?prefix={prefix}"), "")?;
        if response.status != 200 {
            return Err(self.reject(format!(
                "remote store: list docs `{prefix}` returned HTTP {}",
                response.status
            )));
        }
        let parsed = serde::json::parse(&response.body).map_err(|e| {
            self.reject(format!(
                "remote store: list docs `{prefix}` returned unparseable JSON: {e}"
            ))
        })?;
        let names: Vec<String> = serde::Deserialize::deserialize_value(&parsed).map_err(|e| {
            self.reject(format!(
                "remote store: list docs `{prefix}` returned a non-array body: {e}"
            ))
        })?;
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_http_and_bare_authorities() {
        assert_eq!(
            RemoteBackend::new("http://127.0.0.1:7878")
                .unwrap()
                .authority(),
            "127.0.0.1:7878"
        );
        assert_eq!(
            RemoteBackend::new("http://localhost:8080/")
                .unwrap()
                .authority(),
            "localhost:8080"
        );
        assert_eq!(
            RemoteBackend::new("127.0.0.1:7878").unwrap().authority(),
            "127.0.0.1:7878"
        );
        assert!(RemoteBackend::new("https://x:1").is_err());
        assert!(RemoteBackend::new("http://").is_err());
        assert!(RemoteBackend::new("http://host:1/path").is_err());
    }

    #[test]
    fn url_userinfo_carries_the_bearer_token() {
        let client = RemoteBackend::new("http://s3cr3t@127.0.0.1:7878").unwrap();
        assert_eq!(client.authority(), "127.0.0.1:7878");
        assert_eq!(client.token(), Some("s3cr3t"));
        // with_token overrides the URL's token.
        let client = client.with_token("newer");
        assert_eq!(client.token(), Some("newer"));
        // No token: none parsed.
        assert_eq!(
            RemoteBackend::new("http://127.0.0.1:7878").unwrap().token(),
            None
        );
    }

    #[test]
    fn a_dead_server_errors_instead_of_hanging() {
        // Nothing listens on this port; the client must fail fast (the
        // tiered store converts this error into local-only degradation).
        let client = RemoteBackend::new("http://127.0.0.1:1")
            .unwrap()
            .with_timeout(Duration::from_millis(200))
            .with_retry_policy(RetryPolicy::none());
        assert!(!client.ping());
        assert!(client.scan("seeds", 1).is_err());
        assert!(client.get_doc("m.json").is_err());
    }

    #[test]
    fn transient_failures_are_retried_and_counted() {
        let client = RemoteBackend::new("http://127.0.0.1:1")
            .unwrap()
            .with_timeout(Duration::from_millis(200))
            .with_retry_policy(RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
            });
        assert!(client.scan("seeds", 1).is_err());
        let stats = client.resilience().unwrap();
        assert_eq!(stats.remote_retries, 2, "two retries after the first try");
        assert_eq!(stats.transient_errors, 1, "one op ultimately failed");
        assert_eq!(stats.permanent_errors, 0);
    }

    /// A one-shot server that answers each accepted connection with the next
    /// canned response (closing every connection), then exits.
    fn canned_server(
        responses: Vec<&'static str>,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for response in responses {
                let (mut stream, _) = listener.accept().unwrap();
                // Read until the head terminator so the client's write lands.
                let mut seen: Vec<u8> = Vec::new();
                let mut chunk = [0u8; 1024];
                while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => seen.extend_from_slice(&chunk[..n]),
                    }
                }
                stream.write_all(response.as_bytes()).ok();
            }
        });
        (addr, handle)
    }

    #[test]
    fn a_5xx_is_retried_until_the_server_recovers() {
        let (addr, handle) = canned_server(vec![
            "HTTP/1.1 503 Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            "HTTP/1.1 204 No Content\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        ]);
        let client = RemoteBackend::new(&format!("http://{addr}"))
            .unwrap()
            .with_timeout(Duration::from_millis(500))
            .with_retry_policy(RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
            });
        client
            .put_doc("probe.json", "{}")
            .expect("second attempt must succeed");
        let stats = client.resilience().unwrap();
        assert_eq!(stats.remote_retries, 1, "exactly one retry");
        assert_eq!(stats.transient_errors, 0, "the op succeeded in the end");
        handle.join().unwrap();
    }

    #[test]
    fn a_4xx_is_permanent_and_never_retried() {
        let (addr, handle) = canned_server(vec![
            "HTTP/1.1 401 Unauthorized\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        ]);
        let client = RemoteBackend::new(&format!("http://{addr}"))
            .unwrap()
            .with_timeout(Duration::from_millis(500));
        assert!(client.put_doc("probe.json", "{}").is_err());
        let stats = client.resilience().unwrap();
        assert_eq!(stats.remote_retries, 0, "4xx must not retry");
        assert_eq!(stats.permanent_errors, 1);
        handle.join().unwrap();
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let client = RemoteBackend::new("http://127.0.0.1:1").unwrap();
        let a = client.backoff_delay("/v1/records/seeds/0", 1);
        let b = client.backoff_delay("/v1/records/seeds/0", 1);
        assert_eq!(a, b, "jitter must be deterministic");
        let late = client.backoff_delay("/v1/records/seeds/0", 12);
        assert!(late <= client.retry.max_backoff + client.retry.base_backoff);
        assert!(client.backoff_delay("/v1/records/seeds/0", 2) >= client.retry.base_backoff);
    }
}
