//! HTTP/1.1 client backend for a `pmlp-serve` evaluation-cache server.
//!
//! The wire format is the store's own sealed-envelope JSONL: a record scan
//! response is byte-compatible with a local record log (header line bound to
//! the baseline fingerprint, then one record per line), so the client reuses
//! the same corruption-tolerant parsing as the local tier. Endpoints:
//!
//! | Method + path | Meaning |
//! |---------------|---------|
//! | `GET /v1/records/{name}/{fp}` | scan one record log |
//! | `POST /v1/records/{name}/{fp}` | append record line(s) |
//! | `GET /v1/docs/{name}` | read a document (404 = absent) |
//! | `PUT /v1/docs/{name}` | write a document |
//! | `DELETE /v1/docs/{name}` | delete a document |
//! | `GET /v1/healthz` | liveness probe |
//! | `GET /v1/stats` | server counters (JSON) |
//!
//! The client is deliberately dependency-free (`std::net` only), opens one
//! connection per request (`Connection: close`) and applies conservative
//! timeouts so a dead server degrades a [`TieredStore`](crate::store::TieredStore)
//! instead of hanging a search.

use super::backend::{check_doc_name, sanitize_name, ScanOutcome, StoreBackend};
use super::{header_matches, hex, parse_record_line, record_line};
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

fn store_err(context: String) -> CoreError {
    CoreError::Store { context }
}

/// One parsed HTTP response.
#[derive(Debug)]
struct Response {
    status: u16,
    body: String,
}

/// The remote tier: an HTTP client bound to one `pmlp-serve` base URL.
#[derive(Debug, Clone)]
pub struct RemoteBackend {
    /// `host:port` the server listens on.
    authority: String,
    /// Per-request connect/read/write timeout.
    timeout: Duration,
}

impl RemoteBackend {
    /// Creates a client for `url` (`http://host:port`, a trailing slash is
    /// tolerated; `https` is not supported — the store speaks plain HTTP on a
    /// trusted network, typically loopback or a cluster-internal address).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] for unsupported schemes or a malformed
    /// authority. The server is *not* contacted — a client can be constructed
    /// before its server starts.
    pub fn new(url: &str) -> Result<Self, CoreError> {
        let trimmed = url.trim();
        let rest = match trimmed.split_once("://") {
            Some(("http", rest)) => rest,
            Some((scheme, _)) => {
                return Err(store_err(format!(
                    "remote store: unsupported scheme `{scheme}` in `{url}` (only http)"
                )))
            }
            None => trimmed,
        };
        let authority = rest.trim_end_matches('/');
        if authority.is_empty() || authority.contains('/') {
            return Err(store_err(format!("remote store: malformed URL `{url}`")));
        }
        Ok(RemoteBackend {
            authority: authority.to_string(),
            timeout: Duration::from_secs(10),
        })
    }

    /// Overrides the per-request timeout (connect, read and write).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The `host:port` this client talks to.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    fn connect(&self) -> Result<TcpStream, CoreError> {
        let addrs: Vec<SocketAddr> = self
            .authority
            .to_socket_addrs()
            .map_err(|e| store_err(format!("remote store: resolve {}: {e}", self.authority)))?
            .collect();
        if addrs.is_empty() {
            return Err(store_err(format!(
                "remote store: no address for {}",
                self.authority
            )));
        }
        // Try every resolved address (a dual-stack `localhost` often lists
        // ::1 first while the server bound 127.0.0.1 — the IPv4 attempt must
        // still go through).
        let mut last_err = None;
        for addr in &addrs {
            match TcpStream::connect_timeout(addr, self.timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeout)).ok();
                    stream.set_write_timeout(Some(self.timeout)).ok();
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(store_err(format!(
            "remote store: connect {}: {}",
            self.authority,
            last_err.expect("at least one address was tried")
        )))
    }

    /// One request/response round trip.
    fn request(&self, method: &str, path: &str, body: &str) -> Result<Response, CoreError> {
        let mut stream = self.connect()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.authority,
            body.len(),
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .map_err(|e| store_err(format!("remote store: send {method} {path}: {e}")))?;

        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| store_err(format!("remote store: read {method} {path}: {e}")))?;
        let text = String::from_utf8(raw)
            .map_err(|_| store_err(format!("remote store: non-UTF8 response to {path}")))?;
        let (head, body) = text
            .split_once("\r\n\r\n")
            .ok_or_else(|| store_err(format!("remote store: malformed response to {path}")))?;
        let status: u16 = head
            .lines()
            .next()
            .and_then(|line| line.split_whitespace().nth(1))
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| store_err(format!("remote store: bad status line for {path}")))?;
        Ok(Response {
            status,
            body: body.to_string(),
        })
    }

    fn records_path(name: &str, fingerprint: u64) -> String {
        format!("/v1/records/{}/{}", sanitize_name(name), hex(fingerprint))
    }

    /// Liveness probe: `true` when the server answers `GET /v1/healthz`.
    pub fn ping(&self) -> bool {
        self.request("GET", "/v1/healthz", "")
            .map(|r| r.status == 200)
            .unwrap_or(false)
    }

    /// Fetches the server's `/v1/stats` counters as raw JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the server is unreachable or answers
    /// with a non-200 status.
    pub fn stats(&self) -> Result<String, CoreError> {
        let response = self.request("GET", "/v1/stats", "")?;
        if response.status != 200 {
            return Err(store_err(format!(
                "remote store: stats returned HTTP {}",
                response.status
            )));
        }
        Ok(response.body)
    }
}

impl StoreBackend for RemoteBackend {
    fn describe(&self) -> String {
        format!("remote pmlp-serve at http://{}", self.authority)
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        let path = Self::records_path(name, fingerprint);
        let response = self.request("GET", &path, "")?;
        if response.status != 200 {
            return Err(store_err(format!(
                "remote store: scan {path} returned HTTP {}",
                response.status
            )));
        }
        let mut lines = response.body.lines();
        match lines.next() {
            Some(header) if header_matches(header, fingerprint) => {}
            _ => {
                return Err(store_err(format!(
                    "remote store: scan {path} returned a foreign or versionless header"
                )))
            }
        }
        let mut outcome = ScanOutcome::default();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_record_line(line) {
                Ok(record) => outcome.records.push(record),
                Err(_) => outcome.dropped += 1,
            }
        }
        Ok(outcome)
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        let path = Self::records_path(name, fingerprint);
        let response = self.request("POST", &path, &record_line(record))?;
        if response.status != 204 {
            return Err(store_err(format!(
                "remote store: append {path} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        check_doc_name(name)?;
        let response = self.request("GET", &format!("/v1/docs/{name}"), "")?;
        match response.status {
            200 => Ok(Some(response.body)),
            404 => Ok(None),
            status => Err(store_err(format!(
                "remote store: get doc {name} returned HTTP {status}"
            ))),
        }
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        let response = self.request("PUT", &format!("/v1/docs/{name}"), contents)?;
        if response.status != 204 {
            return Err(store_err(format!(
                "remote store: put doc {name} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        let response = self.request("DELETE", &format!("/v1/docs/{name}"), "")?;
        if response.status != 204 && response.status != 404 {
            return Err(store_err(format!(
                "remote store: delete doc {name} returned HTTP {}",
                response.status
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_http_and_bare_authorities() {
        assert_eq!(
            RemoteBackend::new("http://127.0.0.1:7878")
                .unwrap()
                .authority(),
            "127.0.0.1:7878"
        );
        assert_eq!(
            RemoteBackend::new("http://localhost:8080/")
                .unwrap()
                .authority(),
            "localhost:8080"
        );
        assert_eq!(
            RemoteBackend::new("127.0.0.1:7878").unwrap().authority(),
            "127.0.0.1:7878"
        );
        assert!(RemoteBackend::new("https://x:1").is_err());
        assert!(RemoteBackend::new("http://").is_err());
        assert!(RemoteBackend::new("http://host:1/path").is_err());
    }

    #[test]
    fn a_dead_server_errors_instead_of_hanging() {
        // Nothing listens on this port; the client must fail fast (the
        // tiered store converts this error into local-only degradation).
        let client = RemoteBackend::new("http://127.0.0.1:1")
            .unwrap()
            .with_timeout(Duration::from_millis(200));
        assert!(!client.ping());
        assert!(client.scan("seeds", 1).is_err());
        assert!(client.get_doc("m.json").is_err());
    }
}
