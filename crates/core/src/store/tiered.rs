//! Local-over-remote composition: the local tier is a write-through cache of
//! a shared remote evaluation-cache server.
//!
//! * **scan** replays the local tier, then merges in every remote record the
//!   local tier is missing — and writes those through to the local tier, so
//!   the cache fills itself on first contact;
//! * **append** always lands locally first (the durable tier a crashed
//!   campaign resumes from), then on the remote tier so other workers
//!   inherit it;
//! * **documents** (checkpoints, completion markers) read local-first with a
//!   remote fallback (cached locally on hit) and write through to both.
//!
//! # Circuit breaker and replay journal
//!
//! The remote tier is optional at runtime, guarded by a circuit breaker:
//!
//! ```text
//!            consecutive failures ≥ threshold
//!   CLOSED ──────────────────────────────────▶ OPEN
//!     ▲                                          │ cooldown elapses
//!     │ probe succeeds                           ▼
//!     └────────────────────────────────────── HALF-OPEN
//!                 probe fails ──▶ back to OPEN
//! ```
//!
//! While the breaker is **open** no remote traffic happens at all — a killed
//! server degrades a running campaign to exactly the behavior of a local
//! store, it never fails it. Once the cooldown elapses the next operation is
//! allowed through as a **half-open probe**: success closes the breaker
//! (the server rejoined, e.g. after a restart), failure re-opens it for
//! another cooldown.
//!
//! Writes attempted while the remote is unreachable are **journaled**
//! (appends, document puts and removes, in order) and replayed the moment a
//! probe succeeds, so a server that was down for a stretch of the campaign
//! still ends up with every record — nothing is silently lost. The journal
//! is bounded; in an extended outage the oldest entries are evicted (and
//! counted) — the local tier remains the durable copy of everything.

use super::backend::{ResilienceStats, ScanOutcome, StoreBackend};
use crate::engine::EvalKey;
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Counters of one tiered store's remote traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TieredStats {
    /// Records fetched from the remote tier that the local tier was missing
    /// (each was written through to the local cache).
    pub remote_fills: usize,
    /// Records appended to the remote tier (including journal replays).
    pub remote_appends: usize,
    /// Remote operations that failed. While the breaker is open no traffic
    /// is attempted, so a dead server costs one failure per probe cycle, not
    /// one per operation.
    pub remote_failures: usize,
}

/// Circuit-breaker tuning of a [`TieredStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive remote failures that open the breaker. The remote client
    /// already retries transient errors internally, so one surfaced failure
    /// means a whole retry budget was exhausted — the default opens
    /// immediately.
    pub failure_threshold: u32,
    /// How long the breaker stays open before the next operation is allowed
    /// through as a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// Most journal entries retained during an outage (an entry is one append
/// batch or one document write). Beyond this the oldest entries are evicted
/// and counted — the local tier still holds every record durably.
const JOURNAL_CAP: usize = 4096;

/// Circuit-breaker state (see the module docs for the transition diagram).
#[derive(Debug, Clone, Copy)]
enum BreakerState {
    /// Remote traffic flows; counts consecutive failures.
    Closed { consecutive_failures: u32 },
    /// Remote traffic shunned until the cooldown deadline.
    Open { until: Instant },
    /// One probe operation is in flight; `since` lets a replacement probe
    /// through if the first one never reports back.
    HalfOpen { since: Instant },
}

/// One write the remote tier missed, replayed in order on reconnect.
#[derive(Debug, Clone)]
enum JournalEntry {
    Append {
        name: String,
        fingerprint: u64,
        records: Vec<EvalRecord>,
    },
    PutDoc {
        name: String,
        contents: String,
    },
    RemoveDoc {
        name: String,
    },
}

impl JournalEntry {
    /// How many records (or documents) this entry carries, for the counters.
    fn record_count(&self) -> usize {
        match self {
            JournalEntry::Append { records, .. } => records.len(),
            JournalEntry::PutDoc { .. } | JournalEntry::RemoveDoc { .. } => 1,
        }
    }
}

/// The two-tier composition: a local write-through cache over a shared
/// remote tier, with a circuit breaker (open / half-open / closed) and a
/// replay journal covering remote outages.
pub struct TieredStore {
    local: Box<dyn StoreBackend>,
    remote: Box<dyn StoreBackend>,
    breaker: Mutex<BreakerState>,
    config: BreakerConfig,
    journal: Mutex<VecDeque<JournalEntry>>,
    warned: AtomicBool,
    remote_fills: AtomicUsize,
    remote_appends: AtomicUsize,
    remote_failures: AtomicUsize,
    breaker_opens: AtomicUsize,
    breaker_recoveries: AtomicUsize,
    journaled_records: AtomicUsize,
    replayed_records: AtomicUsize,
    journal_dropped: AtomicUsize,
}

impl std::fmt::Debug for TieredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field("local", &self.local.describe())
            .field("remote", &self.remote.describe())
            .field("breaker", &*self.breaker.lock().expect("breaker lock"))
            .finish()
    }
}

impl TieredStore {
    /// Composes `local` (write-through cache) over `remote` (shared tier)
    /// with the default breaker tuning.
    pub fn new(local: Box<dyn StoreBackend>, remote: Box<dyn StoreBackend>) -> Self {
        Self::with_breaker(local, remote, BreakerConfig::default())
    }

    /// [`TieredStore::new`] with explicit circuit-breaker tuning.
    pub fn with_breaker(
        local: Box<dyn StoreBackend>,
        remote: Box<dyn StoreBackend>,
        config: BreakerConfig,
    ) -> Self {
        TieredStore {
            local,
            remote,
            breaker: Mutex::new(BreakerState::Closed {
                consecutive_failures: 0,
            }),
            config,
            journal: Mutex::new(VecDeque::new()),
            warned: AtomicBool::new(false),
            remote_fills: AtomicUsize::new(0),
            remote_appends: AtomicUsize::new(0),
            remote_failures: AtomicUsize::new(0),
            breaker_opens: AtomicUsize::new(0),
            breaker_recoveries: AtomicUsize::new(0),
            journaled_records: AtomicUsize::new(0),
            replayed_records: AtomicUsize::new(0),
            journal_dropped: AtomicUsize::new(0),
        }
    }

    /// `true` while the circuit breaker is closed (remote traffic flows).
    /// `false` once the store degraded to local-only — it flips back to
    /// `true` when a half-open probe finds the server again.
    pub fn remote_healthy(&self) -> bool {
        matches!(
            *self.breaker.lock().expect("breaker lock"),
            BreakerState::Closed { .. }
        )
    }

    /// Remote-traffic counters.
    pub fn stats(&self) -> TieredStats {
        TieredStats {
            remote_fills: self.remote_fills.load(Ordering::Relaxed),
            remote_appends: self.remote_appends.load(Ordering::Relaxed),
            remote_failures: self.remote_failures.load(Ordering::Relaxed),
        }
    }

    /// Journal entries currently waiting for the remote to rejoin.
    pub fn journal_len(&self) -> usize {
        self.journal.lock().expect("journal lock").len()
    }

    /// Decides whether this operation may touch the remote tier. Closed:
    /// yes. Open: no, unless the cooldown elapsed — then this operation
    /// becomes the half-open probe. Half-open: no (a probe is in flight),
    /// unless the probe itself went silent for a whole cooldown.
    fn acquire_remote(&self) -> bool {
        let mut state = self.breaker.lock().expect("breaker lock");
        let now = Instant::now();
        match *state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } if now >= until => {
                *state = BreakerState::HalfOpen { since: now };
                true
            }
            BreakerState::Open { .. } => false,
            BreakerState::HalfOpen { since }
                if now.duration_since(since) >= self.config.cooldown =>
            {
                *state = BreakerState::HalfOpen { since: now };
                true
            }
            BreakerState::HalfOpen { .. } => false,
        }
    }

    /// Records a successful remote operation: closes the breaker (a
    /// half-open probe found the server) and replays the journal.
    fn report_remote_success(&self) {
        {
            let mut state = self.breaker.lock().expect("breaker lock");
            match *state {
                BreakerState::Closed {
                    consecutive_failures: 0,
                } => {}
                BreakerState::Closed { .. } => {
                    *state = BreakerState::Closed {
                        consecutive_failures: 0,
                    };
                }
                BreakerState::Open { .. } | BreakerState::HalfOpen { .. } => {
                    *state = BreakerState::Closed {
                        consecutive_failures: 0,
                    };
                    self.breaker_recoveries.fetch_add(1, Ordering::Relaxed);
                    let pending = self.journal_len();
                    eprintln!(
                        "remote store {} rejoined; replaying {pending} journaled write(s)",
                        self.remote.describe()
                    );
                }
            }
        }
        self.drain_journal();
    }

    /// Records a failed remote operation: counts it and opens the breaker
    /// once the consecutive-failure threshold is reached (a failed half-open
    /// probe re-opens immediately). Warns once per store instance.
    fn report_remote_failure(&self, what: &str, err: &CoreError) {
        self.remote_failures.fetch_add(1, Ordering::Relaxed);
        let opened = {
            let mut state = self.breaker.lock().expect("breaker lock");
            let now = Instant::now();
            match *state {
                BreakerState::Closed {
                    consecutive_failures,
                } if consecutive_failures + 1 < self.config.failure_threshold => {
                    *state = BreakerState::Closed {
                        consecutive_failures: consecutive_failures + 1,
                    };
                    false
                }
                _ => {
                    *state = BreakerState::Open {
                        until: now + self.config.cooldown,
                    };
                    self.breaker_opens.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
        };
        if opened && !self.warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: remote store {} failed during {what} ({err}); circuit breaker open — \
                 continuing on the local write-through cache, journaling writes, probing again \
                 after {:?}",
                self.remote.describe(),
                self.config.cooldown
            );
        }
    }

    /// Queues a write the remote tier missed, evicting (and counting) the
    /// oldest entry when the journal is full.
    fn journal_push(&self, entry: JournalEntry) {
        self.journaled_records
            .fetch_add(entry.record_count(), Ordering::Relaxed);
        let mut journal = self.journal.lock().expect("journal lock");
        if journal.len() >= JOURNAL_CAP {
            if let Some(evicted) = journal.pop_front() {
                self.journal_dropped
                    .fetch_add(evicted.record_count(), Ordering::Relaxed);
            }
        }
        journal.push_back(entry);
    }

    /// Replays journaled writes against the (just rejoined) remote tier in
    /// order. A replay failure puts the entry back at the front and re-opens
    /// the breaker; the rest of the journal waits for the next probe.
    fn drain_journal(&self) {
        loop {
            let entry = {
                let mut journal = self.journal.lock().expect("journal lock");
                match journal.pop_front() {
                    Some(entry) => entry,
                    None => return,
                }
            };
            let result = match &entry {
                JournalEntry::Append {
                    name,
                    fingerprint,
                    records,
                } => self.remote.append_batch(name, *fingerprint, records),
                JournalEntry::PutDoc { name, contents } => self.remote.put_doc(name, contents),
                JournalEntry::RemoveDoc { name } => self.remote.remove_doc(name),
            };
            match result {
                Ok(()) => {
                    let count = entry.record_count();
                    self.replayed_records.fetch_add(count, Ordering::Relaxed);
                    if let JournalEntry::Append { .. } = entry {
                        self.remote_appends.fetch_add(count, Ordering::Relaxed);
                    }
                }
                Err(err) => {
                    self.journal.lock().expect("journal lock").push_front(entry);
                    self.report_remote_failure("journal replay", &err);
                    return;
                }
            }
        }
    }

    /// Runs a remote write under the breaker: skipped-or-failed writes are
    /// journaled for replay (never lost), successes close the breaker and
    /// drain the journal. `entry` is built lazily — the success path never
    /// clones the records.
    fn remote_write(
        &self,
        what: &str,
        op: impl FnOnce() -> Result<(), CoreError>,
        entry: impl FnOnce() -> JournalEntry,
    ) {
        if !self.acquire_remote() {
            self.journal_push(entry());
            return;
        }
        match op() {
            Ok(()) => self.report_remote_success(),
            Err(err) => {
                self.journal_push(entry());
                self.report_remote_failure(what, &err);
            }
        }
    }
}

impl StoreBackend for TieredStore {
    fn describe(&self) -> String {
        format!(
            "tiered ({} over {})",
            self.local.describe(),
            self.remote.describe()
        )
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        // The local tier is authoritative for this process: its failure is a
        // real error. The remote tier adds missing records — and upgrades a
        // local record whose finalization artifacts were lost (e.g. a blob
        // damaged by a crash) when the server still has the intact copy.
        let mut outcome = self.local.scan(name, fingerprint)?;
        if self.acquire_remote() {
            match self.remote.scan(name, fingerprint) {
                Ok(remote) => {
                    let have: HashMap<EvalKey, usize> = outcome
                        .records
                        .iter()
                        .enumerate()
                        .map(|(i, r)| (r.key, i))
                        .collect();
                    for record in remote.records {
                        match have.get(&record.key) {
                            Some(&i) => {
                                if outcome.records[i].artifacts.is_none()
                                    && record.artifacts.is_some()
                                {
                                    // Appending locally makes the upgrade
                                    // durable: last write wins on replay.
                                    self.local.append(name, fingerprint, &record)?;
                                    self.remote_fills.fetch_add(1, Ordering::Relaxed);
                                    outcome.records[i] = record;
                                }
                            }
                            None => {
                                // Write-through cache fill: a record seen
                                // remotely is replayed locally on the next
                                // (offline) run too.
                                self.local.append(name, fingerprint, &record)?;
                                self.remote_fills.fetch_add(1, Ordering::Relaxed);
                                outcome.records.push(record);
                            }
                        }
                    }
                    self.report_remote_success();
                }
                Err(err) => self.report_remote_failure("scan", &err),
            }
        }
        Ok(outcome)
    }

    fn get(
        &self,
        name: &str,
        fingerprint: u64,
        key: &EvalKey,
    ) -> Result<Option<EvalRecord>, CoreError> {
        if let Some(record) = self.local.get(name, fingerprint, key)? {
            return Ok(Some(record));
        }
        if self.acquire_remote() {
            match self.remote.get(name, fingerprint, key) {
                Ok(Some(record)) => {
                    self.local.append(name, fingerprint, &record)?;
                    self.remote_fills.fetch_add(1, Ordering::Relaxed);
                    self.report_remote_success();
                    return Ok(Some(record));
                }
                Ok(None) => self.report_remote_success(),
                Err(err) => self.report_remote_failure("get", &err),
            }
        }
        Ok(None)
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        self.local.append(name, fingerprint, record)?;
        self.remote_write(
            "append",
            || {
                self.remote.append(name, fingerprint, record)?;
                self.remote_appends.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
            || JournalEntry::Append {
                name: name.to_string(),
                fingerprint,
                records: vec![record.clone()],
            },
        );
        Ok(())
    }

    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        if records.is_empty() {
            return Ok(());
        }
        self.local.append_batch(name, fingerprint, records)?;
        self.remote_write(
            "append_batch",
            || {
                self.remote.append_batch(name, fingerprint, records)?;
                self.remote_appends
                    .fetch_add(records.len(), Ordering::Relaxed);
                Ok(())
            },
            || JournalEntry::Append {
                name: name.to_string(),
                fingerprint,
                records: records.to_vec(),
            },
        );
        Ok(())
    }

    fn compact(&self, name: &str, fingerprint: u64) -> Result<usize, CoreError> {
        // Compaction is a local storage concern; the server compacts its own
        // tier on its own schedule.
        self.local.compact(name, fingerprint)
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        if let Some(doc) = self.local.get_doc(name)? {
            return Ok(Some(doc));
        }
        if self.acquire_remote() {
            match self.remote.get_doc(name) {
                Ok(Some(doc)) => {
                    self.local.put_doc(name, &doc)?;
                    self.report_remote_success();
                    return Ok(Some(doc));
                }
                Ok(None) => self.report_remote_success(),
                Err(err) => self.report_remote_failure("get_doc", &err),
            }
        }
        Ok(None)
    }

    fn get_doc_fresh(&self, name: &str) -> Result<Option<String>, CoreError> {
        // Contended coordination documents (leases) must reflect the shared
        // truth: consult the remote tier FIRST — another worker's claim lives
        // there, never in this worker's local cache. The remote answer is
        // authoritative either way (including `None`: a released lease must
        // not be resurrected from a stale local copy). Only when the remote
        // is unreachable does the read degrade to the local tier, preserving
        // offline single-worker operation.
        if self.acquire_remote() {
            match self.remote.get_doc(name) {
                Ok(doc) => {
                    self.report_remote_success();
                    return Ok(doc);
                }
                Err(err) => self.report_remote_failure("get_doc_fresh", &err),
            }
        }
        self.local.get_doc(name)
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        self.local.put_doc(name, contents)?;
        self.remote_write(
            "put_doc",
            || self.remote.put_doc(name, contents),
            || JournalEntry::PutDoc {
                name: name.to_string(),
                contents: contents.to_string(),
            },
        );
        Ok(())
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        self.local.remove_doc(name)?;
        self.remote_write(
            "remove_doc",
            || self.remote.remove_doc(name),
            || JournalEntry::RemoveDoc {
                name: name.to_string(),
            },
        );
        Ok(())
    }

    fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        // Discovery must see *both* tiers: another worker's island fronts and
        // leases live on the remote tier only, this worker's journaled writes
        // may live on the local tier only. Merge, dedup, sort. A dead remote
        // degrades the listing to local-only — same contract as get_doc.
        let mut names = self.local.list_docs(prefix)?;
        if self.acquire_remote() {
            match self.remote.list_docs(prefix) {
                Ok(remote_names) => {
                    names.extend(remote_names);
                    self.report_remote_success();
                }
                Err(err) => self.report_remote_failure("list_docs", &err),
            }
        }
        names.sort();
        names.dedup();
        Ok(names)
    }

    fn record_path(&self, name: &str, fingerprint: u64) -> Option<std::path::PathBuf> {
        self.local.record_path(name, fingerprint)
    }

    fn resilience(&self) -> Option<ResilienceStats> {
        let own = ResilienceStats {
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_recoveries: self.breaker_recoveries.load(Ordering::Relaxed),
            journaled_records: self.journaled_records.load(Ordering::Relaxed),
            replayed_records: self.replayed_records.load(Ordering::Relaxed),
            journal_dropped: self.journal_dropped.load(Ordering::Relaxed),
            ..ResilienceStats::default()
        };
        let remote = self.remote.resilience().unwrap_or_default();
        let local = self.local.resilience().unwrap_or_default();
        Some(own.merge(remote).merge(local))
    }

    fn flush(&self) -> Result<(), CoreError> {
        self.local.flush()?;
        // An explicit flush is a deliberate synchronization point (end of a
        // campaign, server shutdown): give journaled writes one last chance
        // to reach the remote tier even if the breaker's cooldown has not
        // elapsed, by forcing the next replay attempt into a half-open
        // probe. Remote failure stays non-fatal — the records are already
        // durable in the local tier, and the journal keeps them for any
        // later probe.
        if self.journal_len() > 0 {
            {
                let mut state = self.breaker.lock().expect("breaker lock");
                if !matches!(*state, BreakerState::Closed { .. }) {
                    *state = BreakerState::HalfOpen {
                        since: Instant::now(),
                    };
                }
            }
            self.drain_journal();
            if self.journal_len() == 0 {
                self.report_remote_success();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::fault::FaultBackend;
    use super::super::memory::MemoryBackend;
    use super::super::tests::record;
    use super::*;
    use std::sync::Arc;

    /// A backend that fails every operation — a dead server stand-in.
    #[derive(Debug)]
    struct DeadBackend;

    impl StoreBackend for DeadBackend {
        fn describe(&self) -> String {
            "dead backend".into()
        }
        fn scan(&self, _: &str, _: u64) -> Result<ScanOutcome, CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
        fn append(&self, _: &str, _: u64, _: &EvalRecord) -> Result<(), CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
        fn get_doc(&self, _: &str) -> Result<Option<String>, CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
        fn put_doc(&self, _: &str, _: &str) -> Result<(), CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
        fn remove_doc(&self, _: &str) -> Result<(), CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
    }

    #[test]
    fn scan_merges_remote_records_and_fills_the_local_cache() {
        let local = MemoryBackend::new();
        let remote = MemoryBackend::new();
        let shared = record(3, 0.8, 40.0);
        let remote_only = record(4, 0.9, 50.0);
        local.append("Seeds", 1, &shared).unwrap();
        remote.append("Seeds", 1, &shared).unwrap();
        remote.append("Seeds", 1, &remote_only).unwrap();

        let tiered = TieredStore::new(Box::new(local), Box::new(remote));
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert_eq!(outcome.records, vec![shared.clone(), remote_only.clone()]);
        assert_eq!(tiered.stats().remote_fills, 1);

        // The fill is durable: a second scan finds it locally.
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(tiered.stats().remote_fills, 1, "no re-fill");
    }

    #[test]
    fn scan_upgrades_artifactless_local_records_from_the_remote() {
        use crate::store::EvalArtifacts;
        let local = MemoryBackend::new();
        let remote = MemoryBackend::new();
        let bare = record(3, 0.8, 40.0); // artifacts: None (e.g. damaged blob)
        let mut rich = bare.clone();
        rich.artifacts = Some(EvalArtifacts {
            layers: Vec::new(),
            sharing: pmlp_hw::SharingStrategy::None,
        });
        local.append("Seeds", 1, &bare).unwrap();
        remote.append("Seeds", 1, &rich).unwrap();

        let tiered = TieredStore::new(Box::new(local), Box::new(remote));
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert_eq!(outcome.records, vec![rich.clone()], "remote artifacts win");
        assert_eq!(tiered.stats().remote_fills, 1);

        // The upgrade is durable on the local tier (last write wins), so the
        // next scan needs no re-fill.
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert!(outcome
            .records
            .iter()
            .any(|r| r.key == rich.key && r.artifacts.is_some()));
        assert_eq!(tiered.stats().remote_fills, 1, "no re-fill");
    }

    #[test]
    fn appends_write_through_to_both_tiers() {
        let tiered = TieredStore::new(
            Box::new(MemoryBackend::new()),
            Box::new(MemoryBackend::new()),
        );
        let r = record(3, 0.8, 40.0);
        tiered.append("Seeds", 1, &r).unwrap();
        assert_eq!(tiered.stats().remote_appends, 1);
        assert_eq!(
            tiered.local.scan("Seeds", 1).unwrap().records,
            vec![r.clone()]
        );
        assert_eq!(tiered.remote.scan("Seeds", 1).unwrap().records, vec![r]);
    }

    #[test]
    fn a_dead_remote_degrades_to_local_only_without_failing() {
        let local = MemoryBackend::new();
        let r = record(3, 0.8, 40.0);
        local.append("Seeds", 1, &r).unwrap();
        let tiered = TieredStore::new(Box::new(local), Box::new(DeadBackend));

        // Scan survives, opens the breaker, serves local records.
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert_eq!(outcome.records, vec![r.clone()]);
        assert!(!tiered.remote_healthy());

        // Later operations never touch the dead tier while the breaker's
        // cooldown (default 1s, far beyond this test) is pending — but their
        // writes are journaled for replay instead of being lost.
        tiered.append("Seeds", 1, &record(4, 0.9, 50.0)).unwrap();
        tiered.put_doc("m.json", "body").unwrap();
        assert_eq!(tiered.get_doc("m.json").unwrap().as_deref(), Some("body"));
        tiered.remove_doc("m.json").unwrap();
        assert_eq!(
            tiered.stats().remote_failures,
            1,
            "exactly one probe failed"
        );
        assert_eq!(tiered.journal_len(), 3, "append + put_doc + remove_doc");
        let resilience = tiered.resilience().unwrap();
        assert_eq!(resilience.breaker_opens, 1);
        assert_eq!(resilience.journaled_records, 3);
        assert_eq!(resilience.replayed_records, 0);
    }

    #[test]
    fn a_recovered_remote_is_rejoined_and_the_journal_replays_in_order() {
        let remote_inner = Arc::new(MemoryBackend::new());
        let remote = FaultBackend::new(Box::new(Arc::clone(&remote_inner)));
        remote.set_down(true);
        let remote = Arc::new(remote);
        let tiered = TieredStore::with_breaker(
            Box::new(MemoryBackend::new()),
            Box::new(Arc::clone(&remote)),
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::ZERO,
            },
        );

        // Writes during the outage land locally and journal for the remote.
        let a = record(3, 0.8, 40.0);
        let b = record(4, 0.9, 50.0);
        tiered.append("Seeds", 1, &a).unwrap();
        tiered
            .append_batch("Seeds", 1, std::slice::from_ref(&b))
            .unwrap();
        tiered.put_doc("marker.json", "done").unwrap();
        assert!(!tiered.remote_healthy());
        assert_eq!(tiered.journal_len(), 3);
        assert_eq!(remote_inner.record_count(), 0, "server saw nothing yet");

        // Server comes back; the next operation is the half-open probe.
        // Cooldown is zero, so it goes through immediately, succeeds, closes
        // the breaker and replays the journal in order.
        remote.set_down(false);
        let c = record(5, 0.7, 30.0);
        tiered.append("Seeds", 1, &c).unwrap();
        assert!(tiered.remote_healthy(), "breaker must close on success");
        assert_eq!(tiered.journal_len(), 0, "journal fully replayed");
        let server_records = remote_inner.scan("Seeds", 1).unwrap().records;
        let keys: Vec<_> = server_records.iter().map(|r| r.key).collect();
        assert!(keys.contains(&a.key) && keys.contains(&b.key) && keys.contains(&c.key));
        assert_eq!(
            remote_inner.get_doc("marker.json").unwrap().as_deref(),
            Some("done")
        );
        let resilience = tiered.resilience().unwrap();
        assert!(resilience.breaker_opens >= 1);
        assert_eq!(resilience.breaker_recoveries, 1);
        assert_eq!(resilience.journaled_records, 3);
        assert_eq!(resilience.replayed_records, 3);
    }

    #[test]
    fn a_failed_probe_reopens_the_breaker_and_keeps_the_journal() {
        let remote = Arc::new(FaultBackend::new(Box::new(MemoryBackend::new())));
        remote.set_down(true);
        let tiered = TieredStore::with_breaker(
            Box::new(MemoryBackend::new()),
            Box::new(Arc::clone(&remote)),
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::ZERO,
            },
        );
        tiered.append("Seeds", 1, &record(3, 0.8, 40.0)).unwrap();
        assert!(!tiered.remote_healthy());
        // Still down: every probe fails, the journal never shrinks (the
        // failed probe's own append joins it instead).
        tiered.append("Seeds", 1, &record(4, 0.9, 50.0)).unwrap();
        assert!(!tiered.remote_healthy());
        assert_eq!(tiered.journal_len(), 2);
        assert!(tiered.resilience().unwrap().breaker_opens >= 2);
    }

    #[test]
    fn consecutive_failure_threshold_keeps_the_breaker_closed_early() {
        let remote = Arc::new(FaultBackend::new(Box::new(MemoryBackend::new())));
        remote.set_down(true);
        let tiered = TieredStore::with_breaker(
            Box::new(MemoryBackend::new()),
            Box::new(Arc::clone(&remote)),
            BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(60),
            },
        );
        tiered.append("Seeds", 1, &record(3, 0.8, 40.0)).unwrap();
        assert!(tiered.remote_healthy(), "1 failure < threshold 3");
        tiered.append("Seeds", 1, &record(4, 0.8, 40.0)).unwrap();
        assert!(tiered.remote_healthy(), "2 failures < threshold 3");
        tiered.append("Seeds", 1, &record(5, 0.8, 40.0)).unwrap();
        assert!(!tiered.remote_healthy(), "3rd failure opens the breaker");
        // A success in between resets the count.
        assert_eq!(tiered.resilience().unwrap().breaker_opens, 1);
    }

    #[test]
    fn docs_fall_back_to_the_remote_tier_and_cache_locally() {
        let local = MemoryBackend::new();
        let remote = MemoryBackend::new();
        remote.put_doc("marker.json", "remote-body").unwrap();
        let tiered = TieredStore::new(Box::new(local), Box::new(remote));

        assert_eq!(
            tiered.get_doc("marker.json").unwrap().as_deref(),
            Some("remote-body")
        );
        // Cached locally now.
        assert_eq!(
            tiered.local.get_doc("marker.json").unwrap().as_deref(),
            Some("remote-body")
        );
        assert_eq!(tiered.get_doc("absent.json").unwrap(), None);
    }

    #[test]
    fn fresh_doc_reads_see_the_remote_truth_past_a_stale_local_copy() {
        let local = MemoryBackend::new();
        let remote_inner = Arc::new(MemoryBackend::new());
        // This worker cached its own lease locally; meanwhile a peer's claim
        // superseded it on the shared tier.
        local.put_doc("lease_seeds.json", "mine").unwrap();
        remote_inner.put_doc("lease_seeds.json", "peers").unwrap();
        let remote = Arc::new(FaultBackend::new(Box::new(Arc::clone(&remote_inner))));
        let tiered = TieredStore::with_breaker(
            Box::new(local),
            Box::new(Arc::clone(&remote)),
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(60),
            },
        );

        // The cached read returns the stale local copy; the fresh read sees
        // the peer's claim.
        assert_eq!(
            tiered.get_doc("lease_seeds.json").unwrap().as_deref(),
            Some("mine")
        );
        assert_eq!(
            tiered.get_doc_fresh("lease_seeds.json").unwrap().as_deref(),
            Some("peers")
        );
        // A remote `None` is authoritative too: a released lease must not be
        // resurrected from the local copy.
        remote_inner.remove_doc("lease_seeds.json").unwrap();
        assert_eq!(tiered.get_doc_fresh("lease_seeds.json").unwrap(), None);

        // Only a dead remote degrades the fresh read to the local tier.
        remote.set_down(true);
        assert_eq!(
            tiered.get_doc_fresh("lease_seeds.json").unwrap().as_deref(),
            Some("mine")
        );
    }

    #[test]
    fn list_docs_merges_both_tiers_and_degrades_to_local() {
        let local = MemoryBackend::new();
        let remote_inner = Arc::new(MemoryBackend::new());
        local.put_doc("island_a.json", "x").unwrap();
        remote_inner.put_doc("island_b.json", "x").unwrap();
        remote_inner.put_doc("island_a.json", "x").unwrap(); // shared
        remote_inner.put_doc("other.json", "x").unwrap();
        let remote = Arc::new(FaultBackend::new(Box::new(Arc::clone(&remote_inner))));
        let tiered = TieredStore::with_breaker(
            Box::new(local),
            Box::new(Arc::clone(&remote)),
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(60),
            },
        );
        assert_eq!(
            tiered.list_docs("island_").unwrap(),
            vec!["island_a.json".to_string(), "island_b.json".to_string()],
            "merged, deduped, sorted, prefix-filtered"
        );
        // A dead remote degrades the listing to the local tier only.
        remote.set_down(true);
        assert_eq!(
            tiered.list_docs("island_").unwrap(),
            vec!["island_a.json".to_string()]
        );
    }

    #[test]
    fn put_doc_reaches_both_tiers() {
        let tiered = TieredStore::new(
            Box::new(MemoryBackend::new()),
            Box::new(MemoryBackend::new()),
        );
        tiered.put_doc("m.json", "x").unwrap();
        assert_eq!(
            tiered.local.get_doc("m.json").unwrap().as_deref(),
            Some("x")
        );
        assert_eq!(
            tiered.remote.get_doc("m.json").unwrap().as_deref(),
            Some("x")
        );
        tiered.remove_doc("m.json").unwrap();
        assert_eq!(tiered.remote.get_doc("m.json").unwrap(), None);
    }
}
