//! Local-over-remote composition: the local tier is a write-through cache of
//! a shared remote evaluation-cache server.
//!
//! * **scan** replays the local tier, then merges in every remote record the
//!   local tier is missing — and writes those through to the local tier, so
//!   the cache fills itself on first contact;
//! * **append** always lands locally first (the durable tier a crashed
//!   campaign resumes from), then best-effort on the remote tier so other
//!   workers inherit it;
//! * **documents** (checkpoints, completion markers) read local-first with a
//!   remote fallback (cached locally on hit) and write through to both.
//!
//! The remote tier is optional at runtime: the first remote failure flips the
//! composition into local-only mode with a single warning — a killed server
//! degrades a running campaign to exactly the behavior of a local store, it
//! never fails it.

use super::backend::{ScanOutcome, StoreBackend};
use crate::engine::EvalKey;
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counters of one tiered store's remote traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TieredStats {
    /// Records fetched from the remote tier that the local tier was missing
    /// (each was written through to the local cache).
    pub remote_fills: usize,
    /// Records appended to the remote tier.
    pub remote_appends: usize,
    /// Remote operations that failed (at most 1 unless the remote recovers
    /// between constructions — the first failure disables the tier).
    pub remote_failures: usize,
}

/// The two-tier composition: a local write-through cache over a shared
/// remote tier, degrading to local-only when the remote fails.
pub struct TieredStore {
    local: Box<dyn StoreBackend>,
    remote: Box<dyn StoreBackend>,
    remote_ok: AtomicBool,
    remote_fills: AtomicUsize,
    remote_appends: AtomicUsize,
    remote_failures: AtomicUsize,
}

impl std::fmt::Debug for TieredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field("local", &self.local.describe())
            .field("remote", &self.remote.describe())
            .field("remote_ok", &self.remote_ok.load(Ordering::Relaxed))
            .finish()
    }
}

impl TieredStore {
    /// Composes `local` (write-through cache) over `remote` (shared tier).
    pub fn new(local: Box<dyn StoreBackend>, remote: Box<dyn StoreBackend>) -> Self {
        TieredStore {
            local,
            remote,
            remote_ok: AtomicBool::new(true),
            remote_fills: AtomicUsize::new(0),
            remote_appends: AtomicUsize::new(0),
            remote_failures: AtomicUsize::new(0),
        }
    }

    /// `false` once a remote operation has failed and the store degraded to
    /// local-only mode.
    pub fn remote_healthy(&self) -> bool {
        self.remote_ok.load(Ordering::Relaxed)
    }

    /// Remote-traffic counters.
    pub fn stats(&self) -> TieredStats {
        TieredStats {
            remote_fills: self.remote_fills.load(Ordering::Relaxed),
            remote_appends: self.remote_appends.load(Ordering::Relaxed),
            remote_failures: self.remote_failures.load(Ordering::Relaxed),
        }
    }

    /// Records a remote failure: degrade to local-only, warn once.
    fn degrade(&self, what: &str, err: &CoreError) {
        self.remote_failures.fetch_add(1, Ordering::Relaxed);
        if self.remote_ok.swap(false, Ordering::Relaxed) {
            eprintln!(
                "warning: remote store {} failed during {what} ({err}); \
                 continuing on the local write-through cache only",
                self.remote.describe()
            );
        }
    }

    /// Runs `op` against the remote tier unless it already degraded; any
    /// error degrades and is swallowed.
    fn remote_best_effort<T>(&self, what: &str, op: impl FnOnce() -> Result<T, CoreError>) {
        if !self.remote_healthy() {
            return;
        }
        if let Err(err) = op() {
            self.degrade(what, &err);
        }
    }
}

impl StoreBackend for TieredStore {
    fn describe(&self) -> String {
        format!(
            "tiered ({} over {})",
            self.local.describe(),
            self.remote.describe()
        )
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        // The local tier is authoritative for this process: its failure is a
        // real error. The remote tier adds missing records — and upgrades a
        // local record whose finalization artifacts were lost (e.g. a blob
        // damaged by a crash) when the server still has the intact copy.
        let mut outcome = self.local.scan(name, fingerprint)?;
        if self.remote_healthy() {
            match self.remote.scan(name, fingerprint) {
                Ok(remote) => {
                    let have: HashMap<EvalKey, usize> = outcome
                        .records
                        .iter()
                        .enumerate()
                        .map(|(i, r)| (r.key, i))
                        .collect();
                    for record in remote.records {
                        match have.get(&record.key) {
                            Some(&i) => {
                                if outcome.records[i].artifacts.is_none()
                                    && record.artifacts.is_some()
                                {
                                    // Appending locally makes the upgrade
                                    // durable: last write wins on replay.
                                    self.local.append(name, fingerprint, &record)?;
                                    self.remote_fills.fetch_add(1, Ordering::Relaxed);
                                    outcome.records[i] = record;
                                }
                            }
                            None => {
                                // Write-through cache fill: a record seen
                                // remotely is replayed locally on the next
                                // (offline) run too.
                                self.local.append(name, fingerprint, &record)?;
                                self.remote_fills.fetch_add(1, Ordering::Relaxed);
                                outcome.records.push(record);
                            }
                        }
                    }
                }
                Err(err) => self.degrade("scan", &err),
            }
        }
        Ok(outcome)
    }

    fn get(
        &self,
        name: &str,
        fingerprint: u64,
        key: &EvalKey,
    ) -> Result<Option<EvalRecord>, CoreError> {
        if let Some(record) = self.local.get(name, fingerprint, key)? {
            return Ok(Some(record));
        }
        if self.remote_healthy() {
            match self.remote.get(name, fingerprint, key) {
                Ok(Some(record)) => {
                    self.local.append(name, fingerprint, &record)?;
                    self.remote_fills.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(record));
                }
                Ok(None) => {}
                Err(err) => self.degrade("get", &err),
            }
        }
        Ok(None)
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        self.local.append(name, fingerprint, record)?;
        self.remote_best_effort("append", || {
            self.remote.append(name, fingerprint, record)?;
            self.remote_appends.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        Ok(())
    }

    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        if records.is_empty() {
            return Ok(());
        }
        self.local.append_batch(name, fingerprint, records)?;
        self.remote_best_effort("append_batch", || {
            self.remote.append_batch(name, fingerprint, records)?;
            self.remote_appends
                .fetch_add(records.len(), Ordering::Relaxed);
            Ok(())
        });
        Ok(())
    }

    fn compact(&self, name: &str, fingerprint: u64) -> Result<usize, CoreError> {
        // Compaction is a local storage concern; the server compacts its own
        // tier on its own schedule.
        self.local.compact(name, fingerprint)
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        if let Some(doc) = self.local.get_doc(name)? {
            return Ok(Some(doc));
        }
        if self.remote_healthy() {
            match self.remote.get_doc(name) {
                Ok(Some(doc)) => {
                    self.local.put_doc(name, &doc)?;
                    return Ok(Some(doc));
                }
                Ok(None) => {}
                Err(err) => self.degrade("get_doc", &err),
            }
        }
        Ok(None)
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        self.local.put_doc(name, contents)?;
        self.remote_best_effort("put_doc", || self.remote.put_doc(name, contents));
        Ok(())
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        self.local.remove_doc(name)?;
        self.remote_best_effort("remove_doc", || self.remote.remove_doc(name));
        Ok(())
    }

    fn record_path(&self, name: &str, fingerprint: u64) -> Option<std::path::PathBuf> {
        self.local.record_path(name, fingerprint)
    }
}

#[cfg(test)]
mod tests {
    use super::super::memory::MemoryBackend;
    use super::super::tests::record;
    use super::*;

    /// A backend that fails every operation — a dead server stand-in.
    #[derive(Debug)]
    struct DeadBackend;

    impl StoreBackend for DeadBackend {
        fn describe(&self) -> String {
            "dead backend".into()
        }
        fn scan(&self, _: &str, _: u64) -> Result<ScanOutcome, CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
        fn append(&self, _: &str, _: u64, _: &EvalRecord) -> Result<(), CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
        fn get_doc(&self, _: &str) -> Result<Option<String>, CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
        fn put_doc(&self, _: &str, _: &str) -> Result<(), CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
        fn remove_doc(&self, _: &str) -> Result<(), CoreError> {
            Err(CoreError::Store {
                context: "dead".into(),
            })
        }
    }

    #[test]
    fn scan_merges_remote_records_and_fills_the_local_cache() {
        let local = MemoryBackend::new();
        let remote = MemoryBackend::new();
        let shared = record(3, 0.8, 40.0);
        let remote_only = record(4, 0.9, 50.0);
        local.append("Seeds", 1, &shared).unwrap();
        remote.append("Seeds", 1, &shared).unwrap();
        remote.append("Seeds", 1, &remote_only).unwrap();

        let tiered = TieredStore::new(Box::new(local), Box::new(remote));
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert_eq!(outcome.records, vec![shared.clone(), remote_only.clone()]);
        assert_eq!(tiered.stats().remote_fills, 1);

        // The fill is durable: a second scan finds it locally.
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(tiered.stats().remote_fills, 1, "no re-fill");
    }

    #[test]
    fn scan_upgrades_artifactless_local_records_from_the_remote() {
        use crate::store::EvalArtifacts;
        let local = MemoryBackend::new();
        let remote = MemoryBackend::new();
        let bare = record(3, 0.8, 40.0); // artifacts: None (e.g. damaged blob)
        let mut rich = bare.clone();
        rich.artifacts = Some(EvalArtifacts {
            layers: Vec::new(),
            sharing: pmlp_hw::SharingStrategy::None,
        });
        local.append("Seeds", 1, &bare).unwrap();
        remote.append("Seeds", 1, &rich).unwrap();

        let tiered = TieredStore::new(Box::new(local), Box::new(remote));
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert_eq!(outcome.records, vec![rich.clone()], "remote artifacts win");
        assert_eq!(tiered.stats().remote_fills, 1);

        // The upgrade is durable on the local tier (last write wins), so the
        // next scan needs no re-fill.
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert!(outcome
            .records
            .iter()
            .any(|r| r.key == rich.key && r.artifacts.is_some()));
        assert_eq!(tiered.stats().remote_fills, 1, "no re-fill");
    }

    #[test]
    fn appends_write_through_to_both_tiers() {
        let tiered = TieredStore::new(
            Box::new(MemoryBackend::new()),
            Box::new(MemoryBackend::new()),
        );
        let r = record(3, 0.8, 40.0);
        tiered.append("Seeds", 1, &r).unwrap();
        assert_eq!(tiered.stats().remote_appends, 1);
        assert_eq!(
            tiered.local.scan("Seeds", 1).unwrap().records,
            vec![r.clone()]
        );
        assert_eq!(tiered.remote.scan("Seeds", 1).unwrap().records, vec![r]);
    }

    #[test]
    fn a_dead_remote_degrades_to_local_only_without_failing() {
        let local = MemoryBackend::new();
        let r = record(3, 0.8, 40.0);
        local.append("Seeds", 1, &r).unwrap();
        let tiered = TieredStore::new(Box::new(local), Box::new(DeadBackend));

        // Scan survives, marks the remote unhealthy, serves local records.
        let outcome = tiered.scan("Seeds", 1).unwrap();
        assert_eq!(outcome.records, vec![r.clone()]);
        assert!(!tiered.remote_healthy());

        // Later operations never touch the dead tier again.
        tiered.append("Seeds", 1, &record(4, 0.9, 50.0)).unwrap();
        tiered.put_doc("m.json", "body").unwrap();
        assert_eq!(tiered.get_doc("m.json").unwrap().as_deref(), Some("body"));
        tiered.remove_doc("m.json").unwrap();
        assert_eq!(
            tiered.stats().remote_failures,
            1,
            "exactly one probe failed"
        );
    }

    #[test]
    fn docs_fall_back_to_the_remote_tier_and_cache_locally() {
        let local = MemoryBackend::new();
        let remote = MemoryBackend::new();
        remote.put_doc("marker.json", "remote-body").unwrap();
        let tiered = TieredStore::new(Box::new(local), Box::new(remote));

        assert_eq!(
            tiered.get_doc("marker.json").unwrap().as_deref(),
            Some("remote-body")
        );
        // Cached locally now.
        assert_eq!(
            tiered.local.get_doc("marker.json").unwrap().as_deref(),
            Some("remote-body")
        );
        assert_eq!(tiered.get_doc("absent.json").unwrap(), None);
    }

    #[test]
    fn put_doc_reaches_both_tiers() {
        let tiered = TieredStore::new(
            Box::new(MemoryBackend::new()),
            Box::new(MemoryBackend::new()),
        );
        tiered.put_doc("m.json", "x").unwrap();
        assert_eq!(
            tiered.local.get_doc("m.json").unwrap().as_deref(),
            Some("x")
        );
        assert_eq!(
            tiered.remote.get_doc("m.json").unwrap().as_deref(),
            Some("x")
        );
        tiered.remove_doc("m.json").unwrap();
        assert_eq!(tiered.remote.get_doc("m.json").unwrap(), None);
    }
}
