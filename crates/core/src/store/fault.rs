//! Deterministic fault injection for store backends — the test harness side
//! of the fault-tolerance layer.
//!
//! [`FaultBackend`] wraps any [`StoreBackend`] and makes operations fail on a
//! **seeded, reproducible schedule**: a hard outage switch ([`set_down`]) for
//! scripted kill/restart scenarios, and a per-mille failure rate drawn from a
//! xorshift generator for flaky-network chaos runs. Injected failures are
//! indistinguishable from real ones to the code under test
//! ([`CoreError::Store`]), and are counted so a test can assert that chaos
//! actually happened.
//!
//! This lives in the library (not `#[cfg(test)]`) because the chaos suite in
//! the umbrella crate and the serve integration tests both drive it.
//!
//! [`set_down`]: FaultBackend::set_down

use super::backend::{ResilienceStats, ScanOutcome, StoreBackend};
use crate::engine::EvalKey;
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A [`StoreBackend`] wrapper that injects failures deterministically.
pub struct FaultBackend {
    inner: Box<dyn StoreBackend>,
    down: AtomicBool,
    /// Per-1000 probability that an operation fails; 0 disables the
    /// randomized schedule (the `down` switch still applies).
    failure_per_mille: u16,
    rng: Mutex<u64>,
    injected: AtomicUsize,
}

impl std::fmt::Debug for FaultBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultBackend")
            .field("inner", &self.inner.describe())
            .field("down", &self.down)
            .field("failure_per_mille", &self.failure_per_mille)
            .finish()
    }
}

impl FaultBackend {
    /// Wraps `inner` with no faults scheduled: behaves identically to the
    /// wrapped backend until [`set_down`](Self::set_down) or a failure rate
    /// flips it.
    pub fn new(inner: Box<dyn StoreBackend>) -> Self {
        FaultBackend {
            inner,
            down: AtomicBool::new(false),
            failure_per_mille: 0,
            rng: Mutex::new(0x9E37_79B9_7F4A_7C15),
            injected: AtomicUsize::new(0),
        }
    }

    /// Schedules each operation to fail with probability
    /// `failure_per_mille / 1000`, drawn from a xorshift generator seeded
    /// with `seed` — the same seed yields the same fault schedule.
    pub fn with_failure_rate(mut self, failure_per_mille: u16, seed: u64) -> Self {
        self.failure_per_mille = failure_per_mille.min(1000);
        self.rng = Mutex::new(seed | 1);
        self
    }

    /// Hard outage switch: while `true`, every operation fails.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// How many failures this wrapper has injected so far.
    pub fn injected_faults(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consults the schedule; `Err` carries a recognizable context.
    fn gate(&self, what: &str) -> Result<(), CoreError> {
        let fail = self.down.load(Ordering::SeqCst) || self.roll();
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(CoreError::Store {
                context: format!("injected fault during {what}"),
            });
        }
        Ok(())
    }

    /// One xorshift64 draw against the failure rate.
    fn roll(&self) -> bool {
        if self.failure_per_mille == 0 {
            return false;
        }
        let mut state = self.rng.lock().expect("fault rng lock");
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        (x % 1000) < u64::from(self.failure_per_mille)
    }
}

impl StoreBackend for FaultBackend {
    fn describe(&self) -> String {
        format!("fault-injecting ({})", self.inner.describe())
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        self.gate("scan")?;
        self.inner.scan(name, fingerprint)
    }

    fn get(
        &self,
        name: &str,
        fingerprint: u64,
        key: &EvalKey,
    ) -> Result<Option<EvalRecord>, CoreError> {
        self.gate("get")?;
        self.inner.get(name, fingerprint, key)
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        self.gate("append")?;
        self.inner.append(name, fingerprint, record)
    }

    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        self.gate("append_batch")?;
        self.inner.append_batch(name, fingerprint, records)
    }

    fn compact(&self, name: &str, fingerprint: u64) -> Result<usize, CoreError> {
        self.gate("compact")?;
        self.inner.compact(name, fingerprint)
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        self.gate("get_doc")?;
        self.inner.get_doc(name)
    }

    fn get_doc_fresh(&self, name: &str) -> Result<Option<String>, CoreError> {
        self.gate("get_doc_fresh")?;
        self.inner.get_doc_fresh(name)
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        self.gate("put_doc")?;
        self.inner.put_doc(name, contents)
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        self.gate("remove_doc")?;
        self.inner.remove_doc(name)
    }

    fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        self.gate("list_docs")?;
        self.inner.list_docs(prefix)
    }

    fn record_path(&self, name: &str, fingerprint: u64) -> Option<std::path::PathBuf> {
        self.inner.record_path(name, fingerprint)
    }

    fn resilience(&self) -> Option<ResilienceStats> {
        self.inner.resilience()
    }

    fn flush(&self) -> Result<(), CoreError> {
        // Flush is not gated: tests that fault every append still expect the
        // durable tier underneath to flush what did land.
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::super::memory::MemoryBackend;
    use super::super::tests::record;
    use super::*;

    #[test]
    fn the_down_switch_fails_everything_and_counts() {
        let fault = FaultBackend::new(Box::new(MemoryBackend::new()));
        let r = record(3, 0.8, 40.0);
        fault.append("Seeds", 1, &r).unwrap();
        fault.set_down(true);
        assert!(fault.append("Seeds", 1, &r).is_err());
        assert!(fault.scan("Seeds", 1).is_err());
        assert_eq!(fault.injected_faults(), 2);
        fault.set_down(false);
        assert_eq!(fault.scan("Seeds", 1).unwrap().records, vec![r]);
    }

    #[test]
    fn the_seeded_schedule_is_reproducible() {
        let run = |seed| {
            let fault =
                FaultBackend::new(Box::new(MemoryBackend::new())).with_failure_rate(300, seed);
            let r = record(3, 0.8, 40.0);
            (0..64)
                .map(|_| fault.append("Seeds", 1, &r).is_ok())
                .collect::<Vec<bool>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same schedule");
        assert_ne!(a, run(8), "different seed, different schedule");
        assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !ok));
    }

    #[test]
    fn a_zero_rate_injects_nothing() {
        let fault = FaultBackend::new(Box::new(MemoryBackend::new())).with_failure_rate(0, 3);
        let r = record(3, 0.8, 40.0);
        for _ in 0..32 {
            fault.append("Seeds", 1, &r).unwrap();
        }
        assert_eq!(fault.injected_faults(), 0);
    }
}
