//! The local JSONL directory backend — the historical [`EvalStore`] on-disk
//! format, extracted behind [`StoreBackend`] bit for bit.
//!
//! One append-only `*.jsonl` file per `(dataset name, baseline fingerprint)`
//! pair, each led by a sealed-envelope header line; appends are single
//! flushed whole-line writes; replay is corruption-tolerant and compacts
//! salvaged records back to disk atomically. Documents (checkpoints,
//! completion markers) are sibling files committed with
//! [`write_atomic`](crate::store::write_atomic). See the
//! [store module documentation](crate::store) for the crash-safety story.

use super::backend::{
    check_doc_name, merge_duplicate_keys, safe_component, sanitize_name, ScanOutcome, StoreBackend,
};
use super::{header_line, header_matches, hex, parse_record_line, record_line, write_atomic};
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

fn store_err(context: String) -> CoreError {
    CoreError::Store { context }
}

/// How hard the local tier pushes appends toward the platters.
///
/// The JSONL format is crash-*consistent* under every policy (whole-line
/// appends; a torn write can only truncate the tail, which replay
/// tolerates); the policy decides how much a **power loss** can cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum DurabilityPolicy {
    /// Flush each append to the OS (the historical behavior): a process
    /// crash loses nothing; an OS crash or power loss may lose recent
    /// appends still in the page cache.
    #[default]
    Buffered,
    /// `fsync` after every append (and batch): a power loss can lose at most
    /// the append in flight. The slowest policy — one disk barrier per
    /// engine batch.
    SyncEachAppend,
    /// `fsync` only when a log header is sealed or a log is rewritten
    /// (compaction, salvage): bounds the damage of a power loss to the
    /// appends since the last seal, at near-[`Buffered`] speed.
    ///
    /// [`Buffered`]: DurabilityPolicy::Buffered
    SyncOnSeal,
}

impl std::fmt::Display for DurabilityPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DurabilityPolicy::Buffered => "buffered",
            DurabilityPolicy::SyncEachAppend => "sync-each-append",
            DurabilityPolicy::SyncOnSeal => "sync-on-seal",
        })
    }
}

impl std::str::FromStr for DurabilityPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "buffered" => Ok(DurabilityPolicy::Buffered),
            "sync-each-append" => Ok(DurabilityPolicy::SyncEachAppend),
            "sync-on-seal" => Ok(DurabilityPolicy::SyncOnSeal),
            other => Err(format!(
                "unknown durability policy '{other}' (expected buffered, sync-each-append or \
                 sync-on-seal)"
            )),
        }
    }
}

/// Best-effort fsync of an already-committed file (used after atomic
/// rewrites, where the content is already consistent on disk).
fn sync_path(path: &Path) {
    if let Ok(file) = fs::File::open(path) {
        file.sync_all().ok();
    }
}

/// The append-only JSONL directory tier.
///
/// Cheap to construct (one `create_dir_all`); append handles are opened
/// lazily and cached per record log, so repeated appends cost one `write` +
/// `flush` each, exactly like the pre-refactor store.
pub struct LocalJsonlBackend {
    dir: PathBuf,
    durability: DurabilityPolicy,
    writers: Mutex<HashMap<PathBuf, fs::File>>,
}

impl std::fmt::Debug for LocalJsonlBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalJsonlBackend")
            .field("dir", &self.dir)
            .finish()
    }
}

impl LocalJsonlBackend {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Self, CoreError> {
        Self::open_with(dir, DurabilityPolicy::default())
    }

    /// [`open`](Self::open) with an explicit [`DurabilityPolicy`]
    /// (`--durability` on the binaries).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the directory cannot be created.
    pub fn open_with(dir: &Path, durability: DurabilityPolicy) -> Result<Self, CoreError> {
        fs::create_dir_all(dir).map_err(|e| store_err(format!("create {}: {e}", dir.display())))?;
        Ok(LocalJsonlBackend {
            dir: dir.to_path_buf(),
            durability,
            writers: Mutex::new(HashMap::new()),
        })
    }

    /// The directory this backend stores into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durability policy appends run under.
    pub fn durability(&self) -> DurabilityPolicy {
        self.durability
    }

    fn file_path(&self, name: &str, fingerprint: u64) -> PathBuf {
        self.dir.join(format!(
            "{}_{}.jsonl",
            sanitize_name(name),
            hex(fingerprint)
        ))
    }

    /// Replays `path`, returning the surviving records and whether the file
    /// needs a compacting rewrite (corrupt tail, garbled line, foreign
    /// header). A missing file replays empty *without* scheduling a rewrite —
    /// reads must never create files (a disk-backed server would otherwise
    /// grow one empty log per probed fingerprint).
    ///
    /// Corrupt lines are never silently destroyed: before the compacting
    /// rewrite discards them, they are copied to a `*.quarantine` sidecar
    /// next to the log (and counted, and warned about once per replay) so a
    /// record damaged by something worse than a crash-truncated tail can
    /// still be inspected by hand. The sidecar's name ends in `.quarantine`,
    /// invisible to [`list_record_logs`] and the GC pass.
    fn replay(path: &Path, fingerprint: u64) -> Result<(Vec<EvalRecord>, usize, bool), CoreError> {
        let mut loaded: Vec<EvalRecord> = Vec::new();
        let mut quarantined: Vec<String> = Vec::new();
        let mut needs_rewrite = false;
        if path.exists() {
            let text = fs::read_to_string(path)
                .map_err(|e| store_err(format!("read {}: {e}", path.display())))?;
            let mut lines = text.lines();
            match lines.next() {
                Some(header) if header_matches(header, fingerprint) => {
                    for line in lines {
                        if line.trim().is_empty() {
                            continue;
                        }
                        match parse_record_line(line) {
                            Ok(record) => loaded.push(record),
                            Err(_) => {
                                // Truncated tail (crash mid-append) or garbled
                                // line: skip it and schedule a compaction.
                                quarantined.push(line.to_string());
                                needs_rewrite = true;
                            }
                        }
                    }
                }
                // Foreign or incompatible-version header: the file is
                // unusable as-is; start fresh (atomically).
                _ => {
                    quarantined.extend(text.lines().map(str::to_string));
                    needs_rewrite = true;
                }
            }
        }
        let dropped = quarantined.len();
        if dropped > 0 {
            Self::quarantine(path, &quarantined);
        }
        Ok((loaded, dropped, needs_rewrite))
    }

    /// Appends unsalvageable lines to the log's `*.quarantine` sidecar,
    /// best-effort (quarantine failure must never fail a replay), and warns
    /// once per replay.
    fn quarantine(path: &Path, lines: &[String]) {
        let sidecar = PathBuf::from(format!("{}.quarantine", path.display()));
        let mut body = String::new();
        for line in lines {
            body.push_str(line);
            body.push('\n');
        }
        let written = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&sidecar)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .is_ok();
        eprintln!(
            "warning: {} corrupt record(s) in {}{}",
            lines.len(),
            path.display(),
            if written {
                format!(" quarantined to {}", sidecar.display())
            } else {
                " (quarantine sidecar could not be written)".to_string()
            }
        );
    }

    /// Returns the cached append handle for `path`, opening (and sealing /
    /// salvaging the header of) the log on first touch by this backend
    /// instance. Must be called with the writers lock held — the map passed
    /// in *is* the locked map.
    fn writer_for<'w>(
        writers: &'w mut HashMap<PathBuf, fs::File>,
        path: &Path,
        fingerprint: u64,
        durability: DurabilityPolicy,
    ) -> Result<&'w mut fs::File, CoreError> {
        if !writers.contains_key(path) {
            // First touch of this log by this backend instance: make sure a
            // valid header leads the file before appending after it. An
            // existing file with a foreign/stale header must be salvaged
            // *now* — appending after a bad header would let the next scan
            // discard the fresh records along with it.
            let (records, _, needs_rewrite) = Self::replay(path, fingerprint)?;
            let mut sealed = false;
            if needs_rewrite {
                Self::rewrite(path, fingerprint, &records)?;
                sealed = true;
            } else if !path.exists() {
                // Brand-new log: seal the header so a replay can bind the
                // file to its fingerprint.
                let mut contents = header_line(fingerprint);
                contents.push('\n');
                write_atomic(path, &contents)
                    .map_err(|e| store_err(format!("create {}: {e}", path.display())))?;
                sealed = true;
            }
            if sealed && durability != DurabilityPolicy::Buffered {
                sync_path(path);
            }
            let file = fs::OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(|e| store_err(format!("open {} for append: {e}", path.display())))?;
            writers.insert(path.to_path_buf(), file);
        }
        Ok(writers.get_mut(path).expect("cached writer"))
    }

    /// Writes `records` (plus the header) to `path` atomically.
    fn rewrite(path: &Path, fingerprint: u64, records: &[EvalRecord]) -> Result<(), CoreError> {
        let mut contents = header_line(fingerprint);
        contents.push('\n');
        for record in records {
            contents.push_str(&record_line(record));
            contents.push('\n');
        }
        write_atomic(path, &contents)
            .map_err(|e| store_err(format!("rewrite {}: {e}", path.display())))
    }
}

impl StoreBackend for LocalJsonlBackend {
    fn describe(&self) -> String {
        format!("local jsonl dir {}", self.dir.display())
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        let path = self.file_path(name, fingerprint);
        // The writers lock is held across replay + rewrite so a compacting
        // rewrite can never clobber a concurrent append (the server shares
        // one backend across handler threads).
        let mut writers = self.writers.lock().expect("writer map lock");
        let (records, dropped, needs_rewrite) = Self::replay(&path, fingerprint)?;
        if needs_rewrite {
            // A rewrite replaces the inode any cached append handle points
            // at; drop the stale handle so later appends reopen the new file.
            Self::rewrite(&path, fingerprint, &records)?;
            if self.durability != DurabilityPolicy::Buffered {
                sync_path(&path);
            }
            writers.remove(&path);
        }
        Ok(ScanOutcome { records, dropped })
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        let path = self.file_path(name, fingerprint);
        let mut line = record_line(record);
        line.push('\n');
        let mut writers = self.writers.lock().expect("writer map lock");
        let writer = Self::writer_for(&mut writers, &path, fingerprint, self.durability)?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .and_then(|()| match self.durability {
                DurabilityPolicy::SyncEachAppend => writer.sync_data(),
                _ => Ok(()),
            })
            .map_err(|e| store_err(format!("append to {}: {e}", path.display())))
    }

    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        if records.is_empty() {
            return Ok(());
        }
        let path = self.file_path(name, fingerprint);
        let mut lines = String::new();
        for record in records {
            lines.push_str(&record_line(record));
            lines.push('\n');
        }
        // One write + one flush for the whole batch: a crash can still only
        // truncate the tail, which replay tolerates.
        let mut writers = self.writers.lock().expect("writer map lock");
        let writer = Self::writer_for(&mut writers, &path, fingerprint, self.durability)?;
        writer
            .write_all(lines.as_bytes())
            .and_then(|()| writer.flush())
            .and_then(|()| match self.durability {
                DurabilityPolicy::SyncEachAppend => writer.sync_data(),
                _ => Ok(()),
            })
            .map_err(|e| store_err(format!("append batch to {}: {e}", path.display())))
    }

    fn compact(&self, name: &str, fingerprint: u64) -> Result<usize, CoreError> {
        let path = self.file_path(name, fingerprint);
        let mut writers = self.writers.lock().expect("writer map lock");
        let (records, _, _) = Self::replay(&path, fingerprint)?;
        let (merged, removed) = merge_duplicate_keys(records);
        if removed > 0 {
            Self::rewrite(&path, fingerprint, &merged)?;
            if self.durability != DurabilityPolicy::Buffered {
                sync_path(&path);
            }
            writers.remove(&path);
        }
        Ok(removed)
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        check_doc_name(name)?;
        match fs::read_to_string(self.dir.join(name)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(store_err(format!("read doc {name}: {e}"))),
        }
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        write_atomic(&self.dir.join(name), contents)
            .map_err(|e| store_err(format!("write doc {name}: {e}")))
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        match fs::remove_file(self.dir.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(store_err(format!("remove doc {name}: {e}"))),
        }
    }

    fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        // Everything in the directory that is a document: a file whose name
        // is a safe doc component and is neither a record log, an atomic-write
        // temporary, nor a quarantine sidecar.
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(store_err(format!("read {}: {e}", self.dir.display()))),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| store_err(format!("read {}: {e}", self.dir.display())))?;
            let Some(name) = entry.file_name().to_str().map(String::from) else {
                continue;
            };
            if !name.starts_with(prefix)
                || !safe_component(&name)
                || record_log_fingerprint(&name).is_some()
                || name.ends_with(".tmp")
                || name.ends_with(".quarantine")
            {
                continue;
            }
            names.push(name);
        }
        names.sort();
        Ok(names)
    }

    fn record_path(&self, name: &str, fingerprint: u64) -> Option<PathBuf> {
        Some(self.file_path(name, fingerprint))
    }

    fn flush(&self) -> Result<(), CoreError> {
        // fsync every cached append handle regardless of the durability
        // policy — this is the graceful-shutdown path, where the process is
        // about to exit and the page cache is all that holds recent appends.
        let writers = self.writers.lock().expect("writer map lock");
        for (path, file) in writers.iter() {
            file.sync_data()
                .map_err(|e| store_err(format!("sync {}: {e}", path.display())))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

/// Tuning knobs of [`gc_store_dir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcPolicy {
    /// Record logs at or above this size are compacted (duplicate keys
    /// merged, corrupt lines dropped) even if nothing else is wrong with
    /// them. Logs below it are only rewritten when duplicates exist.
    pub compact_threshold_bytes: u64,
}

impl Default for GcPolicy {
    fn default() -> Self {
        GcPolicy {
            // Quick-campaign record logs are a few KiB; a megabyte means a
            // long-lived store that has earned a compaction pass.
            compact_threshold_bytes: 1 << 20,
        }
    }
}

/// What one garbage-collection pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Record logs whose fingerprint matched a live baseline and were kept.
    pub files_kept: usize,
    /// Record logs (and stale completion markers) deleted.
    pub files_dropped: usize,
    /// Bytes freed by deletions and compactions.
    pub bytes_reclaimed: u64,
    /// Duplicate-key records merged away during compaction.
    pub duplicates_merged: usize,
    /// Corrupt records dropped during compaction.
    pub corrupt_dropped: usize,
}

/// Extracts the trailing `_{16-hex}.jsonl` fingerprint of a record-log file
/// name.
fn record_log_fingerprint(file_name: &str) -> Option<u64> {
    let stem = file_name.strip_suffix(".jsonl")?;
    let (_, fp) = stem.rsplit_once('_')?;
    (fp.len() == 16).then(|| u64::from_str_radix(fp, 16).ok())?
}

/// Enumerates the record logs of a store directory as `(shard label,
/// fingerprint)` pairs — the keys a server preloads its in-memory index with
/// and the default "everything currently present is live" set of an online
/// GC pass. Non-log files (documents, markers) are skipped.
///
/// # Errors
///
/// Returns [`CoreError::Store`] when the directory cannot be read; a missing
/// directory lists empty (a fresh store has no logs yet).
pub fn list_record_logs(dir: &Path) -> Result<Vec<(String, u64)>, CoreError> {
    let mut logs = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(logs),
        Err(e) => return Err(store_err(format!("read {}: {e}", dir.display()))),
    };
    for entry in entries {
        let entry = entry.map_err(|e| store_err(format!("read {}: {e}", dir.display())))?;
        let Some(file_name) = entry.file_name().to_str().map(String::from) else {
            continue;
        };
        if let Some(fp) = record_log_fingerprint(&file_name) {
            let stem = file_name
                .strip_suffix(".jsonl")
                .and_then(|s| s.rsplit_once('_'))
                .map(|(name, _)| name.to_string())
                .expect("fingerprinted log names split");
            logs.push((stem, fp));
        }
    }
    logs.sort();
    Ok(logs)
}

/// Extracts the envelope fingerprint of a sealed store document (a
/// `done_*.json` completion marker or an `island_*.json` elite front).
fn marker_fingerprint(path: &Path) -> Option<u64> {
    let parsed = serde::json::parse(&fs::read_to_string(path).ok()?).ok()?;
    super::parse_hex(parsed.get("fingerprint")?).ok()
}

/// Extracts the `deadline_ms` wall-clock expiry of a `lease_*.json`
/// work-stealing lease document.
fn lease_deadline_ms(path: &Path) -> Option<u64> {
    let parsed = serde::json::parse(&fs::read_to_string(path).ok()?).ok()?;
    match parsed.get("deadline_ms")? {
        serde::json::Value::Number(n) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// Milliseconds since the Unix epoch — the wall clock work-stealing leases
/// are claimed, renewed and expired against.
pub fn now_epoch_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Garbage-collects a local store directory:
///
/// * record logs whose baseline fingerprint is not in `live_fingerprints`
///   are deleted (their baseline no longer exists, so no engine can ever
///   warm-start from them again),
/// * surviving logs have duplicate keys merged, and logs at or above
///   [`GcPolicy::compact_threshold_bytes`] are compacted unconditionally,
/// * `done_*.json` completion markers bound to a dead baseline fingerprint
///   are deleted too,
/// * `island_*.json` elite-front documents whose baseline fingerprint is
///   dead are deleted (no worker can ever import those migrants again);
///   fronts of live baselines are kept,
/// * `lease_*.json` work-stealing leases past their embedded wall-clock
///   deadline are deleted; unexpired leases are never reaped, whatever
///   their fingerprint — a healthy worker may still be holding them.
///
/// Checkpoint documents and unrelated files are left untouched.
///
/// # Errors
///
/// Returns [`CoreError::Store`] when the directory cannot be read or a
/// rewrite fails; per-file deletions that race with other processes are
/// ignored.
pub fn gc_store_dir(
    dir: &Path,
    live_fingerprints: &[u64],
    policy: &GcPolicy,
) -> Result<GcReport, CoreError> {
    let mut report = GcReport::default();
    let entries =
        fs::read_dir(dir).map_err(|e| store_err(format!("read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| store_err(format!("read {}: {e}", dir.display())))?;
        let path = entry.path();
        let Some(file_name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let size = entry.metadata().map(|m| m.len()).unwrap_or(0);

        if let Some(fp) = record_log_fingerprint(&file_name) {
            if !live_fingerprints.contains(&fp) {
                fs::remove_file(&path).ok();
                report.files_dropped += 1;
                report.bytes_reclaimed += size;
                continue;
            }
            report.files_kept += 1;
            let (records, corrupt, damaged) = LocalJsonlBackend::replay(&path, fp)?;
            let (merged, removed) = merge_duplicate_keys(records);
            if removed > 0 || damaged || size >= policy.compact_threshold_bytes {
                LocalJsonlBackend::rewrite(&path, fp, &merged)?;
                let new_size = fs::metadata(&path).map(|m| m.len()).unwrap_or(size);
                report.bytes_reclaimed += size.saturating_sub(new_size);
                report.duplicates_merged += removed;
                report.corrupt_dropped += corrupt;
            }
        } else if (file_name.starts_with("done_") || file_name.starts_with("island_"))
            && file_name.ends_with(".json")
        {
            // Completion markers and island elite fronts carry the baseline
            // fingerprint they were measured against in their envelope; a
            // dead baseline means the marker can never be resumed (nor the
            // migrants imported) again.
            match marker_fingerprint(&path) {
                Some(fp) if !live_fingerprints.contains(&fp) => {
                    fs::remove_file(&path).ok();
                    report.files_dropped += 1;
                    report.bytes_reclaimed += size;
                }
                _ => {}
            }
        } else if file_name.starts_with("lease_") && file_name.ends_with(".json") {
            // Work-stealing leases expire by wall-clock deadline: one past
            // its deadline belongs to a dead or finished worker either way.
            // An unexpired lease is live by definition and is never reaped.
            match lease_deadline_ms(&path) {
                Some(deadline) if deadline < now_epoch_ms() => {
                    fs::remove_file(&path).ok();
                    report.files_dropped += 1;
                    report.bytes_reclaimed += size;
                }
                _ => {}
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::super::tests::{record, temp_dir};
    use super::*;

    #[test]
    fn scan_of_a_missing_log_is_empty_and_creates_nothing() {
        // Reads must never write: a disk-backed server would otherwise grow
        // one empty log per probed fingerprint.
        let dir = temp_dir("jsonl-create");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let outcome = backend.scan("Seeds", 7).unwrap();
        assert!(outcome.records.is_empty());
        let path = backend.record_path("Seeds", 7).unwrap();
        assert!(!path.exists(), "a read-only scan must not create files");
        // The header still gets sealed by the first append.
        backend.append("Seeds", 7, &record(4, 0.8, 40.0)).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(header_matches(text.lines().next().unwrap(), 7));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_without_prior_scan_seals_a_header_first() {
        let dir = temp_dir("jsonl-append-first");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        backend.append("Seeds", 9, &record(4, 0.8, 40.0)).unwrap();
        let outcome = backend.scan("Seeds", 9).unwrap();
        assert_eq!(outcome.records, vec![record(4, 0.8, 40.0)]);
        assert_eq!(outcome.dropped, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_salvages_a_foreign_header_before_writing() {
        // Appending after a stale/foreign header would let the next scan
        // discard the fresh record together with the bad file.
        let dir = temp_dir("jsonl-foreign-append");
        std::fs::create_dir_all(&dir).unwrap();
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let path = backend.record_path("Seeds", 3).unwrap();
        fs::write(&path, "{\"magic\":\"something-else\"}\nold garbage\n").unwrap();

        let fresh = record(4, 0.8, 40.0);
        backend.append("Seeds", 3, &fresh).unwrap();
        let outcome = backend.scan("Seeds", 3).unwrap();
        assert_eq!(outcome.records, vec![fresh], "fresh record must survive");
        assert_eq!(outcome.dropped, 0, "the bad file was salvaged on append");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_answers_by_key_with_last_write_winning() {
        let dir = temp_dir("jsonl-get");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let first = record(4, 0.8, 40.0);
        let mut second = record(4, 0.8, 40.0);
        second.point.accuracy = 0.81;
        backend.append("Seeds", 1, &first).unwrap();
        backend.append("Seeds", 1, &second).unwrap();
        let got = backend.get("Seeds", 1, &first.key).unwrap();
        assert_eq!(got, Some(second));
        assert_eq!(
            backend.get("Seeds", 1, &record(7, 0.9, 9.0).key).unwrap(),
            None
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_merges_duplicate_keys_keeping_the_last() {
        let dir = temp_dir("jsonl-compact");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let a = record(3, 0.7, 30.0);
        let mut a2 = a.clone();
        a2.point.accuracy = 0.72;
        let b = record(4, 0.8, 40.0);
        for r in [&a, &b, &a2] {
            backend.append("Seeds", 5, r).unwrap();
        }
        assert_eq!(backend.compact("Seeds", 5).unwrap(), 1);
        let outcome = backend.scan("Seeds", 5).unwrap();
        assert_eq!(outcome.records, vec![a2, b]);
        // Idempotent.
        assert_eq!(backend.compact("Seeds", 5).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_remain_valid_after_a_compacting_rewrite() {
        // A rewrite swaps the file's inode; cached append handles must not
        // keep writing to the orphaned one.
        let dir = temp_dir("jsonl-inode");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let a = record(3, 0.7, 30.0);
        backend.append("Seeds", 5, &a).unwrap();
        backend.append("Seeds", 5, &a).unwrap(); // duplicate
        assert_eq!(backend.compact("Seeds", 5).unwrap(), 1);
        let b = record(4, 0.8, 40.0);
        backend.append("Seeds", 5, &b).unwrap();
        let outcome = backend.scan("Seeds", 5).unwrap();
        assert_eq!(outcome.records, vec![a, b]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn docs_round_trip_and_reject_unsafe_names() {
        let dir = temp_dir("jsonl-docs");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        assert_eq!(backend.get_doc("marker.json").unwrap(), None);
        backend.put_doc("marker.json", "{\"x\":1}").unwrap();
        assert_eq!(
            backend.get_doc("marker.json").unwrap().as_deref(),
            Some("{\"x\":1}")
        );
        backend.remove_doc("marker.json").unwrap();
        assert_eq!(backend.get_doc("marker.json").unwrap(), None);
        backend.remove_doc("marker.json").unwrap(); // idempotent
        assert!(backend.put_doc("../escape", "x").is_err());
        assert!(backend.get_doc("a/b").is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_policies_parse_and_round_trip() {
        for policy in [
            DurabilityPolicy::Buffered,
            DurabilityPolicy::SyncEachAppend,
            DurabilityPolicy::SyncOnSeal,
        ] {
            assert_eq!(policy.to_string().parse::<DurabilityPolicy>(), Ok(policy));
        }
        assert!("fast-and-loose".parse::<DurabilityPolicy>().is_err());
        assert_eq!(DurabilityPolicy::default(), DurabilityPolicy::Buffered);
    }

    #[test]
    fn synced_appends_behave_identically_to_buffered_ones() {
        for policy in [
            DurabilityPolicy::SyncEachAppend,
            DurabilityPolicy::SyncOnSeal,
        ] {
            let dir = temp_dir(&format!("jsonl-durability-{policy}"));
            let backend = LocalJsonlBackend::open_with(&dir, policy).unwrap();
            assert_eq!(backend.durability(), policy);
            let a = record(3, 0.8, 40.0);
            let b = record(4, 0.9, 50.0);
            backend.append("Seeds", 1, &a).unwrap();
            backend
                .append_batch("Seeds", 1, std::slice::from_ref(&b))
                .unwrap();
            backend.flush().unwrap();
            let outcome = backend.scan("Seeds", 1).unwrap();
            assert_eq!(outcome.records, vec![a, b]);
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn corrupt_lines_are_quarantined_to_a_sidecar_not_destroyed() {
        let dir = temp_dir("jsonl-quarantine");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let a = record(3, 0.8, 40.0);
        let b = record(4, 0.9, 50.0);
        backend.append("Seeds", 7, &a).unwrap();
        backend.append("Seeds", 7, &b).unwrap();

        // Garble the middle record (worse than a truncated tail).
        let path = backend.record_path("Seeds", 7).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let garbled = text.replacen(&record_line(&a), "!!not json!!", 1);
        fs::write(&path, garbled).unwrap();

        let fresh = LocalJsonlBackend::open(&dir).unwrap();
        let outcome = fresh.scan("Seeds", 7).unwrap();
        assert_eq!(outcome.records, vec![b], "the tail survives");
        assert_eq!(outcome.dropped, 1);

        let sidecar = PathBuf::from(format!("{}.quarantine", path.display()));
        let quarantined = fs::read_to_string(&sidecar).unwrap();
        assert!(quarantined.contains("!!not json!!"));
        // The sidecar is invisible to log enumeration (and therefore GC).
        assert_eq!(list_record_logs(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_drops_dead_fingerprints_and_compacts_live_ones() {
        let dir = temp_dir("jsonl-gc");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let live = record(3, 0.7, 30.0);
        backend.append("Seeds", 0xA11CE, &live).unwrap();
        backend.append("Seeds", 0xA11CE, &live).unwrap(); // duplicate
        backend
            .append("Seeds", 0xDEAD, &record(4, 0.8, 40.0))
            .unwrap();
        backend
            .append("Balance", 0xDEAD, &record(5, 0.9, 50.0))
            .unwrap();

        let report = gc_store_dir(&dir, &[0xA11CE], &GcPolicy::default()).unwrap();
        assert_eq!(report.files_kept, 1);
        assert_eq!(report.files_dropped, 2);
        assert_eq!(report.duplicates_merged, 1);
        assert!(report.bytes_reclaimed > 0);

        // The dead logs are gone; the live one survived with merged keys.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 1);
        assert!(names[0].starts_with("seeds_"));
        let outcome = backend.scan("Seeds", 0xA11CE).unwrap();
        assert_eq!(outcome.records, vec![live]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_drops_markers_of_dead_baselines_only() {
        let dir = temp_dir("jsonl-gc-markers");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let marker = |fp: u64| {
            super::super::seal_envelope("pmlp-campaign-marker", 1, fp, Vec::new()).render_pretty()
        };
        backend
            .put_doc("done_seeds_0001.json", &marker(0xA))
            .unwrap();
        backend
            .put_doc("done_balance_0002.json", &marker(0xB))
            .unwrap();
        backend
            .put_doc("fig2_seeds_nsga2.json", "{\"unrelated\":true}")
            .unwrap();

        let report = gc_store_dir(&dir, &[0xA], &GcPolicy::default()).unwrap();
        assert_eq!(report.files_dropped, 1);
        assert!(backend.get_doc("done_seeds_0001.json").unwrap().is_some());
        assert!(backend.get_doc("done_balance_0002.json").unwrap().is_none());
        // Checkpoints are never GC'd (their fingerprints are config hashes,
        // not baseline identities).
        assert!(backend.get_doc("fig2_seeds_nsga2.json").unwrap().is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_docs_skips_logs_temporaries_and_quarantine() {
        let dir = temp_dir("jsonl-list-docs");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        backend.append("Seeds", 7, &record(3, 0.8, 40.0)).unwrap();
        backend.put_doc("island_0007_w1_gen001.json", "{}").unwrap();
        backend.put_doc("island_0007_w0_gen001.json", "{}").unwrap();
        backend.put_doc("lease_0007_seeds.json", "{}").unwrap();
        fs::write(dir.join("half-written.tmp"), "x").unwrap();
        fs::write(dir.join("seeds_0000000000000007.jsonl.quarantine"), "x").unwrap();

        assert_eq!(
            backend.list_docs("island_").unwrap(),
            vec![
                "island_0007_w0_gen001.json".to_string(),
                "island_0007_w1_gen001.json".to_string(),
            ]
        );
        // The unfiltered listing still hides record logs, temporaries and
        // quarantine sidecars.
        assert_eq!(
            backend.list_docs("").unwrap(),
            vec![
                "island_0007_w0_gen001.json".to_string(),
                "island_0007_w1_gen001.json".to_string(),
                "lease_0007_seeds.json".to_string(),
            ]
        );
        assert_eq!(backend.list_docs("zzz").unwrap(), Vec::<String>::new());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_reaps_expired_leases_and_dead_island_fronts_only() {
        let dir = temp_dir("jsonl-gc-island");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let front = |fp: u64| {
            super::super::seal_envelope("pmlp-island-front", 1, fp, Vec::new()).render_pretty()
        };
        let lease = |deadline_ms: u64| {
            super::super::seal_envelope(
                "pmlp-campaign-lease",
                1,
                0xC,
                vec![(
                    "deadline_ms".to_string(),
                    serde::json::Value::Number(deadline_ms as f64),
                )],
            )
            .render_pretty()
        };
        backend
            .put_doc("island_000000000000000a_w0_gen001.json", &front(0xA))
            .unwrap();
        backend
            .put_doc("island_000000000000000b_w0_gen001.json", &front(0xB))
            .unwrap();
        let now = now_epoch_ms();
        backend.put_doc("lease_000c_seeds.json", &lease(1)).unwrap();
        backend
            .put_doc("lease_000c_wine.json", &lease(now + 60_000))
            .unwrap();

        let report = gc_store_dir(&dir, &[0xA], &GcPolicy::default()).unwrap();
        assert_eq!(report.files_dropped, 2);
        // The live-baseline front and the unexpired lease survive.
        assert!(backend
            .get_doc("island_000000000000000a_w0_gen001.json")
            .unwrap()
            .is_some());
        assert!(backend
            .get_doc("island_000000000000000b_w0_gen001.json")
            .unwrap()
            .is_none());
        assert!(backend.get_doc("lease_000c_seeds.json").unwrap().is_none());
        assert!(backend.get_doc("lease_000c_wine.json").unwrap().is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_size_trigger_compacts_large_logs() {
        let dir = temp_dir("jsonl-gc-size");
        let backend = LocalJsonlBackend::open(&dir).unwrap();
        let r = record(3, 0.7, 30.0);
        for _ in 0..20 {
            backend.append("Seeds", 0xF00, &r).unwrap();
        }
        let path = backend.record_path("Seeds", 0xF00).unwrap();
        let before = fs::metadata(&path).unwrap().len();
        // Threshold below the current size forces the compaction.
        let policy = GcPolicy {
            compact_threshold_bytes: 1,
        };
        let report = gc_store_dir(&dir, &[0xF00], &policy).unwrap();
        assert_eq!(report.duplicates_merged, 19);
        assert!(fs::metadata(&path).unwrap().len() < before);
        fs::remove_dir_all(&dir).ok();
    }
}
