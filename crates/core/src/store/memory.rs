//! In-process [`StoreBackend`]: a synchronized map, no I/O.
//!
//! Used by tests that need store semantics without touching disk, and by the
//! `pmlp-serve` server as its default (non-persistent) state.

use super::backend::{check_doc_name, sanitize_name, ScanOutcome, StoreBackend};
use crate::engine::EvalKey;
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::collections::HashMap;
use std::sync::Mutex;

/// The in-memory tier: record logs and documents in two synchronized maps.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    records: Mutex<HashMap<(String, u64), Vec<EvalRecord>>>,
    docs: Mutex<HashMap<String, String>>,
}

impl MemoryBackend {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total records across every `(name, fingerprint)` log.
    pub fn record_count(&self) -> usize {
        self.records
            .lock()
            .expect("memory records lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Number of distinct `(name, fingerprint)` record logs.
    pub fn log_count(&self) -> usize {
        self.records.lock().expect("memory records lock").len()
    }

    /// Number of stored documents.
    pub fn doc_count(&self) -> usize {
        self.docs.lock().expect("memory docs lock").len()
    }

    /// Every `(shard label, fingerprint)` log currently held, sorted — the
    /// in-memory analogue of [`list_record_logs`](super::list_record_logs).
    pub fn logs(&self) -> Vec<(String, u64)> {
        let mut logs: Vec<(String, u64)> = self
            .records
            .lock()
            .expect("memory records lock")
            .keys()
            .cloned()
            .collect();
        logs.sort();
        logs
    }
}

impl StoreBackend for MemoryBackend {
    fn describe(&self) -> String {
        "in-memory store".into()
    }

    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        let records = self
            .records
            .lock()
            .expect("memory records lock")
            .get(&(sanitize_name(name), fingerprint))
            .cloned()
            .unwrap_or_default();
        Ok(ScanOutcome {
            records,
            dropped: 0,
        })
    }

    fn get(
        &self,
        name: &str,
        fingerprint: u64,
        key: &EvalKey,
    ) -> Result<Option<EvalRecord>, CoreError> {
        Ok(self
            .records
            .lock()
            .expect("memory records lock")
            .get(&(sanitize_name(name), fingerprint))
            .and_then(|log| log.iter().rev().find(|r| r.key == *key).cloned()))
    }

    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        self.records
            .lock()
            .expect("memory records lock")
            .entry((sanitize_name(name), fingerprint))
            .or_default()
            .push(record.clone());
        Ok(())
    }

    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        if records.is_empty() {
            return Ok(());
        }
        self.records
            .lock()
            .expect("memory records lock")
            .entry((sanitize_name(name), fingerprint))
            .or_default()
            .extend_from_slice(records);
        Ok(())
    }

    fn compact(&self, name: &str, fingerprint: u64) -> Result<usize, CoreError> {
        let mut map = self.records.lock().expect("memory records lock");
        let Some(log) = map.get_mut(&(sanitize_name(name), fingerprint)) else {
            return Ok(0);
        };
        let (merged, removed) = super::backend::merge_duplicate_keys(std::mem::take(log));
        *log = merged;
        Ok(removed)
    }

    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        check_doc_name(name)?;
        Ok(self
            .docs
            .lock()
            .expect("memory docs lock")
            .get(name)
            .cloned())
    }

    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        self.docs
            .lock()
            .expect("memory docs lock")
            .insert(name.to_string(), contents.to_string());
        Ok(())
    }

    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        check_doc_name(name)?;
        self.docs.lock().expect("memory docs lock").remove(name);
        Ok(())
    }

    fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        let mut names: Vec<String> = self
            .docs
            .lock()
            .expect("memory docs lock")
            .keys()
            .filter(|name| name.starts_with(prefix))
            .cloned()
            .collect();
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::record;
    use super::*;

    #[test]
    fn records_round_trip_per_name_and_fingerprint() {
        let backend = MemoryBackend::new();
        let a = record(3, 0.8, 40.0);
        backend.append("Seeds", 1, &a).unwrap();
        backend.append("Seeds", 2, &record(4, 0.9, 50.0)).unwrap();
        assert_eq!(backend.scan("Seeds", 1).unwrap().records, vec![a.clone()]);
        assert_eq!(backend.scan("seeds", 1).unwrap().records, vec![a.clone()]);
        assert_eq!(backend.scan("Seeds", 3).unwrap().records, Vec::new());
        assert_eq!(backend.get("Seeds", 1, &a.key).unwrap(), Some(a));
        assert_eq!(backend.record_count(), 2);
        assert_eq!(backend.log_count(), 2);
    }

    #[test]
    fn compaction_keeps_the_last_write_per_key() {
        let backend = MemoryBackend::new();
        let a = record(3, 0.8, 40.0);
        let mut a2 = a.clone();
        a2.point.accuracy = 0.85;
        backend.append("Seeds", 1, &a).unwrap();
        backend.append("Seeds", 1, &a2).unwrap();
        assert_eq!(backend.compact("Seeds", 1).unwrap(), 1);
        assert_eq!(backend.scan("Seeds", 1).unwrap().records, vec![a2]);
        assert_eq!(backend.compact("Seeds", 1).unwrap(), 0);
        assert_eq!(backend.compact("Other", 9).unwrap(), 0);
    }

    #[test]
    fn docs_round_trip() {
        let backend = MemoryBackend::new();
        assert_eq!(backend.get_doc("m.json").unwrap(), None);
        backend.put_doc("m.json", "body").unwrap();
        assert_eq!(backend.get_doc("m.json").unwrap().as_deref(), Some("body"));
        assert_eq!(backend.doc_count(), 1);
        backend.remove_doc("m.json").unwrap();
        assert_eq!(backend.get_doc("m.json").unwrap(), None);
        assert!(backend.put_doc("../x", "body").is_err());
    }

    #[test]
    fn list_docs_filters_by_prefix_and_sorts() {
        let backend = MemoryBackend::new();
        assert_eq!(backend.list_docs("").unwrap(), Vec::<String>::new());
        backend.put_doc("island_b.json", "x").unwrap();
        backend.put_doc("island_a.json", "x").unwrap();
        backend.put_doc("lease_seeds.json", "x").unwrap();
        assert_eq!(
            backend.list_docs("island_").unwrap(),
            vec!["island_a.json".to_string(), "island_b.json".to_string()]
        );
        assert_eq!(backend.list_docs("").unwrap().len(), 3);
        assert_eq!(backend.list_docs("zzz").unwrap(), Vec::<String>::new());
    }
}
