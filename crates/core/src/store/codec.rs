//! Compact binary encoding of finalization artifacts (minimized integer
//! layers + sharing strategy), carried inside store records as a base64
//! string.
//!
//! Persisting the integer layers next to each design point lets
//! [`EvalEngine::finalize`](crate::engine::EvalEngine::finalize) run full
//! gate-level synthesis on a store-warmed Pareto finalist without re-running
//! the minimization pipeline. The layers are small (hundreds of weight codes)
//! but highly compressible: codes are near-zero integers, so the encoding is
//! zig-zag varints rather than JSON numbers — typically 4-6x smaller — and
//! the resulting byte stream is base64-wrapped to live inside a JSONL line.
//!
//! The encoding is exact: `f32` scales travel as raw bits, and a round trip
//! reproduces every layer bit for bit (a requirement — finalization
//! cross-checks full synthesis against the fast-path numbers, which only
//! works when the layers are identical).

use pmlp_hw::SharingStrategy;
use pmlp_minimize::IntegerLayer;

/// Version byte leading every encoded artifact blob; unknown versions decode
/// to `None` so foreign blobs are recomputed rather than misread.
const CODEC_VERSION: u8 = 1;

// ---------------------------------------------------------------------------
// varint / zigzag
// ---------------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_zigzag(out: &mut Vec<u8>, v: i64) {
    push_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 {
                return None;
            }
            // The 10th byte holds only bit 63: any higher payload bit means
            // a corrupt blob, which must decode to None — never silently
            // truncate into accepted-but-wrong values.
            if shift == 63 && (byte & 0x7f) > 1 {
                return None;
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
        }
    }

    fn zigzag(&mut self) -> Option<i64> {
        let v = self.varint()?;
        Some(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn len_capped(&mut self) -> Option<usize> {
        // Dimension sanity cap: nothing in this workspace has layers beyond
        // a few thousand weights; a larger claim means a corrupt blob.
        let v = self.varint()?;
        (v <= 1 << 20).then_some(v as usize)
    }
}

// ---------------------------------------------------------------------------
// base64 (standard alphabet, unpadded)
// ---------------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(B64[(n >> 6) as usize & 63] as char);
        }
        if chunk.len() > 2 {
            out.push(B64[n as usize & 63] as char);
        }
    }
    out
}

fn b64_decode(text: &str) -> Option<Vec<u8>> {
    fn value(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let input = text.as_bytes();
    if input.len() % 4 == 1 {
        return None;
    }
    let mut out = Vec::with_capacity(input.len() / 4 * 3 + 2);
    for chunk in input.chunks(4) {
        let mut n: u32 = 0;
        for &c in chunk {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * (4 - chunk.len()) as u32;
        out.push((n >> 16) as u8);
        if chunk.len() > 2 {
            out.push((n >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(n as u8);
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// artifact blob
// ---------------------------------------------------------------------------

/// Encodes minimized layers + sharing strategy into the compact base64 blob
/// stored next to a record's design point.
pub fn encode_artifacts(layers: &[IntegerLayer], sharing: SharingStrategy) -> String {
    let mut bytes = Vec::with_capacity(64 + layers.len() * 64);
    bytes.push(CODEC_VERSION);
    bytes.push(match sharing {
        SharingStrategy::None => 0,
        SharingStrategy::SharedPerInput => 1,
    });
    push_varint(&mut bytes, layers.len() as u64);
    for layer in layers {
        bytes.push(layer.weight_bits);
        bytes.extend_from_slice(&layer.scale.to_bits().to_le_bytes());
        push_varint(&mut bytes, layer.codes.len() as u64);
        for row in &layer.codes {
            push_varint(&mut bytes, row.len() as u64);
            for &code in row {
                push_zigzag(&mut bytes, code);
            }
        }
        push_varint(&mut bytes, layer.bias_codes.len() as u64);
        for &bias in &layer.bias_codes {
            push_zigzag(&mut bytes, bias);
        }
    }
    b64_encode(&bytes)
}

/// Decodes a blob written by [`encode_artifacts`]. Returns `None` for foreign
/// versions or corrupt blobs — the caller then simply re-runs minimization.
pub fn decode_artifacts(blob: &str) -> Option<(Vec<IntegerLayer>, SharingStrategy)> {
    let bytes = b64_decode(blob)?;
    let mut r = Reader {
        bytes: &bytes,
        pos: 0,
    };
    if r.byte()? != CODEC_VERSION {
        return None;
    }
    let sharing = match r.byte()? {
        0 => SharingStrategy::None,
        1 => SharingStrategy::SharedPerInput,
        _ => return None,
    };
    let layer_count = r.len_capped()?;
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let weight_bits = r.byte()?;
        let mut scale_bits = [0u8; 4];
        for slot in &mut scale_bits {
            *slot = r.byte()?;
        }
        let scale = f32::from_bits(u32::from_le_bytes(scale_bits));
        let rows = r.len_capped()?;
        let mut codes = Vec::with_capacity(rows);
        for _ in 0..rows {
            let cols = r.len_capped()?;
            let mut row = Vec::with_capacity(cols);
            for _ in 0..cols {
                row.push(r.zigzag()?);
            }
            codes.push(row);
        }
        let biases = r.len_capped()?;
        let mut bias_codes = Vec::with_capacity(biases);
        for _ in 0..biases {
            bias_codes.push(r.zigzag()?);
        }
        layers.push(IntegerLayer {
            codes,
            bias_codes,
            scale,
            weight_bits,
        });
    }
    (r.pos == bytes.len()).then_some((layers, sharing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn layer(codes: Vec<Vec<i64>>, bias: Vec<i64>, scale: f32, bits: u8) -> IntegerLayer {
        IntegerLayer {
            codes,
            bias_codes: bias,
            scale,
            weight_bits: bits,
        }
    }

    #[test]
    fn artifacts_round_trip_exactly() {
        let layers = vec![
            layer(
                vec![vec![0, -1, 7, -128], vec![3, 3, 3, 3]],
                vec![-5, 12],
                0.03125,
                5,
            ),
            layer(
                vec![vec![i64::MAX, i64::MIN + 1]],
                vec![0],
                f32::MIN_POSITIVE,
                8,
            ),
        ];
        for sharing in [SharingStrategy::None, SharingStrategy::SharedPerInput] {
            let blob = encode_artifacts(&layers, sharing);
            let (back, back_sharing) = decode_artifacts(&blob).expect("decode");
            assert_eq!(back, layers);
            assert_eq!(back_sharing, sharing);
        }
    }

    #[test]
    fn empty_layer_list_round_trips() {
        let blob = encode_artifacts(&[], SharingStrategy::None);
        let (layers, sharing) = decode_artifacts(&blob).unwrap();
        assert!(layers.is_empty());
        assert_eq!(sharing, SharingStrategy::None);
    }

    #[test]
    fn corrupt_blobs_decode_to_none() {
        assert_eq!(decode_artifacts("not base64 !!!"), None);
        assert_eq!(decode_artifacts(""), None);
        // Valid base64, wrong version byte.
        assert_eq!(decode_artifacts(&b64_encode(&[99, 0, 0])), None);
        // Truncated blob.
        let blob = encode_artifacts(
            &[layer(vec![vec![1, 2, 3]], vec![4], 1.0, 4)],
            SharingStrategy::None,
        );
        assert_eq!(decode_artifacts(&blob[..blob.len() - 2]), None);
        // Trailing garbage is rejected, not silently ignored.
        let mut padded = b64_decode(&blob).unwrap();
        padded.push(0);
        assert_eq!(decode_artifacts(&b64_encode(&padded)), None);
    }

    #[test]
    fn overlong_varints_are_rejected_not_truncated() {
        // Hand-built blob: one layer, one 1x1 code whose varint is 10 bytes
        // with payload above bit 63 — corrupt, must decode to None rather
        // than silently truncate to a wrong code.
        let mut bytes = vec![CODEC_VERSION, 0];
        push_varint(&mut bytes, 1); // layer count
        bytes.push(4); // weight_bits
        bytes.extend_from_slice(&1.0f32.to_bits().to_le_bytes());
        push_varint(&mut bytes, 1); // rows
        push_varint(&mut bytes, 1); // cols
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]);
        push_varint(&mut bytes, 0); // bias count
        assert_eq!(decode_artifacts(&b64_encode(&bytes)), None);

        // The exact u64::MAX zigzag encoding (10th byte == 0x01) still works.
        let layers = vec![layer(vec![vec![i64::MIN]], vec![], 1.0, 8)];
        let blob = encode_artifacts(&layers, SharingStrategy::None);
        assert_eq!(
            decode_artifacts(&blob),
            Some((layers, SharingStrategy::None))
        );
    }

    #[test]
    fn encoding_is_much_smaller_than_json_numbers() {
        let codes: Vec<Vec<i64>> = (0..25)
            .map(|n| {
                (0..11)
                    .map(|i| ((n * 31 + i * 17) % 31) as i64 - 15)
                    .collect()
            })
            .collect();
        let layers = vec![layer(codes, vec![1; 25], 0.25, 5)];
        let blob = encode_artifacts(&layers, SharingStrategy::None);
        let json_size = format!("{:?}", layers[0].codes).len();
        assert!(
            blob.len() * 2 < json_size,
            "blob {} bytes vs json-ish {} bytes",
            blob.len(),
            json_size
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_layers_round_trip(
            raw in proptest::collection::vec(
                (
                    proptest::collection::vec(
                        proptest::collection::vec(-70000i64..70000, 0..9),
                        0..6,
                    ),
                    proptest::collection::vec(-70000i64..70000, 0..6),
                    -1000.0f32..1000.0,
                    2u8..9,
                ),
                0..4,
            ),
            shared in 0u8..2,
        ) {
            let layers: Vec<IntegerLayer> = raw
                .into_iter()
                .map(|(codes, bias, scale, bits)| layer(codes, bias, scale, bits))
                .collect();
            let sharing = if shared == 1 {
                SharingStrategy::SharedPerInput
            } else {
                SharingStrategy::None
            };
            let blob = encode_artifacts(&layers, sharing);
            let decoded = decode_artifacts(&blob);
            prop_assert_eq!(decoded, Some((layers, sharing)));
        }
    }
}
