//! The [`StoreBackend`] trait: one interface every persistence tier of the
//! evaluation store implements.
//!
//! Records are content-addressed: the pair `(baseline fingerprint,
//! [`EvalKey`])` fully identifies an evaluation, and the dataset name is a
//! human-readable shard label (it selects the record log a fingerprint's
//! records live in, but carries no scientific meaning — the fingerprint does).
//! Backends also store small named *documents* (NSGA-II checkpoints, campaign
//! completion markers), so every artifact a resumable search produces travels
//! through the same abstraction — and therefore works identically against a
//! local directory, an in-memory test store, a remote `pmlp-serve` instance
//! or a tiered composition of the three.

use crate::engine::EvalKey;
use crate::error::CoreError;
use crate::store::EvalRecord;
use std::path::PathBuf;

/// What a backend replayed for one `(name, fingerprint)` record log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanOutcome {
    /// Every surviving record, in append order.
    pub records: Vec<EvalRecord>,
    /// Records that had to be dropped (truncated tail, garbled line).
    pub dropped: usize,
}

/// Fault-tolerance counters a backend accumulated over its lifetime:
/// retries against a remote tier, circuit-breaker transitions, and the
/// replay journal that guarantees no append is silently lost while a remote
/// is down. All zeros for purely local backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Remote request attempts beyond the first (bounded-backoff retries).
    pub remote_retries: usize,
    /// Operations that ultimately failed with a *transient* error
    /// (connect/timeout/reset/5xx) after exhausting their retry budget.
    pub transient_errors: usize,
    /// Operations rejected with a *permanent* error (4xx, protocol garbage)
    /// — never retried, dropped on the spot.
    pub permanent_errors: usize,
    /// Circuit-breaker transitions into the open (remote shunned) state.
    pub breaker_opens: usize,
    /// Circuit-breaker recoveries (half-open probe succeeded, remote
    /// rejoined).
    pub breaker_recoveries: usize,
    /// Records and documents captured by the replay journal while the remote
    /// was unreachable.
    pub journaled_records: usize,
    /// Journal entries successfully replayed to a rejoined remote.
    pub replayed_records: usize,
    /// Journal entries evicted because the journal hit its capacity bound
    /// during an extended outage (the local tier still holds them).
    pub journal_dropped: usize,
}

impl ResilienceStats {
    /// Field-wise sum of two counter sets (e.g. a tiered store's own breaker
    /// counters merged with its remote client's retry counters).
    #[must_use]
    pub fn merge(self, other: ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            remote_retries: self.remote_retries + other.remote_retries,
            transient_errors: self.transient_errors + other.transient_errors,
            permanent_errors: self.permanent_errors + other.permanent_errors,
            breaker_opens: self.breaker_opens + other.breaker_opens,
            breaker_recoveries: self.breaker_recoveries + other.breaker_recoveries,
            journaled_records: self.journaled_records + other.journaled_records,
            replayed_records: self.replayed_records + other.replayed_records,
            journal_dropped: self.journal_dropped + other.journal_dropped,
        }
    }
}

/// A persistence tier of the evaluation store.
///
/// Implementations in this workspace:
///
/// * [`LocalJsonlBackend`](crate::store::LocalJsonlBackend) — the append-only
///   JSONL directory (the historical [`EvalStore`](crate::store::EvalStore)
///   format, bit-for-bit),
/// * [`MemoryBackend`](crate::store::MemoryBackend) — an in-process map, for
///   tests and for the `pmlp-serve` server's default state,
/// * [`RemoteBackend`](crate::store::RemoteBackend) — an HTTP/1.1 client for
///   a `pmlp-serve` instance,
/// * [`TieredStore`](crate::store::TieredStore) — local-as-write-through
///   cache composed over a remote tier.
///
/// All methods are `&self`: backends are internally synchronized and shared
/// by every worker thread of an engine.
pub trait StoreBackend: Send + Sync {
    /// Human-readable location of this backend, for logs and stats.
    fn describe(&self) -> String;

    /// Replays every record stored under `(name, fingerprint)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backing storage cannot be read.
    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError>;

    /// Fetches the record for one key, `None` when it was never stored.
    ///
    /// The default implementation scans; backends with an index override it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backing storage cannot be read.
    fn get(
        &self,
        name: &str,
        fingerprint: u64,
        key: &EvalKey,
    ) -> Result<Option<EvalRecord>, CoreError> {
        Ok(self
            .scan(name, fingerprint)?
            .records
            .into_iter()
            .rev()
            .find(|record| record.key == *key))
    }

    /// Appends one record under `(name, fingerprint)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the record cannot be persisted.
    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError>;

    /// Appends many records under `(name, fingerprint)` as one logical batch.
    ///
    /// Backends whose append carries fixed per-call overhead override this to
    /// pay that overhead once per batch: the local tier turns a batch into a
    /// single flushed write, the remote tier into a single HTTP `POST`. The
    /// default loops [`StoreBackend::append`], so correctness never depends
    /// on the override — only throughput does.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the records cannot be persisted; a
    /// failed batch may have been partially applied (replay compaction and
    /// last-write-wins merging make partial batches harmless).
    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        for record in records {
            self.append(name, fingerprint, record)?;
        }
        Ok(())
    }

    /// Merges duplicate keys in the `(name, fingerprint)` record log (last
    /// write wins), returning how many records were removed. A no-op for
    /// backends without duplicate storage.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the log cannot be rewritten.
    fn compact(&self, name: &str, fingerprint: u64) -> Result<usize, CoreError> {
        let _ = (name, fingerprint);
        Ok(0)
    }

    /// Reads a named document (checkpoint, completion marker); `None` when it
    /// does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backing storage fails (a missing
    /// document is `Ok(None)`, not an error).
    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError>;

    /// Reads a named document, bypassing any read-through caching: the
    /// answer reflects the latest state of the *authoritative* tier. For
    /// single-tier backends this is exactly [`StoreBackend::get_doc`]; a
    /// tiered composition consults its remote leg first and only degrades
    /// to the (possibly stale) local copy when the remote is unreachable.
    ///
    /// Coordination documents that several workers contend on — campaign
    /// leases above all — MUST be read through this: a lease read from a
    /// local write-through cache would always show this worker as the
    /// holder, defeating the claim read-back.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backing storage fails (a
    /// missing document is `Ok(None)`, not an error).
    fn get_doc_fresh(&self, name: &str) -> Result<Option<String>, CoreError> {
        self.get_doc(name)
    }

    /// Writes (atomically replacing) a named document.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the document cannot be committed.
    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError>;

    /// Deletes a named document; deleting a missing document is not an error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backing storage fails.
    fn remove_doc(&self, name: &str) -> Result<(), CoreError>;

    /// Lists the names of every stored document starting with `prefix`,
    /// sorted lexicographically (`""` lists everything). This is the
    /// discovery primitive of the distributed-search plane: island elite
    /// fronts and campaign leases are documents published under structured
    /// name prefixes, and workers find each other's documents through it.
    ///
    /// The default returns an empty list so purely record-oriented backends
    /// (and external implementations) keep compiling; every backend in this
    /// workspace overrides it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backing storage cannot be read.
    fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        let _ = prefix;
        Ok(Vec::new())
    }

    /// Filesystem path of the `(name, fingerprint)` record log, for backends
    /// that have one (`None` for memory and remote tiers).
    fn record_path(&self, name: &str, fingerprint: u64) -> Option<PathBuf> {
        let _ = (name, fingerprint);
        None
    }

    /// Fault-tolerance counters of this backend, `None` for tiers that have
    /// no remote leg (and therefore nothing to retry or journal).
    fn resilience(&self) -> Option<ResilienceStats> {
        None
    }

    /// Forces buffered state down to durable storage (fsync of cached append
    /// handles). A no-op for tiers without buffered file handles; called on
    /// graceful server shutdown and by explicit durability policies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backing storage fails to sync.
    fn flush(&self) -> Result<(), CoreError> {
        Ok(())
    }
}

/// Shared tiers: one backend instance (and its internal state — degraded
/// remotes, cached append handles, counters) can serve many owners through
/// an `Arc`.
impl<T: StoreBackend + ?Sized> StoreBackend for std::sync::Arc<T> {
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn scan(&self, name: &str, fingerprint: u64) -> Result<ScanOutcome, CoreError> {
        (**self).scan(name, fingerprint)
    }
    fn get(
        &self,
        name: &str,
        fingerprint: u64,
        key: &EvalKey,
    ) -> Result<Option<EvalRecord>, CoreError> {
        (**self).get(name, fingerprint, key)
    }
    fn append(&self, name: &str, fingerprint: u64, record: &EvalRecord) -> Result<(), CoreError> {
        (**self).append(name, fingerprint, record)
    }
    fn append_batch(
        &self,
        name: &str,
        fingerprint: u64,
        records: &[EvalRecord],
    ) -> Result<(), CoreError> {
        (**self).append_batch(name, fingerprint, records)
    }
    fn compact(&self, name: &str, fingerprint: u64) -> Result<usize, CoreError> {
        (**self).compact(name, fingerprint)
    }
    fn get_doc(&self, name: &str) -> Result<Option<String>, CoreError> {
        (**self).get_doc(name)
    }
    fn get_doc_fresh(&self, name: &str) -> Result<Option<String>, CoreError> {
        (**self).get_doc_fresh(name)
    }
    fn put_doc(&self, name: &str, contents: &str) -> Result<(), CoreError> {
        (**self).put_doc(name, contents)
    }
    fn remove_doc(&self, name: &str) -> Result<(), CoreError> {
        (**self).remove_doc(name)
    }
    fn list_docs(&self, prefix: &str) -> Result<Vec<String>, CoreError> {
        (**self).list_docs(prefix)
    }
    fn record_path(&self, name: &str, fingerprint: u64) -> Option<PathBuf> {
        (**self).record_path(name, fingerprint)
    }
    fn resilience(&self) -> Option<ResilienceStats> {
        (**self).resilience()
    }
    fn flush(&self) -> Result<(), CoreError> {
        (**self).flush()
    }
}

/// Keeps the **last** record per key (later appends supersede earlier ones),
/// preserving first-appearance order; returns the merged records and how
/// many duplicates were removed. The single merge policy every backend's
/// `compact` shares.
pub(crate) fn merge_duplicate_keys(records: Vec<EvalRecord>) -> (Vec<EvalRecord>, usize) {
    let mut order: Vec<EvalKey> = Vec::new();
    let mut latest: std::collections::HashMap<EvalKey, EvalRecord> =
        std::collections::HashMap::new();
    let total = records.len();
    for record in records {
        if !latest.contains_key(&record.key) {
            order.push(record.key);
        }
        latest.insert(record.key, record);
    }
    let merged: Vec<EvalRecord> = order
        .into_iter()
        .map(|key| latest.remove(&key).expect("ordered key"))
        .collect();
    let removed = total - merged.len();
    (merged, removed)
}

/// `true` when `name` is safe to use as a document / shard label on every
/// backend: non-empty, no path separators, no parent-directory escapes, only
/// characters that survive both a filesystem and a URL path segment.
pub fn safe_component(name: &str) -> bool {
    !name.is_empty()
        && name != "."
        && name != ".."
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Canonical shard label of a dataset name: lowercase, spaces and slashes
/// replaced, so `"Red Wine"` and `"red-wine"` address the same record log on
/// every backend.
pub fn sanitize_name(name: &str) -> String {
    name.to_lowercase().replace([' ', '/'], "-")
}

/// Validates a document name, returning a [`CoreError::Store`] for anything
/// that could escape the store's namespace.
///
/// # Errors
///
/// Returns [`CoreError::Store`] when the name is empty or contains path
/// separators / parent references / non-portable characters.
pub fn check_doc_name(name: &str) -> Result<(), CoreError> {
    if safe_component(name) {
        Ok(())
    } else {
        Err(CoreError::Store {
            context: format!("unsafe document name `{name}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_components_reject_path_escapes() {
        assert!(safe_component("done_seeds_0123abcd.json"));
        assert!(safe_component("fig2_whitewine_nsga2.json"));
        assert!(!safe_component(""));
        assert!(!safe_component(".."));
        assert!(!safe_component("a/b"));
        assert!(!safe_component("a\\b"));
        assert!(!safe_component("a b"));
    }

    #[test]
    fn sanitized_names_are_safe() {
        assert_eq!(sanitize_name("Red Wine"), "red-wine");
        assert_eq!(sanitize_name("GasId"), "gasid");
        assert!(safe_component(&sanitize_name("Red Wine")));
        assert!(check_doc_name("done_x.json").is_ok());
        assert!(check_doc_name("../evil").is_err());
    }
}
