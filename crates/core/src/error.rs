//! Error type for the search / experiment layer.

use std::fmt;

/// Error returned by baselines, evaluation and search.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A search or experiment configuration is invalid.
    InvalidConfig {
        /// Description of the problem.
        context: String,
    },
    /// Error from the neural-network substrate.
    Nn {
        /// Forwarded description.
        context: String,
    },
    /// Error from the dataset substrate.
    Data {
        /// Forwarded description.
        context: String,
    },
    /// Error from the minimization passes.
    Minimize {
        /// Forwarded description.
        context: String,
    },
    /// Error from the hardware model.
    Hw {
        /// Forwarded description.
        context: String,
    },
    /// Error from the persistent evaluation store or a checkpoint file.
    Store {
        /// Description of the I/O or format problem.
        context: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { context } => write!(f, "invalid configuration: {context}"),
            CoreError::Nn { context } => write!(f, "network error: {context}"),
            CoreError::Data { context } => write!(f, "dataset error: {context}"),
            CoreError::Minimize { context } => write!(f, "minimization error: {context}"),
            CoreError::Hw { context } => write!(f, "hardware model error: {context}"),
            CoreError::Store { context } => write!(f, "persistence error: {context}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<pmlp_nn::NnError> for CoreError {
    fn from(e: pmlp_nn::NnError) -> Self {
        CoreError::Nn {
            context: e.to_string(),
        }
    }
}

impl From<pmlp_data::DataError> for CoreError {
    fn from(e: pmlp_data::DataError) -> Self {
        CoreError::Data {
            context: e.to_string(),
        }
    }
}

impl From<pmlp_minimize::MinimizeError> for CoreError {
    fn from(e: pmlp_minimize::MinimizeError) -> Self {
        CoreError::Minimize {
            context: e.to_string(),
        }
    }
}

impl From<pmlp_hw::HwError> for CoreError {
    fn from(e: pmlp_hw::HwError) -> Self {
        CoreError::Hw {
            context: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: CoreError = pmlp_nn::NnError::InvalidConfig {
            context: "abc".into(),
        }
        .into();
        assert!(e.to_string().contains("abc"));
        let e: CoreError = pmlp_hw::HwError::InvalidBitWidth {
            context: "xyz".into(),
        }
        .into();
        assert!(e.to_string().contains("xyz"));
        let e: CoreError = pmlp_data::DataError::InvalidSpec {
            context: "spec".into(),
        }
        .into();
        assert!(e.to_string().contains("spec"));
        let e: CoreError = pmlp_minimize::MinimizeError::InvalidConfig {
            context: "cfg".into(),
        }
        .into();
        assert!(e.to_string().contains("cfg"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
