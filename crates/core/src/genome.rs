//! Genome encoding of the hardware-aware genetic algorithm.
//!
//! A genome is one point of the joint minimization space: weight bit-width,
//! unstructured sparsity and clusters-per-input. Each gene can also be
//! "disabled", meaning the corresponding technique is not applied at all, so
//! the GA can rediscover the standalone techniques as special cases.

use pmlp_minimize::MinimizationConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Admissible ranges of the three genes, matching the paper's sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenomeSpace {
    /// Allowed weight bit-widths (paper: 2–7).
    pub weight_bits: Vec<u8>,
    /// Allowed sparsity levels (paper: 0.2–0.6).
    pub sparsities: Vec<f64>,
    /// Allowed clusters-per-input counts.
    pub cluster_counts: Vec<usize>,
    /// Probability that a technique is enabled when sampling a random genome.
    pub enable_probability: f64,
}

impl Default for GenomeSpace {
    fn default() -> Self {
        GenomeSpace {
            weight_bits: (2..=7).collect(),
            sparsities: vec![0.2, 0.3, 0.4, 0.5, 0.6],
            cluster_counts: vec![2, 3, 4, 6, 8],
            enable_probability: 0.7,
        }
    }
}

/// One candidate of the GA population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    /// Quantization bit-width (`None` = quantization disabled, keep 8-bit).
    pub weight_bits: Option<u8>,
    /// Pruning sparsity (`None` = pruning disabled).
    pub sparsity: Option<f64>,
    /// Clusters per input (`None` = clustering disabled).
    pub clusters: Option<usize>,
}

impl Genome {
    /// The baseline genome (no technique enabled).
    pub fn baseline() -> Self {
        Genome {
            weight_bits: None,
            sparsity: None,
            clusters: None,
        }
    }

    /// Samples a random genome from `space`.
    pub fn random<R: Rng + ?Sized>(space: &GenomeSpace, rng: &mut R) -> Self {
        let pick_bits = rng.gen_bool(space.enable_probability);
        let pick_sparsity = rng.gen_bool(space.enable_probability);
        let pick_clusters = rng.gen_bool(space.enable_probability);
        Genome {
            weight_bits: if pick_bits && !space.weight_bits.is_empty() {
                Some(space.weight_bits[rng.gen_range(0..space.weight_bits.len())])
            } else {
                None
            },
            sparsity: if pick_sparsity && !space.sparsities.is_empty() {
                Some(space.sparsities[rng.gen_range(0..space.sparsities.len())])
            } else {
                None
            },
            clusters: if pick_clusters && !space.cluster_counts.is_empty() {
                Some(space.cluster_counts[rng.gen_range(0..space.cluster_counts.len())])
            } else {
                None
            },
        }
    }

    /// Uniform crossover: each gene is inherited from either parent with equal
    /// probability.
    pub fn crossover<R: Rng + ?Sized>(&self, other: &Genome, rng: &mut R) -> Genome {
        Genome {
            weight_bits: if rng.gen_bool(0.5) {
                self.weight_bits
            } else {
                other.weight_bits
            },
            sparsity: if rng.gen_bool(0.5) {
                self.sparsity
            } else {
                other.sparsity
            },
            clusters: if rng.gen_bool(0.5) {
                self.clusters
            } else {
                other.clusters
            },
        }
    }

    /// Mutation: each gene is independently re-sampled (or toggled on/off)
    /// with probability `rate`.
    pub fn mutate<R: Rng + ?Sized>(&self, space: &GenomeSpace, rate: f64, rng: &mut R) -> Genome {
        let mut out = *self;
        if rng.gen_bool(rate) {
            out.weight_bits =
                if rng.gen_bool(space.enable_probability) && !space.weight_bits.is_empty() {
                    Some(space.weight_bits[rng.gen_range(0..space.weight_bits.len())])
                } else {
                    None
                };
        }
        if rng.gen_bool(rate) {
            out.sparsity = if rng.gen_bool(space.enable_probability) && !space.sparsities.is_empty()
            {
                Some(space.sparsities[rng.gen_range(0..space.sparsities.len())])
            } else {
                None
            };
        }
        if rng.gen_bool(rate) {
            out.clusters =
                if rng.gen_bool(space.enable_probability) && !space.cluster_counts.is_empty() {
                    Some(space.cluster_counts[rng.gen_range(0..space.cluster_counts.len())])
                } else {
                    None
                };
        }
        out
    }

    /// Converts the genome into a [`MinimizationConfig`] (input bits and
    /// fine-tuning budget are supplied by the evaluation context).
    pub fn to_config(self) -> MinimizationConfig {
        let mut config = MinimizationConfig::default();
        if let Some(b) = self.weight_bits {
            config = config.with_weight_bits(b);
        }
        if let Some(s) = self.sparsity {
            config = config.with_sparsity(s);
        }
        if let Some(c) = self.clusters {
            config = config.with_clusters(c);
        }
        config
    }

    /// Inverse of [`Genome::to_config`]: reconstructs the genome a
    /// minimization config encodes — how imported island migrants re-enter a
    /// population as first-class individuals.
    pub fn from_config(config: &MinimizationConfig) -> Self {
        Genome {
            weight_bits: config.weight_bits,
            sparsity: config.sparsity,
            clusters: config.clusters_per_input,
        }
    }

    /// Stable key for deduplication within a GA population.
    pub fn key(&self) -> (u8, u32, usize) {
        (
            self.weight_bits.unwrap_or(0),
            self.sparsity.map(sparsity_millis).unwrap_or(u32::MAX),
            self.clusters.unwrap_or(0),
        )
    }
}

/// Canonical 1e-3-grid encoding of a sparsity value, shared by genome
/// deduplication keys and the engine's cache key so the two layers always
/// agree on which configurations are identical.
pub fn sparsity_millis(sparsity: f64) -> u32 {
    (sparsity * 1000.0).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_genomes_stay_inside_the_space() {
        let space = GenomeSpace::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let g = Genome::random(&space, &mut rng);
            if let Some(b) = g.weight_bits {
                assert!(space.weight_bits.contains(&b));
            }
            if let Some(s) = g.sparsity {
                assert!(space.sparsities.contains(&s));
            }
            if let Some(c) = g.clusters {
                assert!(space.cluster_counts.contains(&c));
            }
        }
    }

    #[test]
    fn random_genomes_are_diverse() {
        let space = GenomeSpace::default();
        let mut rng = StdRng::seed_from_u64(2);
        let keys: std::collections::BTreeSet<_> = (0..100)
            .map(|_| Genome::random(&space, &mut rng).key())
            .collect();
        assert!(
            keys.len() > 20,
            "only {} distinct genomes out of 100",
            keys.len()
        );
    }

    #[test]
    fn crossover_only_mixes_parent_genes() {
        let a = Genome {
            weight_bits: Some(3),
            sparsity: Some(0.2),
            clusters: None,
        };
        let b = Genome {
            weight_bits: Some(6),
            sparsity: None,
            clusters: Some(4),
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let child = a.crossover(&b, &mut rng);
            assert!(child.weight_bits == a.weight_bits || child.weight_bits == b.weight_bits);
            assert!(child.sparsity == a.sparsity || child.sparsity == b.sparsity);
            assert!(child.clusters == a.clusters || child.clusters == b.clusters);
        }
    }

    #[test]
    fn zero_mutation_rate_is_identity() {
        let space = GenomeSpace::default();
        let mut rng = StdRng::seed_from_u64(4);
        let g = Genome::random(&space, &mut rng);
        assert_eq!(g.mutate(&space, 0.0, &mut rng), g);
    }

    #[test]
    fn full_mutation_rate_changes_something_eventually() {
        let space = GenomeSpace::default();
        let mut rng = StdRng::seed_from_u64(5);
        let g = Genome {
            weight_bits: Some(2),
            sparsity: Some(0.2),
            clusters: Some(2),
        };
        let changed = (0..20).any(|_| g.mutate(&space, 1.0, &mut rng) != g);
        assert!(changed);
    }

    #[test]
    fn to_config_round_trips_gene_values() {
        let g = Genome {
            weight_bits: Some(4),
            sparsity: Some(0.4),
            clusters: Some(3),
        };
        let c = g.to_config();
        assert_eq!(c.weight_bits, Some(4));
        assert_eq!(c.sparsity, Some(0.4));
        assert_eq!(c.clusters_per_input, Some(3));
        let b = Genome::baseline().to_config();
        assert!(b.is_baseline());
    }

    #[test]
    fn keys_distinguish_distinct_genomes() {
        let a = Genome {
            weight_bits: Some(4),
            sparsity: Some(0.4),
            clusters: Some(3),
        };
        let b = Genome {
            weight_bits: Some(4),
            sparsity: Some(0.4),
            clusters: Some(4),
        };
        let c = Genome::baseline();
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }
}
