//! The un-minimized bespoke baseline (Mubarik et al., MICRO 2020) that every
//! figure normalizes against.
//!
//! Training and characterizing a baseline is the fixed up-front cost of every
//! experiment: epochs of full-precision training plus (at full effort) one
//! gate-level synthesis of the reference circuit. With a store attached,
//! [`BaselineDesign::train_cached`] persists the trained model and its
//! measured characterization as a store document keyed by the exact training
//! budget, so resumed campaigns, figure re-runs and fleet workers that steal
//! a dataset all skip straight past it. Any change to the budget (or the
//! dataset/seed) changes the document fingerprint and self-invalidates the
//! cache.

use crate::bridge::{estimate_area, synthesize_area, SynthesisSummary};
use crate::error::CoreError;
use crate::objective::{integer_accuracy, AccuracyTier, SynthesisTier};
use crate::store::StoreBackend;
use pmlp_data::{quantize_features, DatasetDescriptor, UciDataset};
use pmlp_hw::{CellLibrary, SharingStrategy};
use pmlp_minimize::{minimize, MinimizationConfig};
use pmlp_nn::{Activation, Dataset, Mlp, MlpBuilder, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};

/// Training budget of the float baseline model.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Epochs of full-precision training.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Fraction of samples used for training (rest is the held-out test set).
    pub train_fraction: f64,
    /// Input bit-width of the bespoke circuit.
    pub input_bits: u8,
    /// Hardware model used to characterize the baseline circuit. Defaults to
    /// full gate-level synthesis (the baseline is the reference point and a
    /// one-time cost); quick/smoke budgets switch to the bit-identical
    /// analytic fast path and lean on the equivalence test suite instead.
    pub synthesis_tier: SynthesisTier,
    /// Which arithmetic scores the baseline's (and, by default, every
    /// candidate's) test accuracy. Defaults to
    /// [`AccuracyTier::Integer`] — the exact arithmetic of the bespoke
    /// circuit; [`AccuracyTier::Float`] keeps the fake-quantized `f32` model
    /// for ablations.
    pub accuracy_tier: AccuracyTier,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            epochs: 60,
            batch_size: 32,
            learning_rate: 0.01,
            train_fraction: 0.75,
            input_bits: 4,
            synthesis_tier: SynthesisTier::FullSynthesis,
            accuracy_tier: AccuracyTier::default(),
        }
    }
}

/// Magic string of cached baseline-characterization documents.
const BASELINE_MAGIC: &str = "pmlp-baseline-cache";

/// Format version of cached baseline-characterization documents.
const BASELINE_VERSION: u32 = 1;

/// Identity of a baseline training job: dataset, seed and the full training
/// budget. Any change to any of them changes the fingerprint, which is what
/// keys (and invalidates) the cached characterization document.
fn budget_fingerprint(dataset: UciDataset, seed: u64, config: &BaselineConfig) -> u64 {
    let mut fp = crate::store::FingerprintHasher::new();
    fp.mix_bytes(dataset.to_string().as_bytes());
    fp.mix_u64(seed);
    fp.mix_u64(config.epochs as u64);
    fp.mix_u64(config.batch_size as u64);
    fp.mix_u64(u64::from(config.learning_rate.to_bits()));
    fp.mix_u64(config.train_fraction.to_bits());
    fp.mix_u64(u64::from(config.input_bits));
    fp.mix_u64(match config.synthesis_tier {
        SynthesisTier::FullSynthesis => 0xF011,
        SynthesisTier::FastPath => 0xFA57,
    });
    fp.mix_u64(match config.accuracy_tier {
        AccuracyTier::Float => 0xF10A7,
        AccuracyTier::Integer => 0x1237,
    });
    fp.finish()
}

/// Document name of the cached baseline characterization for
/// `(dataset, seed, config)` — how [`BaselineDesign::train_cached`] keys its
/// store documents (and how operators can spot them in a store directory).
pub fn baseline_doc_name(dataset: UciDataset, seed: u64, config: &BaselineConfig) -> String {
    format!(
        "baseline_{}_{:016x}.json",
        dataset.to_string().to_lowercase(),
        budget_fingerprint(dataset, seed, config)
    )
}

/// A trained baseline classifier together with its bespoke-circuit
/// characterization: the reference point of all normalized results.
#[derive(Debug, Clone)]
pub struct BaselineDesign {
    /// Which dataset this baseline belongs to.
    pub dataset: UciDataset,
    /// Descriptor of the dataset (shapes, baseline topology).
    pub descriptor: DatasetDescriptor,
    /// The float-trained model.
    pub model: Mlp,
    /// Training split (used for minimization fine-tuning).
    pub train: Dataset,
    /// Held-out test split (used for all reported accuracies).
    pub test: Dataset,
    /// The test split with features snapped onto the circuit's unsigned
    /// `input_bits` grid — exactly what the hardware's primary inputs carry.
    /// Both accuracy tiers score on this view (the float tier in `f32`, the
    /// integer tier via the equivalent integer rows in
    /// [`BaselineDesign::test_rows`]).
    pub quantized_test: Dataset,
    /// The quantized test features as flattened sample-major integer grid
    /// values, the input format of [`pmlp_hw::IntInferEngine`].
    pub test_rows: Vec<u16>,
    /// Which arithmetic scored [`BaselineDesign::accuracy`]; evaluation
    /// contexts default to the same tier.
    pub accuracy_tier: AccuracyTier,
    /// Test accuracy of the 8-bit baseline bespoke implementation.
    pub accuracy: f64,
    /// Synthesis results of the 8-bit baseline bespoke circuit.
    pub synthesis: SynthesisSummary,
    /// Cell library used for synthesis.
    pub library: CellLibrary,
    /// Input bit-width of the bespoke circuit.
    pub input_bits: u8,
    /// Seed used for data generation and training.
    pub seed: u64,
}

impl BaselineDesign {
    /// Generates the dataset, trains the float MLP with the default budget and
    /// synthesizes the 8-bit baseline bespoke circuit.
    ///
    /// # Errors
    ///
    /// Propagates dataset, training and synthesis errors.
    pub fn train(dataset: UciDataset, seed: u64) -> Result<Self, CoreError> {
        Self::train_with(dataset, seed, &BaselineConfig::default())
    }

    /// Same as [`BaselineDesign::train`] with an explicit training budget.
    ///
    /// # Errors
    ///
    /// Propagates dataset, training and synthesis errors.
    pub fn train_with(
        dataset: UciDataset,
        seed: u64,
        config: &BaselineConfig,
    ) -> Result<Self, CoreError> {
        let descriptor = dataset.descriptor();
        let data = descriptor.generate(seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
        let (train, test) = data.stratified_split(config.train_fraction, &mut rng)?;

        let mut model = MlpBuilder::new(descriptor.feature_count)
            .hidden(descriptor.hidden_neurons, Activation::ReLU)
            .output(descriptor.class_count)
            .build(&mut rng)?;
        let trainer = Trainer::new(TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            learning_rate: config.learning_rate,
            // The baseline discards the training report and tracks the best
            // model on the held-out test split, so the per-epoch
            // full-train-set accuracy pass is pure overhead.
            track_train_accuracy: false,
            ..TrainConfig::default()
        });
        trainer.fit(&mut model, &train, Some(&test), &mut rng)?;

        let library = CellLibrary::egt();
        // The circuit's view of the test split: features snapped onto the
        // unsigned input grid, plus the same grid points as raw integers for
        // the pure-integer engine.
        let mut quantized_test = test.clone();
        quantize_features(&mut quantized_test, config.input_bits)?;
        let test_rows = pmlp_hw::quantize_rows(test.features().as_slice(), config.input_bits)
            .map_err(CoreError::from)?;
        // The baseline bespoke MLP: 8-bit post-training quantized weights, no
        // pruning, no clustering, no multiplier sharing.
        let baseline_cfg = MinimizationConfig::baseline().with_input_bits(config.input_bits);
        let minimized = minimize(&model, &train, Some(&test), &baseline_cfg, &mut rng)?;
        let accuracy = match config.accuracy_tier {
            AccuracyTier::Float => minimized.accuracy(&quantized_test),
            AccuracyTier::Integer => integer_accuracy(
                &minimized.integer_layers,
                config.input_bits,
                SharingStrategy::None,
                &test_rows,
                test.labels(),
            )?,
        };
        let synthesis = match config.synthesis_tier {
            SynthesisTier::FullSynthesis => synthesize_area(
                &minimized.integer_layers,
                config.input_bits,
                &library,
                SharingStrategy::None,
            )?,
            SynthesisTier::FastPath => estimate_area(
                &minimized.integer_layers,
                config.input_bits,
                &library,
                SharingStrategy::None,
            )?,
        };

        Ok(BaselineDesign {
            dataset,
            descriptor,
            model,
            train,
            test,
            quantized_test,
            test_rows,
            accuracy_tier: config.accuracy_tier,
            accuracy,
            synthesis,
            library,
            input_bits: config.input_bits,
            seed,
        })
    }

    /// Same as [`BaselineDesign::train_with`], backed by a baseline
    /// characterization cache in `backend` (no-op without one).
    ///
    /// On a cache hit — a document keyed by the exact `(dataset, seed,
    /// budget)` fingerprint — the trained model, accuracy and synthesis
    /// numbers are loaded verbatim and only the (cheap, deterministic) data
    /// splits are regenerated, skipping full-precision training and reference
    /// synthesis entirely. On a miss the baseline trains normally and the
    /// characterization is published for the next run (or the next fleet
    /// worker: a stolen dataset's baseline is already warm). Unreadable or
    /// mismatched documents fall back to training, never to an error.
    ///
    /// # Errors
    ///
    /// Propagates dataset, training, synthesis and store-write errors.
    pub fn train_cached(
        dataset: UciDataset,
        seed: u64,
        config: &BaselineConfig,
        backend: Option<&dyn StoreBackend>,
    ) -> Result<Self, CoreError> {
        let Some(backend) = backend else {
            return Self::train_with(dataset, seed, config);
        };
        let doc_name = baseline_doc_name(dataset, seed, config);
        let budget_fp = budget_fingerprint(dataset, seed, config);
        if let Some(design) =
            Self::load_cached(dataset, seed, config, backend, &doc_name, budget_fp)
        {
            return Ok(design);
        }
        let design = Self::train_with(dataset, seed, config)?;
        let value = crate::store::seal_envelope(
            BASELINE_MAGIC,
            BASELINE_VERSION,
            budget_fp,
            vec![
                ("model".into(), design.model.serialize_value()),
                ("accuracy".into(), design.accuracy.serialize_value()),
                ("synthesis".into(), design.synthesis.serialize_value()),
            ],
        );
        backend.put_doc(&doc_name, &value.render_pretty())?;
        Ok(design)
    }

    /// The cache-hit path of [`BaselineDesign::train_cached`]: `None` for a
    /// missing, unreadable or mismatched document (the caller trains instead).
    fn load_cached(
        dataset: UciDataset,
        seed: u64,
        config: &BaselineConfig,
        backend: &dyn StoreBackend,
        doc_name: &str,
        budget_fp: u64,
    ) -> Option<Self> {
        let text = backend.get_doc(doc_name).ok()??;
        let parsed = json::parse(&text).ok()?;
        let value =
            crate::store::check_envelope(&parsed, BASELINE_MAGIC, BASELINE_VERSION, budget_fp)?;
        let model = Mlp::deserialize_value(value.get("model")?).ok()?;
        let accuracy = match value.get("accuracy")? {
            Value::Number(n) => *n,
            _ => return None,
        };
        let synthesis = SynthesisSummary::deserialize_value(value.get("synthesis")?).ok()?;
        // The data views are deterministic functions of (dataset, seed,
        // train_fraction): regenerate them with the exact RNG stream the
        // training path uses, so a loaded design is indistinguishable from a
        // freshly trained one.
        let descriptor = dataset.descriptor();
        let data = descriptor.generate(seed).ok()?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
        let (train, test) = data
            .stratified_split(config.train_fraction, &mut rng)
            .ok()?;
        if model.topology()
            != vec![
                descriptor.feature_count,
                descriptor.hidden_neurons,
                descriptor.class_count,
            ]
        {
            return None;
        }
        let mut quantized_test = test.clone();
        quantize_features(&mut quantized_test, config.input_bits).ok()?;
        let test_rows =
            pmlp_hw::quantize_rows(test.features().as_slice(), config.input_bits).ok()?;
        Some(BaselineDesign {
            dataset,
            descriptor,
            model,
            train,
            test,
            quantized_test,
            test_rows,
            accuracy_tier: config.accuracy_tier,
            accuracy,
            synthesis,
            library: CellLibrary::egt(),
            input_bits: config.input_bits,
            seed,
        })
    }

    /// Baseline circuit area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.synthesis.area_mm2
    }

    /// Stable identity of this baseline, used by the persistent evaluation
    /// store to bind cached results to the exact reference design they were
    /// measured against.
    ///
    /// The fingerprint covers the dataset, data/training seed, circuit input
    /// precision, accuracy tier, model topology and the baseline's measured
    /// accuracy, area, power and gate count — any change to the training
    /// budget, the hardware model or the accuracy arithmetic changes the
    /// measured numbers and therefore the fingerprint, which invalidates
    /// stale store files without any explicit versioning bookkeeping.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::store::FingerprintHasher::new();
        fp.mix_bytes(self.dataset.to_string().as_bytes());
        fp.mix_u64(self.seed);
        fp.mix_u64(u64::from(self.input_bits));
        // Explicit tier tag: even an (unlikely) tier change that leaves every
        // measured number identical must not reuse cached scores.
        fp.mix_u64(match self.accuracy_tier {
            AccuracyTier::Float => 0xF10A7,
            AccuracyTier::Integer => 0x1237,
        });
        for width in self.model.topology() {
            fp.mix_u64(width as u64);
        }
        fp.mix_u64(self.accuracy.to_bits());
        fp.mix_u64(self.synthesis.area_mm2.to_bits());
        fp.mix_u64(self.synthesis.power_uw.to_bits());
        fp.mix_u64(self.synthesis.gate_count as u64);
        fp.finish()
    }

    /// Baseline test accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BaselineConfig {
        BaselineConfig {
            epochs: 12,
            ..BaselineConfig::default()
        }
    }

    #[test]
    fn seeds_baseline_trains_to_useful_accuracy() {
        let baseline = BaselineDesign::train_with(UciDataset::Seeds, 7, &quick_config()).unwrap();
        // Chance level is 1/3; the baseline must be clearly better.
        assert!(
            baseline.accuracy() > 0.6,
            "baseline accuracy {}",
            baseline.accuracy()
        );
        assert!(baseline.area_mm2() > 0.0);
        assert_eq!(baseline.descriptor.feature_count, 7);
        assert_eq!(baseline.model.topology(), vec![7, 10, 3]);
    }

    #[test]
    fn baseline_is_deterministic_for_a_seed() {
        let a = BaselineDesign::train_with(UciDataset::Seeds, 3, &quick_config()).unwrap();
        let b = BaselineDesign::train_with(UciDataset::Seeds, 3, &quick_config()).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.accuracy(), b.accuracy());
        assert_eq!(a.synthesis.gate_count, b.synthesis.gate_count);
    }

    #[test]
    fn train_cached_round_trips_through_the_store() {
        use crate::store::MemoryBackend;
        let backend = MemoryBackend::new();
        let config = quick_config();
        let trained =
            BaselineDesign::train_cached(UciDataset::Seeds, 9, &config, Some(&backend)).unwrap();
        let doc = baseline_doc_name(UciDataset::Seeds, 9, &config);
        assert!(backend.get_doc(&doc).unwrap().is_some(), "miss publishes");

        let loaded =
            BaselineDesign::train_cached(UciDataset::Seeds, 9, &config, Some(&backend)).unwrap();
        assert_eq!(loaded.model, trained.model);
        assert_eq!(loaded.accuracy(), trained.accuracy());
        assert_eq!(loaded.synthesis, trained.synthesis);
        assert_eq!(loaded.fingerprint(), trained.fingerprint());
        assert_eq!(loaded.test_rows, trained.test_rows);
        assert_eq!(loaded.train, trained.train);
        assert_eq!(loaded.quantized_test, trained.quantized_test);
    }

    #[test]
    fn cache_hits_load_the_document_instead_of_retraining() {
        use crate::store::MemoryBackend;
        let backend = MemoryBackend::new();
        let config = quick_config();
        let trained =
            BaselineDesign::train_cached(UciDataset::Seeds, 9, &config, Some(&backend)).unwrap();

        // Plant a sentinel accuracy inside the (otherwise valid) document: a
        // second run must surface the sentinel — proof it loaded the cache
        // rather than silently retraining.
        let doc = baseline_doc_name(UciDataset::Seeds, 9, &config);
        let text = backend.get_doc(&doc).unwrap().unwrap();
        let needle = format!("\"accuracy\": {}", trained.accuracy());
        let tampered = text.replacen(&needle, "\"accuracy\": 0.123456789", 1);
        assert_ne!(tampered, text, "sentinel must land in the document");
        backend.put_doc(&doc, &tampered).unwrap();

        let loaded =
            BaselineDesign::train_cached(UciDataset::Seeds, 9, &config, Some(&backend)).unwrap();
        assert!((loaded.accuracy() - 0.123456789).abs() < 1e-12);

        // A corrupt document falls back to training, never errors.
        backend.put_doc(&doc, "not json").unwrap();
        let retrained =
            BaselineDesign::train_cached(UciDataset::Seeds, 9, &config, Some(&backend)).unwrap();
        assert_eq!(retrained.accuracy(), trained.accuracy());
    }

    #[test]
    fn budget_changes_invalidate_the_cache_key() {
        let base = baseline_doc_name(UciDataset::Seeds, 9, &quick_config());
        let other_epochs = baseline_doc_name(
            UciDataset::Seeds,
            9,
            &BaselineConfig {
                epochs: 13,
                ..quick_config()
            },
        );
        let other_seed = baseline_doc_name(UciDataset::Seeds, 10, &quick_config());
        let other_tier = baseline_doc_name(
            UciDataset::Seeds,
            9,
            &BaselineConfig {
                accuracy_tier: AccuracyTier::Float,
                ..quick_config()
            },
        );
        assert_ne!(base, other_epochs);
        assert_ne!(base, other_seed);
        assert_ne!(base, other_tier);
        assert!(base.starts_with("baseline_seeds_") && base.ends_with(".json"));
    }

    #[test]
    fn different_datasets_have_different_baseline_sizes() {
        let seeds = BaselineDesign::train_with(UciDataset::Seeds, 1, &quick_config()).unwrap();
        let redwine = BaselineDesign::train_with(UciDataset::RedWine, 1, &quick_config()).unwrap();
        // RedWine (11 x 20 x 5) is a bigger MLP than Seeds (7 x 10 x 3), so its
        // bespoke circuit must be larger.
        assert!(redwine.area_mm2() > seeds.area_mm2());
    }
}
