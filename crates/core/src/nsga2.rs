//! The hardware-aware genetic algorithm: an NSGA-II loop over
//! [`Genome`]s whose fitness is the (accuracy, area)
//! pair measured by retraining the candidate and synthesizing its bespoke
//! circuit.
//!
//! All candidate scoring goes through the shared
//! [`Evaluator`] — in production the memoizing
//! [`EvalEngine`](crate::engine::EvalEngine) — so repeated genomes cost one
//! evaluation per engine lifetime and populations are evaluated in parallel.

use crate::engine::Evaluator;
use crate::error::CoreError;
use crate::genome::{Genome, GenomeSpace};
use crate::objective::DesignPoint;
use crate::pareto::{crowding_distances, non_dominated_ranks, pareto_front};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hyper-parameters of the NSGA-II search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Config {
    /// Population size (kept constant across generations).
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Base RNG seed of the search.
    pub seed: u64,
    /// Search space of the genomes.
    pub space: GenomeSpace,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 24,
            generations: 12,
            mutation_rate: 0.25,
            tournament_size: 2,
            seed: 0xDA7E,
            space: GenomeSpace::default(),
        }
    }
}

impl Nsga2Config {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when any parameter is degenerate.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.population < 4 {
            return Err(CoreError::InvalidConfig {
                context: "population must be >= 4".into(),
            });
        }
        if self.generations == 0 {
            return Err(CoreError::InvalidConfig {
                context: "generations must be >= 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(CoreError::InvalidConfig {
                context: format!("mutation_rate must be in [0,1], got {}", self.mutation_rate),
            });
        }
        if self.tournament_size == 0 {
            return Err(CoreError::InvalidConfig {
                context: "tournament_size must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// Progress of one generation, reported in [`SearchResult::history`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Size of the Pareto front within the population.
    pub front_size: usize,
    /// Best accuracy seen in this generation.
    pub best_accuracy: f64,
    /// Smallest normalized area seen in this generation.
    pub best_normalized_area: f64,
    /// Number of distinct configurations this search has evaluated so far.
    pub evaluations: usize,
}

/// Result of a hardware-aware GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// The final non-dominated set over every point evaluated during the run.
    pub pareto_front: Vec<DesignPoint>,
    /// Every evaluated design point (deduplicated by configuration).
    pub all_points: Vec<DesignPoint>,
    /// Per-generation statistics.
    pub history: Vec<GenerationStats>,
}

/// The hardware-aware NSGA-II searcher.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: Nsga2Config,
}

impl Nsga2 {
    /// Creates a searcher with the given configuration.
    pub fn new(config: Nsga2Config) -> Self {
        Nsga2 { config }
    }

    /// The configuration of this searcher.
    pub fn config(&self) -> &Nsga2Config {
        &self.config
    }

    /// Runs the search, scoring every candidate through `evaluator`.
    ///
    /// Each generation's distinct new genomes are evaluated as one parallel
    /// batch; genomes revisited across generations (or shared with earlier
    /// searches on the same [`EvalEngine`](crate::engine::EvalEngine)) are
    /// answered from the engine's memo cache.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the configuration is invalid or an
    /// evaluation fails.
    pub fn run<E: Evaluator + ?Sized>(&self, evaluator: &E) -> Result<SearchResult, CoreError> {
        self.config.validate()?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let space = &self.config.space;

        // Seed the population with the baseline plus random genomes so the
        // front always contains the reference point.
        let mut population: Vec<Genome> = vec![Genome::baseline()];
        while population.len() < self.config.population {
            population.push(Genome::random(space, &mut rng));
        }

        // Every distinct genome this run has scored, in stable key order.
        let mut seen: BTreeMap<(u8, u32, usize), DesignPoint> = BTreeMap::new();
        let mut history = Vec::with_capacity(self.config.generations);

        let mut evaluated = self.evaluate_population(evaluator, &population, &mut seen)?;

        for generation in 0..self.config.generations {
            // Selection + variation: build an offspring population.
            let ranks = non_dominated_ranks(&evaluated);
            let crowding = crowding_by_rank(&evaluated, &ranks);
            let mut offspring = Vec::with_capacity(self.config.population);
            while offspring.len() < self.config.population {
                let a = self.tournament(&population, &ranks, &crowding, &mut rng);
                let b = self.tournament(&population, &ranks, &crowding, &mut rng);
                let child = population[a].crossover(&population[b], &mut rng).mutate(
                    space,
                    self.config.mutation_rate,
                    &mut rng,
                );
                offspring.push(child);
            }

            // Evaluate offspring (cached + parallel) and merge with parents.
            let offspring_points = self.evaluate_population(evaluator, &offspring, &mut seen)?;
            let mut combined_genomes = population.clone();
            combined_genomes.extend_from_slice(&offspring);
            let mut combined_points = evaluated.clone();
            combined_points.extend_from_slice(&offspring_points);

            // Environmental selection: keep the best `population` individuals
            // by (rank, crowding distance).
            let ranks = non_dominated_ranks(&combined_points);
            let crowding = crowding_by_rank(&combined_points, &ranks);
            let mut order: Vec<usize> = (0..combined_points.len()).collect();
            order.sort_by(|&i, &j| {
                ranks[i].cmp(&ranks[j]).then_with(|| {
                    crowding[j]
                        .partial_cmp(&crowding[i])
                        .expect("finite or inf")
                })
            });
            order.truncate(self.config.population);
            population = order.iter().map(|&i| combined_genomes[i]).collect();
            evaluated = order.iter().map(|&i| combined_points[i].clone()).collect();

            let front = pareto_front(&evaluated);
            history.push(GenerationStats {
                generation,
                front_size: front.len(),
                best_accuracy: evaluated.iter().map(|p| p.accuracy).fold(0.0, f64::max),
                best_normalized_area: evaluated
                    .iter()
                    .map(|p| p.normalized_area)
                    .fold(f64::INFINITY, f64::min),
                evaluations: seen.len(),
            });
        }

        let all_points: Vec<DesignPoint> = seen.into_values().collect();
        let front = pareto_front(&all_points);
        Ok(SearchResult {
            pareto_front: front,
            all_points,
            history,
        })
    }

    fn tournament<R: Rng + ?Sized>(
        &self,
        population: &[Genome],
        ranks: &[usize],
        crowding: &[f64],
        rng: &mut R,
    ) -> usize {
        let mut best = rng.gen_range(0..population.len());
        for _ in 1..self.config.tournament_size {
            let challenger = rng.gen_range(0..population.len());
            let better = ranks[challenger] < ranks[best]
                || (ranks[challenger] == ranks[best] && crowding[challenger] > crowding[best]);
            if better {
                best = challenger;
            }
        }
        best
    }

    /// Scores `genomes`, batching the distinct unseen ones through the
    /// evaluator and answering the rest from `seen`.
    fn evaluate_population<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        genomes: &[Genome],
        seen: &mut BTreeMap<(u8, u32, usize), DesignPoint>,
    ) -> Result<Vec<DesignPoint>, CoreError> {
        let mut missing: Vec<Genome> = Vec::new();
        let mut missing_keys = std::collections::BTreeSet::new();
        for genome in genomes {
            if !seen.contains_key(&genome.key()) && missing_keys.insert(genome.key()) {
                missing.push(*genome);
            }
        }
        let configs: Vec<_> = missing.iter().map(|g| g.to_config()).collect();
        let fresh = evaluator.evaluate_batch(&configs)?;
        for (genome, point) in missing.iter().zip(fresh) {
            seen.insert(genome.key(), point);
        }
        Ok(genomes.iter().map(|g| seen[&g.key()].clone()).collect())
    }
}

/// Crowding distances computed within each rank (NSGA-II semantics).
fn crowding_by_rank(points: &[DesignPoint], ranks: &[usize]) -> Vec<f64> {
    let mut crowding = vec![0.0_f64; points.len()];
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for rank in 0..=max_rank {
        let members: Vec<usize> = (0..points.len()).filter(|&i| ranks[i] == rank).collect();
        let subset: Vec<DesignPoint> = members.iter().map(|&i| points[i].clone()).collect();
        let distances = crowding_distances(&subset);
        for (slot, &i) in members.iter().enumerate() {
            crowding[i] = distances[slot];
        }
    }
    crowding
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvalEngine;
    use pmlp_data::UciDataset;

    #[test]
    fn config_validation() {
        assert!(Nsga2Config {
            population: 2,
            ..Nsga2Config::default()
        }
        .validate()
        .is_err());
        assert!(Nsga2Config {
            generations: 0,
            ..Nsga2Config::default()
        }
        .validate()
        .is_err());
        assert!(Nsga2Config {
            mutation_rate: 1.5,
            ..Nsga2Config::default()
        }
        .validate()
        .is_err());
        assert!(Nsga2Config {
            tournament_size: 0,
            ..Nsga2Config::default()
        }
        .validate()
        .is_err());
        assert!(Nsga2Config::default().validate().is_ok());
    }

    #[test]
    fn tiny_search_on_seeds_improves_over_baseline() {
        // A deliberately tiny search (small population, few generations, short
        // fine-tuning) so the test stays fast; it still must find designs that
        // dominate large parts of the area axis.
        let engine = EvalEngine::train_with(
            UciDataset::Seeds,
            11,
            &crate::baseline::BaselineConfig {
                epochs: 10,
                ..crate::baseline::BaselineConfig::default()
            },
        )
        .unwrap()
        .with_fine_tune_epochs(2);
        let config = Nsga2Config {
            population: 6,
            generations: 2,
            seed: 1,
            space: GenomeSpace {
                weight_bits: vec![3, 4],
                sparsities: vec![0.3, 0.5],
                cluster_counts: vec![3],
                enable_probability: 0.8,
            },
            ..Nsga2Config::default()
        };
        let result = Nsga2::new(config).run(&engine).unwrap();
        assert!(!result.pareto_front.is_empty());
        assert_eq!(result.history.len(), 2);
        // The search must discover at least one design smaller than baseline.
        assert!(result.pareto_front.iter().any(|p| p.normalized_area < 0.9));
        // The front is non-dominated.
        for a in &result.pareto_front {
            for b in &result.pareto_front {
                assert!(!crate::pareto::dominates(a, b) || a == b);
            }
        }
        // History tracks a non-decreasing evaluation count, and the engine
        // cache matches the search's own distinct-genome count.
        assert!(result
            .history
            .windows(2)
            .all(|w| w[1].evaluations >= w[0].evaluations));
        let final_evals = result.history.last().unwrap().evaluations;
        assert_eq!(engine.stats().entries, final_evals);
        // Re-running the same search on the warm engine is answered entirely
        // from the cache and produces the identical result.
        let misses_before = engine.stats().misses;
        let rerun = Nsga2::new(Nsga2Config {
            population: 6,
            generations: 2,
            seed: 1,
            space: GenomeSpace {
                weight_bits: vec![3, 4],
                sparsities: vec![0.3, 0.5],
                cluster_counts: vec![3],
                enable_probability: 0.8,
            },
            ..Nsga2Config::default()
        })
        .run(&engine)
        .unwrap();
        assert_eq!(rerun.pareto_front, result.pareto_front);
        assert_eq!(
            engine.stats().misses,
            misses_before,
            "warm re-run must not recompute"
        );
    }
}
