//! The hardware-aware genetic algorithm: an NSGA-II loop over
//! [`Genome`]s whose fitness is the objective vector (by default the
//! (accuracy, area) pair; any [`ObjectiveSpace`] over accuracy, area, power,
//! delay and energy-per-inference via [`Nsga2Config::objectives`]) measured
//! by retraining the candidate and synthesizing its bespoke circuit.
//!
//! All candidate scoring goes through the shared
//! [`Evaluator`] — in production the memoizing
//! [`EvalEngine`](crate::engine::EvalEngine) — so repeated genomes cost one
//! evaluation per engine lifetime and populations are evaluated in parallel.
//!
//! Long searches are resumable: [`Nsga2::run_resumable`] commits a checkpoint
//! (population genomes, RNG state, per-generation history and every scored
//! point) with an atomic tmp+rename write — **after every evaluation batch**,
//! not just per generation: once a generation's offspring are bred, the
//! post-variation RNG state and the pending offspring are checkpointed, and
//! once their evaluation batch lands the scored points are checkpointed too,
//! so a process killed anywhere inside a generation resumes mid-generation
//! and still reproduces the uninterrupted [`SearchResult`] bit for bit.
//!
//! Checkpoints can live on a file path or inside any
//! [`StoreBackend`](crate::store::StoreBackend) document namespace
//! ([`Nsga2::run_resumable_store`]) — including a remote `pmlp-serve`
//! instance, so a second machine can pick up an interrupted search.
//!
//! ## Island-model fleets
//!
//! [`Nsga2::run_island`] turns one searcher into an **island** of a
//! distributed fleet: every [`IslandOptions::migration_interval`]
//! generations the worker publishes its current elite front as a store
//! document (`island_<fingerprint>_<worker>_gen<NNN>.json`) and imports the
//! fronts other workers have published against the same baseline. Migrants
//! arrive as fully-measured [`DesignPoint`]s, are deduplicated against
//! everything this island has already scored (so nothing is ever evaluated
//! twice across the fleet) and are folded into environmental selection in a
//! deterministic sorted order. A fleet of one behaves **bit-identically** to
//! the classic single-process search: with no foreign documents to import,
//! migration consumes no randomness and adds nothing to the selection pool.

use crate::engine::Evaluator;
use crate::error::CoreError;
use crate::genome::{sparsity_millis, Genome, GenomeSpace};
use crate::objective::{DesignPoint, ObjectiveSpace};
use crate::pareto::{
    crowding_distances_in, descending_nan_last, non_dominated_ranks_in, pareto_front_in,
};
use crate::store::{safe_component, write_atomic, EvalStore};
use pmlp_minimize::MinimizationConfig;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Hyper-parameters of the NSGA-II search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Config {
    /// Population size (kept constant across generations).
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Base RNG seed of the search.
    pub seed: u64,
    /// Search space of the genomes.
    pub space: GenomeSpace,
    /// Objective axes selection operates over (ranks, crowding, the final
    /// front). Defaults to the classic `(accuracy, area)` space, which
    /// reproduces the fixed two-objective search bit for bit — including its
    /// checkpoint fingerprints, so pre-existing classic checkpoints keep
    /// resuming. Objective choice never changes which candidates are
    /// *measured* or how (the evaluator stores full metrics either way) —
    /// only which projection selection compares.
    pub objectives: ObjectiveSpace,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 24,
            generations: 12,
            mutation_rate: 0.25,
            tournament_size: 2,
            seed: 0xDA7E,
            space: GenomeSpace::default(),
            objectives: ObjectiveSpace::classic(),
        }
    }
}

impl Nsga2Config {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when any parameter is degenerate.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.population < 4 {
            return Err(CoreError::InvalidConfig {
                context: "population must be >= 4".into(),
            });
        }
        if self.generations == 0 {
            return Err(CoreError::InvalidConfig {
                context: "generations must be >= 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(CoreError::InvalidConfig {
                context: format!("mutation_rate must be in [0,1], got {}", self.mutation_rate),
            });
        }
        if self.tournament_size == 0 {
            return Err(CoreError::InvalidConfig {
                context: "tournament_size must be >= 1".into(),
            });
        }
        self.objectives.validate()?;
        Ok(())
    }
}

/// Progress of one generation, reported in [`SearchResult::history`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Size of the Pareto front within the population.
    pub front_size: usize,
    /// Best accuracy seen in this generation.
    pub best_accuracy: f64,
    /// Smallest normalized area seen in this generation.
    pub best_normalized_area: f64,
    /// Number of distinct configurations this search has evaluated so far.
    pub evaluations: usize,
}

/// Result of a hardware-aware GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// The final non-dominated set over every point evaluated during the run.
    pub pareto_front: Vec<DesignPoint>,
    /// Every evaluated design point (deduplicated by configuration).
    pub all_points: Vec<DesignPoint>,
    /// Per-generation statistics.
    pub history: Vec<GenerationStats>,
}

/// How one worker participates in an island-model fleet: where it publishes
/// its elite fronts, under what identity, and how often.
#[derive(Debug)]
pub struct IslandOptions<'a> {
    /// The shared store island documents are published to and imported from —
    /// against a [tiered](crate::store::TieredStore) backend this is the same
    /// `pmlp-serve` coordination plane the evaluation cache rides, breaker,
    /// journal and all.
    pub store: &'a EvalStore,
    /// This worker's fleet identity: a safe document-name component, unique
    /// per worker (two workers sharing an id would overwrite each other's
    /// fronts and import their own migrants).
    pub worker_id: &'a str,
    /// Publish the elite front and import foreign ones every this many
    /// generations (>= 1; `1` migrates every generation).
    pub migration_interval: usize,
    /// Baseline fingerprint the island documents are sealed with — pass
    /// [`EvalEngine::fingerprint`](crate::engine::EvalEngine::fingerprint) so
    /// fronts measured against one baseline are never imported by a search
    /// over a retrained one, and so the store GC's live-fingerprint set
    /// applies to island documents directly.
    pub fingerprint: u64,
}

/// The shared document-name prefix of every island front published against
/// `fingerprint` — what workers list to discover each other, and what the
/// store GC matches to reap fronts of dead baselines.
pub fn island_doc_prefix(fingerprint: u64) -> String {
    format!("island_{fingerprint:016x}_")
}

/// The hardware-aware NSGA-II searcher.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: Nsga2Config,
}

impl Nsga2 {
    /// Creates a searcher with the given configuration.
    pub fn new(config: Nsga2Config) -> Self {
        Nsga2 { config }
    }

    /// The configuration of this searcher.
    pub fn config(&self) -> &Nsga2Config {
        &self.config
    }

    /// Runs the search, scoring every candidate through `evaluator`.
    ///
    /// Each generation's distinct new genomes are evaluated as one parallel
    /// batch; genomes revisited across generations (or shared with earlier
    /// searches on the same [`EvalEngine`](crate::engine::EvalEngine)) are
    /// answered from the engine's memo cache.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the configuration is invalid or an
    /// evaluation fails.
    pub fn run<E: Evaluator + ?Sized>(&self, evaluator: &E) -> Result<SearchResult, CoreError> {
        self.config.validate()?;
        let mut state = self.init_state(evaluator, BTreeMap::new())?;
        while state.history.len() < self.config.generations {
            self.advance(&mut state, evaluator, &[], &mut |_| Ok(()))?;
        }
        Ok(state.into_result(&self.config.objectives))
    }

    /// Runs the search with checkpointing after **every evaluation batch**:
    /// the full search state (population genomes, RNG progress, history,
    /// every scored point, plus any pending mid-generation offspring) is
    /// committed to `checkpoint` with an atomic tmp+rename write — once when
    /// a generation's offspring are bred (so the consumed RNG state is safe),
    /// once when their evaluation batch lands, and once when environmental
    /// selection finishes the generation.
    ///
    /// When `checkpoint` already holds a state written by the **same**
    /// configuration, the search resumes from it — mid-generation if that is
    /// where the previous process died: a checkpoint with pending offspring
    /// skips the variation step (its randomness is already spent) and
    /// re-evaluates only what the persistent evaluation store cannot answer.
    /// The resumed run produces exactly the [`SearchResult`] the
    /// uninterrupted run would have produced, because the checkpoint carries
    /// the RNG state. A checkpoint from a different configuration (or a
    /// corrupt/incompatible file) is ignored and overwritten. A checkpoint
    /// of a *finished* run short-circuits: the result is rebuilt from the
    /// recorded points without a single evaluation.
    ///
    /// Pair this with [`EvalEngine::with_store`](crate::engine::EvalEngine::with_store)
    /// and the resumed generations' evaluations are cache hits too.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the configuration is invalid, an evaluation
    /// fails, or a checkpoint cannot be written ([`CoreError::Store`]).
    pub fn run_resumable<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        checkpoint: &Path,
    ) -> Result<SearchResult, CoreError> {
        self.run_resumable_tagged(evaluator, checkpoint, 0)
    }

    /// [`Nsga2::run_resumable`] with an extra `tag` mixed into the checkpoint
    /// identity. Use it when the evaluator itself has state the checkpoint
    /// must be bound to — e.g. pass
    /// [`EvalEngine::fingerprint`](crate::engine::EvalEngine::fingerprint) so
    /// a checkpoint written against one baseline is never replayed against a
    /// retrained one (the experiment drivers do exactly this).
    ///
    /// # Errors
    ///
    /// See [`Nsga2::run_resumable`].
    pub fn run_resumable_tagged<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        checkpoint: &Path,
        tag: u64,
    ) -> Result<SearchResult, CoreError> {
        self.run_resumable_impl(evaluator, &CheckpointTarget::File(checkpoint), tag, None)
    }

    /// [`Nsga2::run_resumable_tagged`] with the checkpoint stored as a named
    /// document in an [`EvalStore`]'s backend instead of a file path: against
    /// a [tiered](crate::store::TieredStore) or remote backend the checkpoint
    /// replicates to the `pmlp-serve` server, so a *different machine*
    /// pointed at the same server resumes the search.
    ///
    /// # Errors
    ///
    /// See [`Nsga2::run_resumable`].
    pub fn run_resumable_store<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        store: &EvalStore,
        doc_name: &str,
        tag: u64,
    ) -> Result<SearchResult, CoreError> {
        self.run_resumable_impl(
            evaluator,
            &CheckpointTarget::Doc(store, doc_name),
            tag,
            None,
        )
    }

    /// Runs this searcher as one **island** of a distributed fleet (see the
    /// [module docs](self) for the migration protocol), checkpointing into
    /// `checkpoint_doc` on the island's store exactly like
    /// [`run_resumable_store`](Self::run_resumable_store) — a killed worker
    /// resumes mid-generation, migrants and all (imported migrants live in
    /// the checkpointed `seen` set).
    ///
    /// With no foreign fronts in the store, the result is bit-identical to
    /// [`run_resumable_store`](Self::run_resumable_store) — publishing is
    /// observable to *other* workers but never changes this island's own
    /// trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the island options are
    /// degenerate (empty/unsafe worker id, zero migration interval);
    /// otherwise see [`Nsga2::run_resumable`].
    pub fn run_island<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        island: &IslandOptions<'_>,
        checkpoint_doc: &str,
        tag: u64,
    ) -> Result<SearchResult, CoreError> {
        if !safe_component(island.worker_id) {
            return Err(CoreError::InvalidConfig {
                context: format!(
                    "island worker id `{}` is not a safe document-name component",
                    island.worker_id
                ),
            });
        }
        if island.migration_interval == 0 {
            return Err(CoreError::InvalidConfig {
                context: "island migration_interval must be >= 1".into(),
            });
        }
        self.run_resumable_impl(
            evaluator,
            &CheckpointTarget::Doc(island.store, checkpoint_doc),
            tag,
            Some(island),
        )
    }

    fn run_resumable_impl<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        target: &CheckpointTarget<'_>,
        tag: u64,
        island: Option<&IslandOptions<'_>>,
    ) -> Result<SearchResult, CoreError> {
        self.config.validate()?;
        // Migrants imported before the first generation they can compete in;
        // merged into that generation's selection pool.
        let mut pending_migrants: Vec<DesignPoint> = Vec::new();
        let mut state = match self.load_checkpoint(target, tag) {
            Some(state) => state,
            None => {
                // A joining island adopts the fleet's progress *before*
                // paying for its own initial population: any initial genome
                // the fleet has already measured is answered from the
                // imported set instead of the evaluator.
                let mut seen = BTreeMap::new();
                if let Some(island) = island {
                    pending_migrants = self.import_migrants(island, &mut seen)?;
                }
                let state = self.init_state(evaluator, seen)?;
                self.save_checkpoint(target, &state, tag)?;
                state
            }
        };
        while state.history.len() < self.config.generations {
            // Refresh imports at migration boundaries, then fold in whatever
            // is still waiting for its first selection round. Both sets were
            // deduplicated against `seen` on arrival, so the merge is
            // disjoint; the re-sort keeps the fold order deterministic.
            let mut migrants = match island {
                Some(island) if state.history.len() % island.migration_interval == 0 => {
                    self.import_migrants(island, &mut state.seen)?
                }
                _ => Vec::new(),
            };
            migrants.append(&mut pending_migrants);
            migrants.sort_by_key(|p| config_key(&p.config));
            let mut save = |s: &SearchState| self.save_checkpoint(target, s, tag);
            self.advance(&mut state, evaluator, &migrants, &mut save)?;
            if let Some(island) = island {
                let done = state.history.len();
                if done % island.migration_interval == 0 || done == self.config.generations {
                    self.publish_front(island, &state)?;
                }
            }
        }
        Ok(state.into_result(&self.config.objectives))
    }

    /// Lists, reads and filters the fronts other islands have published
    /// against the same baseline fingerprint: every point this island has not
    /// already scored is adopted into `state.seen` (so the evaluator is never
    /// asked to re-measure it) and returned, sorted by dedup key, for the
    /// caller to fold into environmental selection. Foreign documents that
    /// fail to read, parse or match the envelope are skipped — migration is
    /// an accelerant, never a correctness dependency.
    fn import_migrants(
        &self,
        island: &IslandOptions<'_>,
        seen: &mut BTreeMap<(u8, u32, usize), DesignPoint>,
    ) -> Result<Vec<DesignPoint>, CoreError> {
        let prefix = island_doc_prefix(island.fingerprint);
        let own = format!("{prefix}{}_", island.worker_id);
        let mut migrants: Vec<DesignPoint> = Vec::new();
        for name in island.store.list_docs(&prefix)? {
            if name.starts_with(&own) {
                continue;
            }
            let Some(text) = island.store.get_doc(&name).ok().flatten() else {
                continue;
            };
            let Ok(parsed) = json::parse(&text) else {
                continue;
            };
            let Some(value) = crate::store::check_envelope(
                &parsed,
                ISLAND_MAGIC,
                ISLAND_VERSION,
                island.fingerprint,
            ) else {
                continue;
            };
            let Some(front) = value.get("front") else {
                continue;
            };
            let points: Vec<DesignPoint> = match Deserialize::deserialize_value(front) {
                Ok(points) => points,
                Err(_) => continue,
            };
            migrants.extend(points);
        }
        // Deterministic fold: stable key order, first occurrence wins, and
        // anything this island already knows (own evaluations or earlier
        // imports) is dropped — the fleet never pays for a design twice.
        migrants.sort_by_key(|p| config_key(&p.config));
        migrants.dedup_by_key(|p| config_key(&p.config));
        migrants.retain(|p| !seen.contains_key(&config_key(&p.config)));
        for point in &migrants {
            seen.insert(config_key(&point.config), point.clone());
        }
        Ok(migrants)
    }

    /// Publishes this island's current elite front (the non-dominated set of
    /// its live population) as a sealed store document named after the
    /// baseline fingerprint, the worker and the generation. Re-publishing
    /// after a resume overwrites the same document — idempotent.
    fn publish_front(
        &self,
        island: &IslandOptions<'_>,
        state: &SearchState,
    ) -> Result<(), CoreError> {
        let front = pareto_front_in(&self.config.objectives, &state.evaluated);
        let name = format!(
            "{}{}_gen{:03}.json",
            island_doc_prefix(island.fingerprint),
            island.worker_id,
            state.history.len()
        );
        let value = crate::store::seal_envelope(
            ISLAND_MAGIC,
            ISLAND_VERSION,
            island.fingerprint,
            vec![
                ("worker".into(), Value::String(island.worker_id.to_string())),
                (
                    "generation".into(),
                    Value::Number(state.history.len() as f64),
                ),
                ("front".into(), front.serialize_value()),
            ],
        );
        island.store.put_doc(&name, &value.render_pretty())
    }

    /// Seeds and scores the initial population (the state before
    /// generation 0). `seen` pre-loads the scored set — empty for a classic
    /// run; an island passes its pre-imported migrants so initial genomes
    /// the fleet already measured cost nothing.
    fn init_state<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        seen: BTreeMap<(u8, u32, usize), DesignPoint>,
    ) -> Result<SearchState, CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let space = &self.config.space;

        // Seed the population with the baseline plus random genomes so the
        // front always contains the reference point.
        let mut population: Vec<Genome> = vec![Genome::baseline()];
        while population.len() < self.config.population {
            population.push(Genome::random(space, &mut rng));
        }

        // Every distinct genome this run has scored, in stable key order.
        let mut seen = seen;
        let evaluated = self.evaluate_population(evaluator, &population, &mut seen)?;
        Ok(SearchState {
            population,
            evaluated,
            seen,
            history: Vec::with_capacity(self.config.generations),
            rng,
            pending: None,
        })
    }

    /// Runs one generation: variation, evaluation, environmental selection,
    /// history bookkeeping. `save` commits the state after each step that
    /// either consumes randomness or completes an evaluation batch, bounding
    /// the work a crash can lose to one batch.
    ///
    /// `migrants` are already-measured foreign design points (island-model
    /// imports, pre-deduplicated against `state.seen`) folded into the
    /// selection pool alongside this generation's offspring; an empty slice
    /// — every non-island caller — leaves the generation bit-identical to
    /// the classic single-population search, consuming no extra randomness.
    fn advance<E: Evaluator + ?Sized>(
        &self,
        state: &mut SearchState,
        evaluator: &E,
        migrants: &[DesignPoint],
        save: &mut dyn FnMut(&SearchState) -> Result<(), CoreError>,
    ) -> Result<(), CoreError> {
        let generation = state.history.len();
        let space = &self.config.space;

        // Selection + variation: build an offspring population — unless a
        // mid-generation checkpoint already carries one, in which case its
        // randomness is spent and re-breeding would diverge from the
        // uninterrupted run.
        let offspring = match &state.pending {
            Some(offspring) => offspring.clone(),
            None => {
                let ranks = non_dominated_ranks_in(&self.config.objectives, &state.evaluated);
                let crowding = crowding_by_rank(&self.config.objectives, &state.evaluated, &ranks);
                let mut offspring = Vec::with_capacity(self.config.population);
                while offspring.len() < self.config.population {
                    let a = self.tournament(&state.population, &ranks, &crowding, &mut state.rng);
                    let b = self.tournament(&state.population, &ranks, &crowding, &mut state.rng);
                    let child = state.population[a]
                        .crossover(&state.population[b], &mut state.rng)
                        .mutate(space, self.config.mutation_rate, &mut state.rng);
                    offspring.push(child);
                }
                // Commit the bred offspring and the post-variation RNG state
                // before evaluating: a crash inside the evaluation batch
                // resumes here instead of re-rolling the generation.
                state.pending = Some(offspring.clone());
                save(state)?;
                offspring
            }
        };

        // Evaluate offspring (cached + parallel) and merge with parents.
        let offspring_points = self.evaluate_population(evaluator, &offspring, &mut state.seen)?;
        // Checkpoint the completed evaluation batch.
        save(state)?;
        let mut combined_genomes = state.population.clone();
        combined_genomes.extend_from_slice(&offspring);
        let mut combined_points = state.evaluated.clone();
        combined_points.extend_from_slice(&offspring_points);
        // Island migrants compete in environmental selection as first-class
        // individuals: good foreign elites displace weak locals, bad ones are
        // truncated away, and either way the population size is preserved.
        for migrant in migrants {
            combined_genomes.push(Genome::from_config(&migrant.config));
            combined_points.push(migrant.clone());
        }

        // Environmental selection: keep the best `population` individuals by
        // (rank, crowding distance). The ordering is NaN-safe — a degenerate
        // evaluation sorts last instead of panicking the whole search.
        let ranks = non_dominated_ranks_in(&self.config.objectives, &combined_points);
        let crowding = crowding_by_rank(&self.config.objectives, &combined_points, &ranks);
        let mut order: Vec<usize> = (0..combined_points.len()).collect();
        order.sort_by(|&i, &j| {
            ranks[i]
                .cmp(&ranks[j])
                .then_with(|| descending_nan_last(crowding[i], crowding[j]))
        });
        order.truncate(self.config.population);
        state.population = order.iter().map(|&i| combined_genomes[i]).collect();
        state.evaluated = order.iter().map(|&i| combined_points[i].clone()).collect();

        let front = pareto_front_in(&self.config.objectives, &state.evaluated);
        state.history.push(GenerationStats {
            generation,
            front_size: front.len(),
            best_accuracy: state
                .evaluated
                .iter()
                .map(|p| p.accuracy)
                .fold(0.0, f64::max),
            best_normalized_area: state
                .evaluated
                .iter()
                .map(|p| p.normalized_area)
                .fold(f64::INFINITY, f64::min),
            evaluations: state.seen.len(),
        });
        state.pending = None;
        // Per-generation checkpoint: selection and history are in, the
        // pending offspring are consumed.
        save(state)?;
        Ok(())
    }

    fn tournament<R: Rng + ?Sized>(
        &self,
        population: &[Genome],
        ranks: &[usize],
        crowding: &[f64],
        rng: &mut R,
    ) -> usize {
        let mut best = rng.gen_range(0..population.len());
        for _ in 1..self.config.tournament_size {
            let challenger = rng.gen_range(0..population.len());
            let better = ranks[challenger] < ranks[best]
                || (ranks[challenger] == ranks[best] && crowding[challenger] > crowding[best]);
            if better {
                best = challenger;
            }
        }
        best
    }

    /// Scores `genomes`, batching the distinct unseen ones through the
    /// evaluator and answering the rest from `seen`.
    fn evaluate_population<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        genomes: &[Genome],
        seen: &mut BTreeMap<(u8, u32, usize), DesignPoint>,
    ) -> Result<Vec<DesignPoint>, CoreError> {
        let mut missing: Vec<Genome> = Vec::new();
        let mut missing_keys = std::collections::BTreeSet::new();
        for genome in genomes {
            if !seen.contains_key(&genome.key()) && missing_keys.insert(genome.key()) {
                missing.push(*genome);
            }
        }
        let configs: Vec<_> = missing.iter().map(|g| g.to_config()).collect();
        let fresh = evaluator.evaluate_batch(&configs)?;
        for (genome, point) in missing.iter().zip(fresh) {
            seen.insert(genome.key(), point);
        }
        Ok(genomes.iter().map(|g| seen[&g.key()].clone()).collect())
    }
}

/// Live state of a search between checkpoints: everything needed to continue
/// the run — including, mid-generation, the bred-but-unselected offspring
/// whose randomness has already been consumed from `rng`.
struct SearchState {
    population: Vec<Genome>,
    evaluated: Vec<DesignPoint>,
    seen: BTreeMap<(u8, u32, usize), DesignPoint>,
    history: Vec<GenerationStats>,
    rng: StdRng,
    /// Offspring of the in-flight generation (`None` between generations).
    pending: Option<Vec<Genome>>,
}

/// Where a checkpoint lives: a plain file path, or a named document in a
/// store backend (which may replicate it to a `pmlp-serve` server).
enum CheckpointTarget<'a> {
    File(&'a Path),
    Doc(&'a EvalStore, &'a str),
}

impl CheckpointTarget<'_> {
    fn read(&self) -> Option<String> {
        match self {
            CheckpointTarget::File(path) => std::fs::read_to_string(path).ok(),
            CheckpointTarget::Doc(store, name) => store.get_doc(name).ok().flatten(),
        }
    }

    fn write(&self, contents: &str) -> Result<(), CoreError> {
        match self {
            CheckpointTarget::File(path) => {
                write_atomic(path, contents).map_err(|e| CoreError::Store {
                    context: format!("write checkpoint {}: {e}", path.display()),
                })
            }
            CheckpointTarget::Doc(store, name) => store.put_doc(name, contents),
        }
    }
}

impl SearchState {
    fn into_result(self, objectives: &ObjectiveSpace) -> SearchResult {
        let all_points: Vec<DesignPoint> = self.seen.into_values().collect();
        let front = pareto_front_in(objectives, &all_points);
        SearchResult {
            pareto_front: front,
            all_points,
            history: self.history,
        }
    }
}

/// Magic string of NSGA-II checkpoint files.
const CHECKPOINT_MAGIC: &str = "pmlp-nsga2-checkpoint";

/// Magic string of published island-front documents.
const ISLAND_MAGIC: &str = "pmlp-island-front";

/// Format version of island-front documents; a bump orphans (skips) old
/// fronts instead of misreading them.
const ISLAND_VERSION: u32 = 1;

/// Format version of NSGA-II checkpoint files; bumping it orphans (and
/// overwrites) old checkpoints instead of misreading them. Version 2 added
/// the mid-generation `pending` offspring section.
const CHECKPOINT_VERSION: u32 = 2;

/// The genome deduplication key of an already-evaluated configuration — the
/// inverse of [`Genome::to_config`] as far as [`Genome::key`] is concerned,
/// used to rebuild the `seen` map from checkpointed design points.
fn config_key(config: &MinimizationConfig) -> (u8, u32, usize) {
    (
        config.weight_bits.unwrap_or(0),
        config.sparsity.map(sparsity_millis).unwrap_or(u32::MAX),
        config.clusters_per_input.unwrap_or(0),
    )
}

impl Nsga2 {
    /// Hash of the full configuration (space included) plus the caller's
    /// evaluator tag: a checkpoint is only resumed by the exact configuration
    /// (and, when tagged, the exact baseline) that wrote it.
    ///
    /// The classic objective space is fingerprinted exactly as the
    /// pre-configurable searcher rendered its config (the `objectives` entry
    /// is dropped), so checkpoints written before objectives existed keep
    /// resuming classic searches; any other space fingerprints distinctly and
    /// correctly orphans them.
    fn config_fingerprint(&self, tag: u64) -> u64 {
        let mut config_value = self.config.serialize_value();
        if self.config.objectives.is_classic() {
            if let Value::Object(entries) = &mut config_value {
                entries.retain(|(key, _)| key != "objectives");
            }
        }
        let rendered = config_value.render_compact();
        let mut fp = crate::store::FingerprintHasher::new();
        fp.mix_bytes(rendered.as_bytes());
        fp.mix_u64(tag);
        fp.finish()
    }

    /// Commits `state` to `target` atomically.
    fn save_checkpoint(
        &self,
        target: &CheckpointTarget<'_>,
        state: &SearchState,
        tag: u64,
    ) -> Result<(), CoreError> {
        let rng_words: Vec<Value> = state
            .rng
            .state()
            .iter()
            .map(|w| Value::String(format!("{w:016x}")))
            .collect();
        let seen: Vec<&DesignPoint> = state.seen.values().collect();
        let value = crate::store::seal_envelope(
            CHECKPOINT_MAGIC,
            CHECKPOINT_VERSION,
            self.config_fingerprint(tag),
            vec![
                ("rng".into(), Value::Array(rng_words)),
                ("population".into(), state.population.serialize_value()),
                ("evaluated".into(), state.evaluated.serialize_value()),
                ("history".into(), state.history.serialize_value()),
                ("seen".into(), seen.serialize_value()),
                (
                    "pending".into(),
                    match &state.pending {
                        Some(offspring) => offspring.serialize_value(),
                        None => Value::Null,
                    },
                ),
            ],
        );
        target.write(&value.render_pretty())
    }

    /// Loads a checkpoint written by this exact configuration; anything else
    /// (missing file, corrupt JSON, other config, other version) yields
    /// `None` so the caller starts fresh.
    fn load_checkpoint(&self, target: &CheckpointTarget<'_>, tag: u64) -> Option<SearchState> {
        let text = target.read()?;
        let parsed = json::parse(&text).ok()?;
        let value = crate::store::check_envelope(
            &parsed,
            CHECKPOINT_MAGIC,
            CHECKPOINT_VERSION,
            self.config_fingerprint(tag),
        )?;
        let rng_words: Vec<String> = Deserialize::deserialize_value(value.get("rng")?).ok()?;
        if rng_words.len() != 4 {
            return None;
        }
        let mut rng_state = [0u64; 4];
        for (slot, word) in rng_state.iter_mut().zip(&rng_words) {
            *slot = u64::from_str_radix(word, 16).ok()?;
        }
        let population: Vec<Genome> =
            Deserialize::deserialize_value(value.get("population")?).ok()?;
        let evaluated: Vec<DesignPoint> =
            Deserialize::deserialize_value(value.get("evaluated")?).ok()?;
        let history: Vec<GenerationStats> =
            Deserialize::deserialize_value(value.get("history")?).ok()?;
        let seen_points: Vec<DesignPoint> =
            Deserialize::deserialize_value(value.get("seen")?).ok()?;
        let pending: Option<Vec<Genome>> = match value.get("pending") {
            None | Some(Value::Null) => None,
            Some(v) => Some(Deserialize::deserialize_value(v).ok()?),
        };
        if population.len() != self.config.population
            || evaluated.len() != self.config.population
            || history.len() > self.config.generations
            || pending
                .as_ref()
                .is_some_and(|offspring| offspring.len() != self.config.population)
        {
            return None;
        }
        let seen: BTreeMap<(u8, u32, usize), DesignPoint> = seen_points
            .into_iter()
            .map(|p| (config_key(&p.config), p))
            .collect();
        Some(SearchState {
            population,
            evaluated,
            seen,
            history,
            rng: StdRng::from_state(rng_state),
            pending,
        })
    }
}

/// Crowding distances computed within each rank (NSGA-II semantics).
fn crowding_by_rank(
    objectives: &ObjectiveSpace,
    points: &[DesignPoint],
    ranks: &[usize],
) -> Vec<f64> {
    let mut crowding = vec![0.0_f64; points.len()];
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for rank in 0..=max_rank {
        let members: Vec<usize> = (0..points.len()).filter(|&i| ranks[i] == rank).collect();
        let subset: Vec<DesignPoint> = members.iter().map(|&i| points[i].clone()).collect();
        let distances = crowding_distances_in(objectives, &subset);
        for (slot, &i) in members.iter().enumerate() {
            crowding[i] = distances[slot];
        }
    }
    crowding
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::MockEvaluator;
    use crate::engine::EvalEngine;
    use pmlp_data::UciDataset;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn checkpoint_path(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "pmlp-nsga2-checkpoint-{tag}-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_file(&path).ok();
        path
    }

    fn mock_search(seed: u64, generations: usize) -> Nsga2 {
        Nsga2::new(Nsga2Config {
            population: 8,
            generations,
            seed,
            ..Nsga2Config::default()
        })
    }

    /// Wraps an evaluator with an evaluation budget; once exhausted, every
    /// call fails — simulating a process killed mid-search.
    struct DyingEvaluator<E> {
        inner: E,
        remaining: AtomicUsize,
    }

    impl<E: Evaluator> Evaluator for DyingEvaluator<E> {
        fn evaluate(&self, config: &MinimizationConfig) -> Result<DesignPoint, CoreError> {
            let left = self.remaining.fetch_sub(1, Ordering::SeqCst);
            if left == 0 || left > usize::MAX / 2 {
                self.remaining.store(0, Ordering::SeqCst);
                return Err(CoreError::Nn {
                    context: "simulated crash".into(),
                });
            }
            self.inner.evaluate(config)
        }
    }

    #[test]
    fn resumable_without_prior_checkpoint_matches_plain_run() {
        let path = checkpoint_path("fresh");
        let searcher = mock_search(3, 4);
        let plain = searcher.run(&MockEvaluator).unwrap();
        let resumable = searcher.run_resumable(&MockEvaluator, &path).unwrap();
        assert_eq!(resumable, plain);
        assert!(path.exists(), "checkpoint must be committed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_search_resumes_to_the_identical_result() {
        let path = checkpoint_path("interrupted");
        let searcher = mock_search(7, 5);
        let uninterrupted = searcher.run(&MockEvaluator).unwrap();

        // Kill the search partway: enough budget for the initial population
        // plus roughly one generation, then hard failure.
        let dying = DyingEvaluator {
            inner: MockEvaluator,
            remaining: AtomicUsize::new(12),
        };
        let crash = searcher.run_resumable(&dying, &path);
        assert!(crash.is_err(), "the simulated crash must surface");
        assert!(path.exists(), "a checkpoint must survive the crash");

        // A fresh process resumes from the checkpoint and reproduces the
        // uninterrupted result exactly (RNG state travels with it).
        let resumed = searcher.run_resumable(&MockEvaluator, &path).unwrap();
        assert_eq!(resumed, uninterrupted);
        std::fs::remove_file(&path).ok();
    }

    /// Counts every evaluation that reaches the inner evaluator.
    struct CountingEvaluator<E> {
        inner: E,
        calls: AtomicUsize,
    }

    impl<E: Evaluator> Evaluator for CountingEvaluator<E> {
        fn evaluate(&self, config: &MinimizationConfig) -> Result<DesignPoint, CoreError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.inner.evaluate(config)
        }
    }

    #[test]
    fn mid_generation_crash_resumes_bit_identically_without_restarting() {
        let path = checkpoint_path("mid-generation");
        let searcher = mock_search(7, 5);
        let counting_full = CountingEvaluator {
            inner: MockEvaluator,
            calls: AtomicUsize::new(0),
        };
        let uninterrupted = searcher.run(&counting_full).unwrap();
        let full_calls = counting_full.calls.load(Ordering::SeqCst);

        // Kill the search inside a generation's evaluation batch: enough
        // budget for the initial population plus part of generation 0.
        let dying = DyingEvaluator {
            inner: MockEvaluator,
            remaining: AtomicUsize::new(10),
        };
        assert!(searcher.run_resumable(&dying, &path).is_err());

        // The surviving checkpoint is a *mid-generation* one: the bred
        // offspring (and the consumed RNG state) are in it.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"pending\": ["),
            "checkpoint must carry pending offspring, got: {}",
            &text[..200.min(text.len())]
        );

        // Resume: bit-identical result, and strictly fewer evaluations than
        // a from-scratch run (the checkpointed `seen` answers the initial
        // population, and variation is not re-rolled).
        let counting = CountingEvaluator {
            inner: MockEvaluator,
            calls: AtomicUsize::new(0),
        };
        let resumed = searcher.run_resumable(&counting, &path).unwrap();
        assert_eq!(resumed, uninterrupted);
        assert!(
            counting.calls.load(Ordering::SeqCst) < full_calls,
            "mid-generation resume must not restart the search ({} vs {full_calls})",
            counting.calls.load(Ordering::SeqCst)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoints_live_in_any_store_backend_document() {
        use crate::store::{EvalStore, MemoryBackend};
        let store = EvalStore::with_backend(Box::new(MemoryBackend::new()), "ga", 0).unwrap();
        let searcher = mock_search(9, 3);
        let reference = searcher.run(&MockEvaluator).unwrap();
        let first = searcher
            .run_resumable_store(&MockEvaluator, &store, "ga_checkpoint.json", 7)
            .unwrap();
        assert_eq!(first, reference);
        assert!(
            store.get_doc("ga_checkpoint.json").unwrap().is_some(),
            "checkpoint document must be committed to the backend"
        );
        // A finished checkpoint short-circuits through the document path too.
        let dead = DyingEvaluator {
            inner: MockEvaluator,
            remaining: AtomicUsize::new(0),
        };
        let replay = searcher
            .run_resumable_store(&dead, &store, "ga_checkpoint.json", 7)
            .unwrap();
        assert_eq!(replay, first);
    }

    #[test]
    fn finished_checkpoint_short_circuits_without_evaluations() {
        let path = checkpoint_path("finished");
        let searcher = mock_search(11, 3);
        let first = searcher.run_resumable(&MockEvaluator, &path).unwrap();

        // An evaluator with zero budget: any evaluation attempt would fail.
        let dead = DyingEvaluator {
            inner: MockEvaluator,
            remaining: AtomicUsize::new(0),
        };
        let replay = searcher.run_resumable(&dead, &path).unwrap();
        assert_eq!(replay, first);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_of_another_config_is_ignored() {
        let path = checkpoint_path("other-config");
        mock_search(1, 3)
            .run_resumable(&MockEvaluator, &path)
            .unwrap();
        // Different seed => different fingerprint => fresh start, identical
        // to an uncheckpointed run of the second configuration.
        let other = mock_search(2, 3);
        let expected = other.run(&MockEvaluator).unwrap();
        let actual = other.run_resumable(&MockEvaluator, &path).unwrap();
        assert_eq!(actual, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_tags_isolate_different_evaluator_identities() {
        let path = checkpoint_path("tagged");
        let searcher = mock_search(4, 3);
        let first = searcher
            .run_resumable_tagged(&MockEvaluator, &path, 0xAAAA)
            .unwrap();
        // A different tag (e.g. a retrained baseline) must ignore the
        // finished checkpoint and run fresh — here against a dead evaluator,
        // so a wrongly-resumed replay would be the only way to "succeed".
        let dead = DyingEvaluator {
            inner: MockEvaluator,
            remaining: AtomicUsize::new(0),
        };
        assert!(
            searcher.run_resumable_tagged(&dead, &path, 0xBBBB).is_err(),
            "a checkpoint from another tag must not be replayed"
        );
        // The matching tag still short-circuits.
        let replay = searcher.run_resumable_tagged(&dead, &path, 0xAAAA).unwrap();
        assert_eq!(replay, first);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_a_fresh_run() {
        let path = checkpoint_path("corrupt");
        std::fs::write(&path, "{not json").unwrap();
        let searcher = mock_search(5, 2);
        let expected = searcher.run(&MockEvaluator).unwrap();
        let actual = searcher.run_resumable(&MockEvaluator, &path).unwrap();
        assert_eq!(actual, expected);
        std::fs::remove_file(&path).ok();
    }

    /// A degenerate evaluator: every 3-bit candidate comes back with NaN
    /// accuracy (e.g. a diverged fine-tune).
    struct NanEvaluator;

    impl Evaluator for NanEvaluator {
        fn evaluate(&self, config: &MinimizationConfig) -> Result<DesignPoint, CoreError> {
            let mut point = MockEvaluator.evaluate(config)?;
            if config.weight_bits == Some(3) {
                point.accuracy = f64::NAN;
            }
            Ok(point)
        }
    }

    #[test]
    fn nan_evaluations_rank_worst_instead_of_panicking_the_search() {
        let result = Nsga2::new(Nsga2Config {
            population: 8,
            generations: 3,
            seed: 13,
            space: GenomeSpace {
                weight_bits: vec![3, 4, 5],
                sparsities: vec![0.2, 0.4],
                cluster_counts: vec![2, 3],
                enable_probability: 0.9,
            },
            ..Nsga2Config::default()
        })
        .run(&NanEvaluator)
        .unwrap();
        assert!(!result.pareto_front.is_empty());
        assert!(
            result
                .pareto_front
                .iter()
                .all(|p| !p.accuracy.is_nan() && !p.area_mm2.is_nan()),
            "NaN points must never reach the front"
        );
    }

    #[test]
    fn multi_objective_search_fronts_in_the_requested_space() {
        let energy_space = ObjectiveSpace::parse("accuracy,area,energy").unwrap();
        let config = Nsga2Config {
            population: 8,
            generations: 3,
            seed: 21,
            objectives: energy_space.clone(),
            ..Nsga2Config::default()
        };
        let result = Nsga2::new(config).run(&MockEvaluator).unwrap();
        assert!(!result.pareto_front.is_empty());
        for a in &result.pareto_front {
            for b in &result.pareto_front {
                assert!(
                    !energy_space.dominates(a, b)
                        || energy_space.values(a) == energy_space.values(b),
                    "3-D front must be mutually non-dominated"
                );
            }
        }
        // Objective choice changes selection only — never what a point
        // carries: every front member still has its full metrics.
        assert!(result.pareto_front.iter().all(|p| p.delay_us.is_finite()));
    }

    #[test]
    fn classic_checkpoints_are_not_replayed_by_other_objective_spaces() {
        let path = checkpoint_path("objective-space");
        let classic = mock_search(6, 3);
        let first = classic.run_resumable(&MockEvaluator, &path).unwrap();

        // Same config except for the objective space: the classic checkpoint
        // must be orphaned, not replayed (a dead evaluator catches replays).
        let energy = Nsga2::new(Nsga2Config {
            objectives: ObjectiveSpace::parse("accuracy,area,energy").unwrap(),
            ..classic.config().clone()
        });
        let dead = DyingEvaluator {
            inner: MockEvaluator,
            remaining: AtomicUsize::new(0),
        };
        assert!(
            energy.run_resumable(&dead, &path).is_err(),
            "a classic checkpoint must not satisfy an energy-objective search"
        );
        // The classic config itself still short-circuits off its checkpoint.
        let replay = classic.run_resumable(&dead, &path).unwrap();
        assert_eq!(replay, first);
        std::fs::remove_file(&path).ok();
    }

    /// Records the dedup key of every configuration that reaches the real
    /// evaluator — what "this island paid for an evaluation" means.
    struct TrackingEvaluator {
        keys: std::sync::Mutex<std::collections::BTreeSet<(u8, u32, usize)>>,
    }

    impl TrackingEvaluator {
        fn new() -> Self {
            TrackingEvaluator {
                keys: std::sync::Mutex::new(std::collections::BTreeSet::new()),
            }
        }

        fn keys(&self) -> std::collections::BTreeSet<(u8, u32, usize)> {
            self.keys.lock().unwrap().clone()
        }
    }

    impl Evaluator for TrackingEvaluator {
        fn evaluate(&self, config: &MinimizationConfig) -> Result<DesignPoint, CoreError> {
            self.keys.lock().unwrap().insert(config_key(config));
            MockEvaluator.evaluate(config)
        }
    }

    fn island_store() -> crate::store::EvalStore {
        use crate::store::{EvalStore, MemoryBackend};
        EvalStore::with_backend(Box::new(MemoryBackend::new()), "ga", 0).unwrap()
    }

    #[test]
    fn island_of_one_is_bit_identical_to_the_classic_search() {
        let store = island_store();
        let searcher = mock_search(17, 4);
        let classic = searcher.run(&MockEvaluator).unwrap();
        let island = searcher
            .run_island(
                &MockEvaluator,
                &IslandOptions {
                    store: &store,
                    worker_id: "w0",
                    migration_interval: 2,
                    fingerprint: 0xF00D,
                },
                "ga_w0.json",
                0xF00D,
            )
            .unwrap();
        assert_eq!(
            island, classic,
            "a fleet of one must reproduce the single-process search exactly"
        );
        // The island still published fronts for future workers: one at each
        // migration boundary (gen 2) and one at the end (gen 4).
        let published = store.list_docs(&island_doc_prefix(0xF00D)).unwrap();
        assert_eq!(
            published,
            vec![
                "island_000000000000f00d_w0_gen002.json".to_string(),
                "island_000000000000f00d_w0_gen004.json".to_string(),
            ]
        );
    }

    #[test]
    fn two_islands_share_elites_without_duplicate_evaluations() {
        let store = island_store();
        let fingerprint = 0xBEEF;

        // Island A runs to completion, publishing its front every generation.
        let a_eval = TrackingEvaluator::new();
        let searcher_a = mock_search(3, 4);
        let result_a = searcher_a
            .run_island(
                &a_eval,
                &IslandOptions {
                    store: &store,
                    worker_id: "wa",
                    migration_interval: 1,
                    fingerprint,
                },
                "ga_wa.json",
                fingerprint,
            )
            .unwrap();

        // Island B (different seed => different trajectory) joins afterwards
        // and imports A's published elites at every migration boundary.
        let b_eval = TrackingEvaluator::new();
        let searcher_b = mock_search(4, 4);
        let result_b = searcher_b
            .run_island(
                &b_eval,
                &IslandOptions {
                    store: &store,
                    worker_id: "wb",
                    migration_interval: 1,
                    fingerprint,
                },
                "ga_wb.json",
                fingerprint,
            )
            .unwrap();

        // Zero duplicate evaluations: no configuration A ever published as
        // an elite was paid for again by B's evaluator — B adopted all of
        // them (pre-init import) before evaluating anything.
        let mut published_keys: std::collections::BTreeSet<(u8, u32, usize)> =
            std::collections::BTreeSet::new();
        let a_prefix = format!("{}wa_", island_doc_prefix(fingerprint));
        for name in store.list_docs(&a_prefix).unwrap() {
            let text = store.get_doc(&name).unwrap().unwrap();
            let parsed = json::parse(&text).unwrap();
            let points: Vec<DesignPoint> =
                Deserialize::deserialize_value(parsed.get("front").unwrap()).unwrap();
            published_keys.extend(points.iter().map(|p| config_key(&p.config)));
        }
        assert!(
            !published_keys.is_empty(),
            "island A must have published elite fronts"
        );
        let duplicates: Vec<_> = b_eval
            .keys()
            .intersection(&published_keys)
            .copied()
            .collect();
        assert!(
            duplicates.is_empty(),
            "island B re-evaluated migrated configs: {duplicates:?}"
        );

        // B actually imported: its scored set contains points it never paid
        // for itself.
        let b_all_keys: std::collections::BTreeSet<(u8, u32, usize)> = result_b
            .all_points
            .iter()
            .map(|p| config_key(&p.config))
            .collect();
        assert!(
            b_all_keys.len() > b_eval.keys().len(),
            "island B's result must include imported migrants"
        );

        // Convergence: B's final front is non-dominated against A's — the
        // fleet's combined knowledge is in it.
        let objectives = ObjectiveSpace::classic();
        for b in &result_b.pareto_front {
            for a in &result_a.pareto_front {
                assert!(
                    !objectives.dominates(a, b),
                    "B's front member {b:?} is dominated by A's {a:?}"
                );
            }
        }
    }

    #[test]
    fn island_options_are_validated() {
        let store = island_store();
        let searcher = mock_search(1, 2);
        let bad_worker = IslandOptions {
            store: &store,
            worker_id: "../escape",
            migration_interval: 1,
            fingerprint: 1,
        };
        assert!(searcher
            .run_island(&MockEvaluator, &bad_worker, "c.json", 1)
            .is_err());
        let zero_interval = IslandOptions {
            store: &store,
            worker_id: "w0",
            migration_interval: 0,
            fingerprint: 1,
        };
        assert!(searcher
            .run_island(&MockEvaluator, &zero_interval, "c.json", 1)
            .is_err());
    }

    #[test]
    fn foreign_fingerprint_fronts_are_never_imported() {
        let store = island_store();
        // A front sealed against another baseline fingerprint sits in the
        // store under the same naming scheme prefix family.
        let alien = crate::store::seal_envelope(
            "pmlp-island-front",
            1,
            0xDEAD,
            vec![("front".into(), Value::Array(vec![]))],
        );
        store
            .put_doc(
                "island_000000000000dead_wx_gen001.json",
                &alien.render_pretty(),
            )
            .unwrap();
        let searcher = mock_search(8, 3);
        let classic = searcher.run(&MockEvaluator).unwrap();
        let island = searcher
            .run_island(
                &MockEvaluator,
                &IslandOptions {
                    store: &store,
                    worker_id: "w0",
                    migration_interval: 1,
                    fingerprint: 0xFEED,
                },
                "ga_w0.json",
                0xFEED,
            )
            .unwrap();
        assert_eq!(island, classic, "alien-baseline fronts must be invisible");
    }

    #[test]
    fn config_validation() {
        assert!(Nsga2Config {
            population: 2,
            ..Nsga2Config::default()
        }
        .validate()
        .is_err());
        assert!(Nsga2Config {
            generations: 0,
            ..Nsga2Config::default()
        }
        .validate()
        .is_err());
        assert!(Nsga2Config {
            mutation_rate: 1.5,
            ..Nsga2Config::default()
        }
        .validate()
        .is_err());
        assert!(Nsga2Config {
            tournament_size: 0,
            ..Nsga2Config::default()
        }
        .validate()
        .is_err());
        assert!(Nsga2Config::default().validate().is_ok());
    }

    #[test]
    fn tiny_search_on_seeds_improves_over_baseline() {
        // A deliberately tiny search (small population, few generations, short
        // fine-tuning) so the test stays fast; it still must find designs that
        // dominate large parts of the area axis.
        let engine = EvalEngine::train_with(
            UciDataset::Seeds,
            11,
            &crate::baseline::BaselineConfig {
                epochs: 10,
                ..crate::baseline::BaselineConfig::default()
            },
        )
        .unwrap()
        .with_fine_tune_epochs(2);
        let config = Nsga2Config {
            population: 6,
            generations: 2,
            seed: 1,
            space: GenomeSpace {
                weight_bits: vec![3, 4],
                sparsities: vec![0.3, 0.5],
                cluster_counts: vec![3],
                enable_probability: 0.8,
            },
            ..Nsga2Config::default()
        };
        let result = Nsga2::new(config).run(&engine).unwrap();
        assert!(!result.pareto_front.is_empty());
        assert_eq!(result.history.len(), 2);
        // The search must discover at least one design smaller than baseline.
        assert!(result.pareto_front.iter().any(|p| p.normalized_area < 0.9));
        // The front is non-dominated.
        for a in &result.pareto_front {
            for b in &result.pareto_front {
                assert!(!crate::pareto::dominates(a, b) || a == b);
            }
        }
        // History tracks a non-decreasing evaluation count, and the engine
        // cache matches the search's own distinct-genome count.
        assert!(result
            .history
            .windows(2)
            .all(|w| w[1].evaluations >= w[0].evaluations));
        let final_evals = result.history.last().unwrap().evaluations;
        assert_eq!(engine.stats().entries, final_evals);
        // Re-running the same search on the warm engine is answered entirely
        // from the cache and produces the identical result.
        let misses_before = engine.stats().misses;
        let rerun = Nsga2::new(Nsga2Config {
            population: 6,
            generations: 2,
            seed: 1,
            space: GenomeSpace {
                weight_bits: vec![3, 4],
                sparsities: vec![0.3, 0.5],
                cluster_counts: vec![3],
                enable_probability: 0.8,
            },
            ..Nsga2Config::default()
        })
        .run(&engine)
        .unwrap();
        assert_eq!(rerun.pareto_front, result.pareto_front);
        assert_eq!(
            engine.stats().misses,
            misses_before,
            "warm re-run must not recompute"
        );
    }
}
