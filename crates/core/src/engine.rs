//! The shared evaluation engine: one memoizing, parallel path through which
//! every search, sweep and experiment scores candidate configurations.
//!
//! The inner loop of the paper — fine-tune a minimized candidate, synthesize
//! its bespoke circuit, report the (accuracy, area) pair — dominates total
//! runtime. [`EvalEngine`] makes that loop fast and shared:
//!
//! * it **owns** the trained [`BaselineDesign`] (dataset splits, float model,
//!   baseline circuit) so drivers no longer juggle borrowed contexts,
//! * a **sharded memo cache** keyed by the canonicalized
//!   [`MinimizationConfig`] makes every configuration pay its evaluation cost
//!   exactly once per engine, across sweeps, GA generations and experiments,
//! * **in-flight deduplication** guarantees that concurrent workers asking
//!   for the same configuration never evaluate it twice — later arrivals
//!   block on the first evaluation and reuse its result,
//! * [`EvalEngine::evaluate_batch`] fans a whole population out over the
//!   worker threads,
//! * a **progress hook** ([`EvalEngine::with_progress`]) reports every
//!   completed evaluation, so long experiment runs can surface liveness.
//!
//! Anything that scores configurations should accept `&impl` [`Evaluator`]
//! rather than a concrete engine, which keeps searches testable against
//! closed-form mock evaluators.
//!
//! # Example
//!
//! ```no_run
//! use pmlp_core::engine::{EvalEngine, Evaluator};
//! use pmlp_data::UciDataset;
//! use pmlp_minimize::MinimizationConfig;
//!
//! # fn main() -> Result<(), pmlp_core::CoreError> {
//! let engine = EvalEngine::train(UciDataset::Seeds, 42)?.with_fine_tune_epochs(4);
//! let point = engine.evaluate(&MinimizationConfig::default().with_weight_bits(4))?;
//! println!("area gain {:.2}x", point.area_gain());
//! // A second request for the same configuration is a cache hit.
//! let again = engine.evaluate(&MinimizationConfig::default().with_weight_bits(4))?;
//! assert_eq!(point, again);
//! assert_eq!(engine.stats().hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::baseline::{BaselineConfig, BaselineDesign};
use crate::bridge::{synthesize_area, SynthesisSummary};
use crate::error::CoreError;
use crate::objective::{
    evaluate_config_detailed, AccuracyTier, DesignPoint, EvaluationContext, SynthesisTier,
};
use crate::store::{EvalArtifacts, EvalRecord, EvalStore, StoreBackend};
use pmlp_data::UciDataset;
use pmlp_hw::SharingStrategy;
use pmlp_minimize::{IntegerLayer, MinimizationConfig};
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Anything that can score a [`MinimizationConfig`] against a baseline.
///
/// [`EvalEngine`] is the production implementation; tests can substitute
/// closed-form mocks to exercise search logic without training networks.
pub trait Evaluator: Sync {
    /// Evaluates a single configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when minimization or synthesis fails.
    fn evaluate(&self, config: &MinimizationConfig) -> Result<DesignPoint, CoreError>;

    /// Evaluates a batch of configurations, by default sequentially; the
    /// engine overrides this with a parallel implementation.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] encountered.
    fn evaluate_batch(
        &self,
        configs: &[MinimizationConfig],
    ) -> Result<Vec<DesignPoint>, CoreError> {
        configs.iter().map(|c| self.evaluate(c)).collect()
    }
}

/// Canonical cache identity of a configuration under a fixed engine setup.
///
/// Sparsity is snapped to a 1e-3 grid (matching the genome encoding) so that
/// float noise cannot split logically identical configurations into distinct
/// cache entries. This is also the persistent identity of an evaluation in
/// the on-disk [`EvalStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// Quantization bit-width (0 = quantization disabled).
    pub weight_bits: u8,
    /// Sparsity snapped to the 1e-3 grid (`u32::MAX` = pruning disabled).
    pub sparsity_millis: u32,
    /// Clusters per input (0 = clustering disabled).
    pub clusters: usize,
    /// Input bit-width of the bespoke circuit.
    pub input_bits: u8,
    /// Fine-tuning budget the candidate was evaluated under.
    pub fine_tune_epochs: usize,
    /// RNG salt of the evaluation (see [`EvalEngine::with_salt`]).
    pub salt: u64,
    /// Which arithmetic measured the candidate's accuracy (see
    /// [`AccuracyTier`]); results scored under different tiers never mix.
    pub accuracy_tier: AccuracyTier,
}

impl EvalKey {
    fn new(
        config: &MinimizationConfig,
        input_bits: u8,
        fine_tune_epochs: usize,
        salt: u64,
        accuracy_tier: AccuracyTier,
    ) -> Self {
        EvalKey {
            weight_bits: config.weight_bits.unwrap_or(0),
            sparsity_millis: config
                .sparsity
                .map(crate::genome::sparsity_millis)
                .unwrap_or(u32::MAX),
            clusters: config.clusters_per_input.unwrap_or(0),
            input_bits,
            fine_tune_epochs,
            salt,
            accuracy_tier,
        }
    }

    /// FNV-1a over the key fields; used only for shard selection.
    fn shard_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(u64::from(self.weight_bits));
        mix(u64::from(self.sparsity_millis));
        mix(self.clusters as u64);
        mix(u64::from(self.input_bits));
        mix(self.fine_tune_epochs as u64);
        mix(self.salt);
        mix(match self.accuracy_tier {
            AccuracyTier::Float => 0,
            AccuracyTier::Integer => 1,
        });
        h
    }
}

/// A pending evaluation that concurrent requesters can wait on.
struct InFlight {
    result: Mutex<Option<Result<DesignPoint, CoreError>>>,
    done: Condvar,
}

impl InFlight {
    fn new() -> Arc<Self> {
        Arc::new(InFlight {
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn fill(&self, value: Result<DesignPoint, CoreError>) {
        *self.result.lock().expect("in-flight lock") = Some(value);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<DesignPoint, CoreError> {
        let mut guard = self.result.lock().expect("in-flight lock");
        while guard.is_none() {
            guard = self.done.wait(guard).expect("in-flight wait");
        }
        guard.as_ref().expect("filled").clone()
    }
}

/// A resolved cache entry: the scored point plus, for entries computed in
/// this process, the artefacts finalization needs (integer layers + sharing
/// strategy) without re-running minimization. Entries warm-started from the
/// persistent store carry no artefacts — only the design point is persisted —
/// so finalizing one re-runs the deterministic pipeline once.
#[derive(Debug, Clone)]
struct CachedEval {
    point: DesignPoint,
    artifacts: Option<(Arc<Vec<IntegerLayer>>, SharingStrategy)>,
}

enum Slot {
    Done(CachedEval),
    Pending(Arc<InFlight>),
}

/// Snapshot of the engine's cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Evaluations answered from the memo cache.
    pub hits: usize,
    /// Evaluations that ran the full minimize-and-synthesize pipeline.
    pub misses: usize,
    /// Evaluations that blocked on a concurrent in-flight computation of the
    /// same configuration instead of recomputing it.
    pub coalesced: usize,
    /// Number of distinct configurations currently cached.
    pub entries: usize,
    /// Computed evaluations whose hardware cost came from the analytic fast
    /// path (no netlist).
    pub fast_path: usize,
    /// Computed evaluations (plus finalist verifications) that ran full
    /// gate-level synthesis.
    pub full_synthesis: usize,
    /// Entries preloaded from the persistent evaluation store when the engine
    /// was constructed with [`EvalEngine::with_store`] /
    /// [`EvalEngine::with_backend`].
    pub warmed: usize,
    /// Finalizations that had to re-run the minimization pipeline because the
    /// cached entry carried no artifacts (store records written before
    /// artifact persistence, or with an undecodable blob). Store-warmed
    /// entries with intact artifacts finalize without a re-run.
    pub finalize_reruns: usize,
    /// Process-wide constant-multiplier cost-cache hits at snapshot time
    /// (see [`pmlp_hw::cost::multiplier_cache_stats`]).
    pub multiplier_cache_hits: u64,
    /// Process-wide constant-multiplier cost-cache misses at snapshot time.
    pub multiplier_cache_misses: u64,
    /// Store appends (single or batched) that failed outright — the engine
    /// warns and continues, degrading persistence to this process's
    /// lifetime.
    pub store_append_failures: usize,
    /// Fault-tolerance counters aggregated from the backing store's tiers
    /// (retries, circuit-breaker transitions, journal replays); all zeros
    /// when no store is attached or the backend does not track them.
    pub store_resilience: crate::store::ResilienceStats,
}

impl EngineStats {
    /// Fraction of requests served without running the pipeline, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }

    /// Fraction of multiplier-cost lookups answered from the process-wide
    /// cache, in `[0, 1]`.
    pub fn multiplier_cache_hit_rate(&self) -> f64 {
        let total = self.multiplier_cache_hits + self.multiplier_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.multiplier_cache_hits as f64 / total as f64
        }
    }
}

/// Progress report handed to the [`EvalEngine::with_progress`] callback after
/// every completed evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalProgress {
    /// The configuration that just resolved.
    pub config: MinimizationConfig,
    /// Whether it was answered from the cache (or coalesced onto an in-flight
    /// evaluation) rather than computed.
    pub cached: bool,
    /// Total requests resolved by this engine so far.
    pub resolved: usize,
}

type ProgressFn = dyn Fn(EvalProgress) + Send + Sync;

/// The shared, memoizing, parallel evaluation engine.
///
/// See the [module documentation](self) for the full picture.
pub struct EvalEngine {
    baseline: BaselineDesign,
    fine_tune_epochs: usize,
    salt: u64,
    tier: SynthesisTier,
    accuracy_tier: AccuracyTier,
    shards: Box<[Mutex<HashMap<EvalKey, Slot>>]>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    coalesced: AtomicUsize,
    fast_path: AtomicUsize,
    full_synthesis: AtomicUsize,
    warmed: usize,
    finalize_reruns: AtomicUsize,
    store_append_failures: AtomicUsize,
    store: Option<EvalStore>,
    /// Records computed inside an [`EvalEngine::evaluate_batch`] call, held
    /// back so the whole batch lands in the store as **one** append — over a
    /// remote tier that is one request instead of hundreds.
    batch_buffer: Mutex<Vec<EvalRecord>>,
    /// How many `evaluate_batch` calls are currently on the stack (across
    /// threads); the last one out flushes the buffer.
    batch_depth: AtomicUsize,
    progress: Option<Box<ProgressFn>>,
}

impl std::fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalEngine")
            .field("dataset", &self.baseline.dataset)
            .field("fine_tune_epochs", &self.fine_tune_epochs)
            .field("salt", &self.salt)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default fine-tuning budget per candidate, matching the historical
/// `EvaluationContext::new` default.
const DEFAULT_FINE_TUNE_EPOCHS: usize = 8;

/// Default shard count: enough to keep lock contention negligible at the
/// worker counts this workload sees.
const DEFAULT_SHARDS: usize = 16;

impl EvalEngine {
    /// Wraps an already-trained baseline.
    pub fn new(baseline: BaselineDesign) -> Self {
        let shards = (0..DEFAULT_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        // Candidates default to the arithmetic that scored the baseline, so
        // normalized accuracies compare like with like.
        let accuracy_tier = baseline.accuracy_tier;
        EvalEngine {
            baseline,
            fine_tune_epochs: DEFAULT_FINE_TUNE_EPOCHS,
            salt: 0,
            tier: SynthesisTier::default(),
            accuracy_tier,
            shards,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
            fast_path: AtomicUsize::new(0),
            full_synthesis: AtomicUsize::new(0),
            warmed: 0,
            finalize_reruns: AtomicUsize::new(0),
            store_append_failures: AtomicUsize::new(0),
            store: None,
            batch_buffer: Mutex::new(Vec::new()),
            batch_depth: AtomicUsize::new(0),
            progress: None,
        }
    }

    /// Trains the baseline for `dataset` with the default budget and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates dataset, training and synthesis errors.
    pub fn train(dataset: UciDataset, seed: u64) -> Result<Self, CoreError> {
        Ok(Self::new(BaselineDesign::train(dataset, seed)?))
    }

    /// Trains the baseline with an explicit budget and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates dataset, training and synthesis errors.
    pub fn train_with(
        dataset: UciDataset,
        seed: u64,
        config: &BaselineConfig,
    ) -> Result<Self, CoreError> {
        Ok(Self::new(BaselineDesign::train_with(
            dataset, seed, config,
        )?))
    }

    /// Same as [`EvalEngine::train_with`] with a baseline characterization
    /// cache in `backend` (see [`BaselineDesign::train_cached`]): a cache hit
    /// skips full-precision training and reference synthesis. The backend
    /// only serves the baseline cache here — attach it for evaluations too
    /// with [`EvalEngine::with_backend`].
    ///
    /// # Errors
    ///
    /// Propagates dataset, training, synthesis and store-write errors.
    pub fn train_cached(
        dataset: UciDataset,
        seed: u64,
        config: &BaselineConfig,
        backend: Option<&dyn StoreBackend>,
    ) -> Result<Self, CoreError> {
        Ok(Self::new(BaselineDesign::train_cached(
            dataset, seed, config, backend,
        )?))
    }

    /// Overrides the per-candidate fine-tuning budget.
    ///
    /// The budget is part of the cache key, so results obtained under a
    /// different budget are never mixed up.
    #[must_use]
    pub fn with_fine_tune_epochs(mut self, epochs: usize) -> Self {
        self.fine_tune_epochs = epochs;
        self
    }

    /// Perturbs the fine-tuning RNG of every evaluation (part of the cache
    /// key). Distinct salts give statistically independent re-measurements of
    /// the same configurations.
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Overrides the hardware-model tier of every evaluation (defaults to the
    /// analytic fast path, which is bit-for-bit equivalent to full synthesis
    /// and roughly an order of magnitude cheaper per candidate). Select
    /// [`SynthesisTier::FullSynthesis`] to force every candidate through
    /// gate-level synthesis, e.g. for ablation or to measure the fast path's
    /// speedup.
    #[must_use]
    pub fn with_synthesis_tier(mut self, tier: SynthesisTier) -> Self {
        self.tier = tier;
        self
    }

    /// The hardware-model tier candidate evaluations run through.
    pub fn synthesis_tier(&self) -> SynthesisTier {
        self.tier
    }

    /// Overrides which arithmetic scores every candidate's accuracy (part of
    /// the cache key). Defaults to the tier that scored the baseline —
    /// [`AccuracyTier::Integer`] unless the baseline opted out — so that
    /// normalized accuracies always compare like with like; override both the
    /// baseline's [`crate::BaselineConfig::accuracy_tier`] and this when
    /// ablating against the fake-quantized float model.
    #[must_use]
    pub fn with_accuracy_tier(mut self, tier: AccuracyTier) -> Self {
        self.accuracy_tier = tier;
        self
    }

    /// The arithmetic that scores candidate accuracies.
    pub fn accuracy_tier(&self) -> AccuracyTier {
        self.accuracy_tier
    }

    /// Attaches the persistent evaluation store under `dir` (the local JSONL
    /// backend): the engine warm-starts its in-memory cache from the store's
    /// record log for this baseline (see [`EvalEngine::fingerprint`]) and
    /// appends every cache miss it computes from now on, so later processes
    /// inherit the results.
    ///
    /// All of [`EvalKey`]'s fields travel with each record, so entries
    /// written under other fine-tuning budgets or salts coexist in the same
    /// file and simply never match; changing the *baseline* (dataset, seed,
    /// training budget, hardware tier of the reference circuit) changes the
    /// fingerprint and selects a different file entirely.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the store directory or record log
    /// cannot be opened.
    #[must_use = "with_store returns the engine"]
    pub fn with_store(self, dir: &Path) -> Result<Self, CoreError> {
        let backend = crate::store::LocalJsonlBackend::open(dir)?;
        self.with_backend(Box::new(backend))
    }

    /// Attaches any persistence tier — local directory, in-memory store,
    /// remote `pmlp-serve` client or a [tiered](crate::store::TieredStore)
    /// composition (see [`crate::store::open_backend`]). Warm-starts the
    /// in-memory cache from the backend's records for this baseline and
    /// appends every computed miss.
    ///
    /// Records carrying [finalization artifacts](crate::store::EvalArtifacts)
    /// warm the cache *fully*: [`EvalEngine::finalize`] of such an entry runs
    /// gate-level synthesis directly instead of re-running minimization.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the backend cannot be scanned.
    #[must_use = "with_backend returns the engine"]
    pub fn with_backend(mut self, backend: Box<dyn StoreBackend>) -> Result<Self, CoreError> {
        let mut store = EvalStore::with_backend(
            backend,
            &self.baseline.dataset.to_string(),
            self.fingerprint(),
        )?;
        let records = store.warm_start();
        self.warmed = records.len();
        for record in records {
            let artifacts = record.artifacts.map(|a| (Arc::new(a.layers), a.sharing));
            let shard = self.shard_for(&record.key);
            shard.lock().expect("shard lock").insert(
                record.key,
                Slot::Done(CachedEval {
                    point: record.point,
                    artifacts,
                }),
            );
        }
        self.store = Some(store);
        Ok(self)
    }

    /// Stable identity of this engine's baseline, used to bind persistent
    /// store files to the exact reference design (see
    /// [`BaselineDesign::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.baseline.fingerprint()
    }

    /// The persistent store this engine appends to, when one is attached.
    pub fn store(&self) -> Option<&EvalStore> {
        self.store.as_ref()
    }

    /// Installs a progress callback invoked after every resolved evaluation.
    #[must_use]
    pub fn with_progress(
        mut self,
        callback: impl Fn(EvalProgress) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// The baseline every evaluation is normalized against.
    pub fn baseline(&self) -> &BaselineDesign {
        &self.baseline
    }

    /// The per-candidate fine-tuning budget.
    pub fn fine_tune_epochs(&self) -> usize {
        self.fine_tune_epochs
    }

    /// Current cache counters. The multiplier-cache fields are a snapshot of
    /// the *process-wide* constant-multiplier cost cache, which every engine
    /// in the process shares.
    pub fn stats(&self) -> EngineStats {
        let mul = pmlp_hw::cost::multiplier_cache_stats();
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("shard lock").len())
                .sum(),
            fast_path: self.fast_path.load(Ordering::Relaxed),
            full_synthesis: self.full_synthesis.load(Ordering::Relaxed),
            warmed: self.warmed,
            finalize_reruns: self.finalize_reruns.load(Ordering::Relaxed),
            multiplier_cache_hits: mul.hits,
            multiplier_cache_misses: mul.misses,
            store_append_failures: self.store_append_failures.load(Ordering::Relaxed),
            store_resilience: self
                .store
                .as_ref()
                .and_then(|s| s.backend().resilience())
                .unwrap_or_default(),
        }
    }

    /// Drops every cached result (counters are kept).
    pub fn clear_cache(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("shard lock").clear();
        }
    }

    fn shard_for(&self, key: &EvalKey) -> &Mutex<HashMap<EvalKey, Slot>> {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    fn report_progress(&self, config: &MinimizationConfig, cached: bool) {
        if let Some(callback) = &self.progress {
            let resolved = self.hits.load(Ordering::Relaxed)
                + self.misses.load(Ordering::Relaxed)
                + self.coalesced.load(Ordering::Relaxed);
            callback(EvalProgress {
                config: *config,
                cached,
                resolved,
            });
        }
    }

    /// Evaluates `config`, reporting whether the result came from the cache.
    ///
    /// This is the primitive behind [`Evaluator::evaluate`]; searches that
    /// track their own evaluation counts (e.g. NSGA-II generation statistics)
    /// use the `cached` flag.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when minimization or synthesis fails. Errors are
    /// not cached; a later retry re-runs the pipeline.
    pub fn evaluate_with_status(
        &self,
        config: &MinimizationConfig,
    ) -> Result<(DesignPoint, bool), CoreError> {
        let key = EvalKey::new(
            config,
            self.baseline.input_bits,
            self.fine_tune_epochs,
            self.salt,
            self.accuracy_tier,
        );
        let shard = self.shard_for(&key);

        enum Action {
            Hit(DesignPoint),
            Wait(Arc<InFlight>),
            Compute(Arc<InFlight>),
        }

        let action = {
            let mut guard = shard.lock().expect("shard lock");
            match guard.get(&key) {
                Some(Slot::Done(entry)) => Action::Hit(entry.point.clone()),
                Some(Slot::Pending(pending)) => Action::Wait(Arc::clone(pending)),
                None => {
                    let pending = InFlight::new();
                    guard.insert(key, Slot::Pending(Arc::clone(&pending)));
                    Action::Compute(pending)
                }
            }
        };

        match action {
            Action::Hit(point) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.report_progress(config, true);
                Ok((point, true))
            }
            Action::Wait(pending) => {
                // Another worker is computing this exact configuration: block
                // until it finishes and reuse its result.
                let outcome = pending.wait();
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                self.report_progress(config, true);
                outcome.map(|p| (p, true))
            }
            Action::Compute(pending) => {
                // Unwind guard: if the pipeline panics, the pending slot must
                // not stay in the cache (it would wedge every later request
                // for this key) and the waiters must be released rather than
                // blocking on a condvar that will never be signalled.
                struct ReleaseOnUnwind<'a> {
                    shard: &'a Mutex<HashMap<EvalKey, Slot>>,
                    key: EvalKey,
                    pending: &'a InFlight,
                    armed: bool,
                }
                impl Drop for ReleaseOnUnwind<'_> {
                    fn drop(&mut self) {
                        if self.armed {
                            if let Ok(mut guard) = self.shard.lock() {
                                guard.remove(&self.key);
                            }
                            self.pending.fill(Err(CoreError::InvalidConfig {
                                context: "evaluation panicked; see stderr for the panic \
                                          message"
                                    .into(),
                            }));
                        }
                    }
                }
                let mut unwind_guard = ReleaseOnUnwind {
                    shard,
                    key,
                    pending: &pending,
                    armed: true,
                };

                let ctx = EvaluationContext::new(&self.baseline)
                    .with_fine_tune_epochs(self.fine_tune_epochs)
                    .with_tier(self.tier)
                    .with_accuracy_tier(self.accuracy_tier);
                let outcome = evaluate_config_detailed(&ctx, config, self.salt);

                unwind_guard.armed = false;
                // Move the minimized layers into the cache (only the design
                // point is cloned); failures are not cached — a retry re-runs
                // the pipeline.
                let (outcome, stored_artifacts) = {
                    let mut guard = shard.lock().expect("shard lock");
                    match outcome {
                        Ok(detailed) => {
                            let point = detailed.point.clone();
                            let artifacts = (Arc::new(detailed.layers), detailed.sharing);
                            guard.insert(
                                key,
                                Slot::Done(CachedEval {
                                    point: detailed.point,
                                    artifacts: Some(artifacts.clone()),
                                }),
                            );
                            (Ok(point), Some(artifacts))
                        }
                        Err(err) => {
                            guard.remove(&key);
                            (Err(err), None)
                        }
                    }
                };
                pending.fill(outcome.clone());
                // Persist the fresh result — layers included, so a later
                // process can finalize it without re-minimizing; a failing
                // append degrades the store to this process's lifetime but
                // never fails a search.
                if let (Some(store), Ok(point)) = (&self.store, &outcome) {
                    let record = EvalRecord {
                        key,
                        tier: self.tier,
                        point: point.clone(),
                        artifacts: stored_artifacts.map(|(layers, sharing)| EvalArtifacts {
                            layers: layers.as_ref().clone(),
                            sharing,
                        }),
                    };
                    if self.batch_depth.load(Ordering::Acquire) > 0 {
                        // Inside evaluate_batch: hold the record back so the
                        // whole batch flushes as one append at the boundary.
                        self.batch_buffer
                            .lock()
                            .expect("batch buffer lock")
                            .push(record);
                    } else if let Err(err) = store.append(&record) {
                        self.store_append_failures.fetch_add(1, Ordering::Relaxed);
                        eprintln!("warning: {err}");
                    }
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                match self.tier {
                    SynthesisTier::FastPath => {
                        self.fast_path.fetch_add(1, Ordering::Relaxed);
                    }
                    SynthesisTier::FullSynthesis => {
                        self.full_synthesis.fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.report_progress(config, false);
                outcome.map(|p| (p, false))
            }
        }
    }
}

/// A Pareto-front finalist re-verified through full gate-level synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalizedDesign {
    /// The design point the search produced (fast-path numbers).
    pub point: DesignPoint,
    /// The full-synthesis summary of the same minimized layers.
    pub full: SynthesisSummary,
    /// `true` when full synthesis reproduced the search-time area, power and
    /// gate count exactly — which it must, since the fast path mirrors
    /// synthesis bit for bit. A `false` here indicates a cost-model bug.
    pub matches_fast_path: bool,
}

impl EvalEngine {
    /// Finalizes one configuration: evaluates it (served from the cache when
    /// the search already scored it), then runs **full gate-level synthesis**
    /// on the cached minimized layers and cross-checks the fast-path numbers.
    ///
    /// This is the second tier of the two-tier evaluation scheme: thousands
    /// of search candidates go through the analytic fast path, and only
    /// Pareto-front finalists (and the baseline) pay for a netlist — which
    /// also makes them simulatable and exportable to Verilog.
    ///
    /// # Errors
    ///
    /// Propagates evaluation and synthesis errors.
    pub fn finalize(&self, config: &MinimizationConfig) -> Result<FinalizedDesign, CoreError> {
        let (point, _) = self.evaluate_with_status(config)?;
        let key = EvalKey::new(
            config,
            self.baseline.input_bits,
            self.fine_tune_epochs,
            self.salt,
            self.accuracy_tier,
        );
        let cached = {
            let guard = self.shard_for(&key).lock().expect("shard lock");
            match guard.get(&key) {
                Some(Slot::Done(entry)) => entry.artifacts.clone(),
                _ => {
                    return Err(CoreError::InvalidConfig {
                        context: "finalize: evaluation vanished from the cache (cleared \
                                  concurrently?)"
                            .into(),
                    })
                }
            }
        };
        let (layers, sharing) = match cached {
            Some(artifacts) => artifacts,
            None => {
                // The entry was warm-started from a store record without a
                // usable artifact blob (written before artifact persistence,
                // or damaged). Re-run the deterministic pipeline once to
                // regenerate the minimized layers, and keep them for any
                // later finalization of the same configuration.
                self.finalize_reruns.fetch_add(1, Ordering::Relaxed);
                let ctx = EvaluationContext::new(&self.baseline)
                    .with_fine_tune_epochs(self.fine_tune_epochs)
                    .with_tier(self.tier)
                    .with_accuracy_tier(self.accuracy_tier);
                let detailed = evaluate_config_detailed(&ctx, config, self.salt)?;
                let artifacts = (Arc::new(detailed.layers), detailed.sharing);
                let mut guard = self.shard_for(&key).lock().expect("shard lock");
                if let Some(Slot::Done(entry)) = guard.get_mut(&key) {
                    entry.artifacts = Some(artifacts.clone());
                }
                artifacts
            }
        };
        let full = synthesize_area(
            &layers,
            self.baseline.input_bits,
            &self.baseline.library,
            sharing,
        )?;
        self.full_synthesis.fetch_add(1, Ordering::Relaxed);
        let matches_fast_path = full.area_mm2 == point.area_mm2
            && full.power_uw == point.power_uw
            && full.gate_count == point.gate_count;
        Ok(FinalizedDesign {
            point,
            full,
            matches_fast_path,
        })
    }
}

impl EvalEngine {
    /// Drains the batch buffer into the store as one append. A failing flush
    /// degrades the store to this process's lifetime but never fails a
    /// search, mirroring the single-append contract.
    fn flush_batched_records(&self) {
        let records = std::mem::take(&mut *self.batch_buffer.lock().expect("batch buffer lock"));
        if records.is_empty() {
            return;
        }
        if let Some(store) = &self.store {
            if let Err(err) = store.append_batch(&records) {
                self.store_append_failures
                    .fetch_add(records.len(), Ordering::Relaxed);
                eprintln!("warning: {err}");
            }
        }
    }
}

impl Drop for EvalEngine {
    /// Safety net: records buffered by an `evaluate_batch` call that never
    /// unwound cleanly still reach the store before the engine goes away.
    fn drop(&mut self) {
        self.flush_batched_records();
    }
}

impl Evaluator for EvalEngine {
    fn evaluate(&self, config: &MinimizationConfig) -> Result<DesignPoint, CoreError> {
        self.evaluate_with_status(config).map(|(point, _)| point)
    }

    /// Evaluates the whole batch on the rayon worker pool. Duplicate
    /// configurations within the batch (common in GA populations) are
    /// deduplicated by the in-flight machinery, not recomputed.
    ///
    /// Store appends for the batch's cache misses are buffered and flushed as
    /// **one** [`EvalStore::append_batch`] when the last concurrent batch
    /// finishes (panic-safe) — over a remote store this turns a
    /// request-per-miss into a request-per-generation.
    fn evaluate_batch(
        &self,
        configs: &[MinimizationConfig],
    ) -> Result<Vec<DesignPoint>, CoreError> {
        struct BatchGuard<'a>(&'a EvalEngine);
        impl Drop for BatchGuard<'_> {
            fn drop(&mut self) {
                // Last batch out (depth 1 -> 0) flushes everyone's records.
                if self.0.batch_depth.fetch_sub(1, Ordering::AcqRel) == 1 {
                    self.0.flush_batched_records();
                }
            }
        }
        self.batch_depth.fetch_add(1, Ordering::AcqRel);
        let _guard = BatchGuard(self);
        configs
            .par_iter()
            .map(|config| self.evaluate(config))
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::pareto::pareto_front;

    /// Closed-form fake evaluator: accuracy/area follow simple monotone laws
    /// of the configuration, so search logic can be exercised instantly.
    pub(crate) struct MockEvaluator;

    impl Evaluator for MockEvaluator {
        fn evaluate(&self, config: &MinimizationConfig) -> Result<DesignPoint, CoreError> {
            let bits = f64::from(config.effective_weight_bits());
            let sparsity = config.sparsity.unwrap_or(0.0);
            let clusters = config.clusters_per_input.map(|c| c as f64).unwrap_or(8.0);
            let area = (bits / 8.0) * (1.0 - sparsity) * (clusters / 8.0).min(1.0);
            let accuracy = 0.9 - 0.02 * (8.0 - bits) - 0.05 * sparsity;
            Ok(DesignPoint {
                config: *config,
                accuracy,
                area_mm2: area * 100.0,
                power_uw: area * 10.0,
                delay_us: 1.0 + (8.0 - bits) * 0.125,
                normalized_accuracy: accuracy / 0.9,
                normalized_area: area,
                sparsity,
                gate_count: (area * 1000.0) as usize,
            })
        }
    }

    #[test]
    fn mock_evaluator_supports_batches_and_fronts() {
        let configs = vec![
            MinimizationConfig::baseline(),
            MinimizationConfig::default().with_weight_bits(4),
            MinimizationConfig::default()
                .with_weight_bits(4)
                .with_sparsity(0.5),
        ];
        let points = MockEvaluator.evaluate_batch(&configs).unwrap();
        assert_eq!(points.len(), 3);
        let front = pareto_front(&points);
        assert!(!front.is_empty());
    }

    #[test]
    fn cache_key_canonicalizes_float_noise() {
        let tier = AccuracyTier::default();
        let a = EvalKey::new(
            &MinimizationConfig::default().with_sparsity(0.3),
            4,
            8,
            0,
            tier,
        );
        let b = EvalKey::new(
            &MinimizationConfig::default().with_sparsity(0.30000000001),
            4,
            8,
            0,
            tier,
        );
        assert_eq!(a, b);
        let c = EvalKey::new(
            &MinimizationConfig::default().with_sparsity(0.301),
            4,
            8,
            0,
            tier,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn cache_key_separates_budgets_salts_and_tiers() {
        let config = MinimizationConfig::default().with_weight_bits(4);
        let tier = AccuracyTier::Integer;
        let base = EvalKey::new(&config, 4, 8, 0, tier);
        assert_ne!(base, EvalKey::new(&config, 4, 2, 0, tier));
        assert_ne!(base, EvalKey::new(&config, 6, 8, 0, tier));
        assert_ne!(base, EvalKey::new(&config, 4, 8, 7, tier));
        assert_ne!(base, EvalKey::new(&config, 4, 8, 0, AccuracyTier::Float));
        assert_eq!(base, EvalKey::new(&config, 4, 8, 0, tier));
    }

    #[test]
    fn stats_hit_rate_is_fraction_of_cached_answers() {
        let stats = EngineStats {
            hits: 3,
            misses: 1,
            coalesced: 1,
            entries: 1,
            ..EngineStats::default()
        };
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(EngineStats::default().hit_rate(), 0.0);
        let stats = EngineStats {
            multiplier_cache_hits: 3,
            multiplier_cache_misses: 1,
            ..EngineStats::default()
        };
        assert!((stats.multiplier_cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(EngineStats::default().multiplier_cache_hit_rate(), 0.0);
    }
}
