//! Pareto-front utilities over N-dimensional objective vectors.
//!
//! Every function here comes in two forms: a `*_in` variant parameterized by
//! an [`ObjectiveSpace`] (the ordered axes selection operates over) and a
//! classic wrapper fixed to the paper's `(accuracy ↑, area ↓)` space. The
//! wrappers are not approximations — the generic code compares **raw measured
//! values** with per-axis direction, so the classic space performs bit-for-bit
//! the comparisons this module always performed.
//!
//! All orderings in this module are **NaN-safe**: a degenerate evaluation
//! whose objectives contain NaN never panics a search — it simply ranks
//! worst (excluded from fronts, last Pareto rank, zero crowding distance,
//! skipped by the hypervolume indicator).

use crate::objective::{DesignMetrics, DesignPoint, ObjectiveKind, ObjectiveSpace};
use std::cmp::Ordering;

/// Descending order with NaN last: larger values first, NaN after everything
/// (used for crowding distances, where NaN must never look "isolated").
pub(crate) fn descending_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// `true` when `a` dominates `b` in the classic `(accuracy ↑, area ↓)` space:
/// at least as good in both objectives and strictly better in at least one.
///
/// A point with a NaN objective never dominates anything, and any well-formed
/// point dominates a NaN point. See [`ObjectiveSpace::dominates`] for the
/// N-dimensional form.
pub fn dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    ObjectiveSpace::classic().dominates(a, b)
}

/// The axis [`pareto_front_in`] sorts (and deduplicates) a front along: the
/// first minimized objective when the space has one (classic: area),
/// otherwise the first axis.
fn sort_axis(space: &ObjectiveSpace) -> ObjectiveKind {
    space
        .objectives
        .iter()
        .copied()
        .find(|kind| !kind.maximize_raw())
        .unwrap_or(space.objectives[0])
}

/// Extracts the Pareto front (non-dominated set) of `points` in `space`,
/// sorted by increasing value of the first minimized axis (classic: area).
/// Points with NaN objectives are never part of the front.
pub fn pareto_front_in(space: &ObjectiveSpace, points: &[DesignPoint]) -> Vec<DesignPoint> {
    let axis = sort_axis(space);
    let mut front: Vec<DesignPoint> = points
        .iter()
        .filter(|p| !space.has_nan(p) && !points.iter().any(|q| space.dominates(q, p)))
        .cloned()
        .collect();
    front.sort_by(|a, b| axis.raw_value(a).total_cmp(&axis.raw_value(b)));
    // Remove exact duplicates (same config evaluated twice).
    front.dedup_by(|a, b| a.config == b.config && axis.raw_value(a) == axis.raw_value(b));
    front
}

/// Classic-space [`pareto_front_in`]: the non-dominated set under
/// `(accuracy ↑, area ↓)`, sorted by increasing area.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    pareto_front_in(&ObjectiveSpace::classic(), points)
}

/// Non-dominated sorting in `space`: partitions `points` into Pareto ranks
/// (rank 0 = the Pareto front, rank 1 = the front of the remainder, ...).
/// Returns the rank of every input point. Used by NSGA-II.
///
/// Points with NaN objectives are kept out of the well-formed ranking and all
/// share the worst rank, so a single degenerate evaluation can never displace
/// a real design.
pub fn non_dominated_ranks_in(space: &ObjectiveSpace, points: &[DesignPoint]) -> Vec<usize> {
    let n = points.len();
    let clean: Vec<usize> = (0..n).filter(|&i| !space.has_nan(&points[i])).collect();
    let m = clean.len();
    let mut dominated_by_count = vec![0usize; m];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); m];
    for a in 0..m {
        for b in 0..m {
            if a == b {
                continue;
            }
            if space.dominates(&points[clean[a]], &points[clean[b]]) {
                dominates_list[a].push(b);
            } else if space.dominates(&points[clean[b]], &points[clean[a]]) {
                dominated_by_count[a] += 1;
            }
        }
    }
    let mut ranks = vec![usize::MAX; n];
    let mut current: Vec<usize> = (0..m).filter(|&a| dominated_by_count[a] == 0).collect();
    let mut rank = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &a in &current {
            ranks[clean[a]] = rank;
            for &b in &dominates_list[a] {
                dominated_by_count[b] -= 1;
                if dominated_by_count[b] == 0 {
                    next.push(b);
                }
            }
        }
        current = next;
        rank += 1;
    }
    // NaN points rank strictly behind every well-formed rank.
    for r in &mut ranks {
        if *r == usize::MAX {
            *r = rank;
        }
    }
    ranks
}

/// Classic-space [`non_dominated_ranks_in`].
pub fn non_dominated_ranks(points: &[DesignPoint]) -> Vec<usize> {
    non_dominated_ranks_in(&ObjectiveSpace::classic(), points)
}

/// Crowding distance of every point within one Pareto rank (larger = more
/// isolated = preferred by NSGA-II for diversity), computed over the raw
/// objective values of `space`. Boundary points get `f64::INFINITY`; when
/// several points tie an objective's extreme value, **all** of them are
/// treated as boundary points and get infinite distance (so equally-extreme
/// designs are never crowded out arbitrarily). Points with NaN objectives get
/// distance `0.0` (least preferred).
pub fn crowding_distances_in(space: &ObjectiveSpace, points: &[DesignPoint]) -> Vec<f64> {
    let n = points.len();
    let mut distance = vec![0.0_f64; n];
    let clean: Vec<usize> = (0..n).filter(|&i| !space.has_nan(&points[i])).collect();
    let m = clean.len();
    if m <= 2 {
        for &i in &clean {
            distance[i] = f64::INFINITY;
        }
        return distance;
    }
    for kind in &space.objectives {
        let value = |p: &DesignPoint| kind.raw_value(p);
        let mut order: Vec<usize> = clean.clone();
        order.sort_by(|&a, &b| value(&points[a]).total_cmp(&value(&points[b])));
        let min_value = value(&points[order[0]]);
        let max_value = value(&points[order[m - 1]]);
        // Every point tying an extreme is a boundary point.
        for &i in &order {
            let v = value(&points[i]);
            if v == min_value || v == max_value {
                distance[i] = f64::INFINITY;
            }
        }
        let range = max_value - min_value;
        if range <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let prev = value(&points[order[w - 1]]);
            let next = value(&points[order[w + 1]]);
            distance[order[w]] += (next - prev) / range;
        }
    }
    distance
}

/// Classic-space [`crowding_distances_in`].
pub fn crowding_distances(points: &[DesignPoint]) -> Vec<f64> {
    crowding_distances_in(&ObjectiveSpace::classic(), points)
}

/// The largest area-reduction factor achievable while losing at most
/// `max_accuracy_loss` (absolute accuracy points — the definition of
/// [`DesignPoint::accuracy_loss`]) relative to `baseline_accuracy` — the
/// paper's headline "Nx area gain for up to 5 % accuracy loss" metric.
/// Returns `None` when no point meets the constraint.
pub fn area_gain_at_accuracy_loss(
    points: &[DesignPoint],
    baseline_accuracy: f64,
    max_accuracy_loss: f64,
) -> Option<f64> {
    points
        .iter()
        .filter(|p| baseline_accuracy - p.accuracy <= max_accuracy_loss)
        .map(|p| p.area_gain())
        .fold(None, |best, gain| match best {
            Some(b) if b >= gain => Some(b),
            _ => Some(gain),
        })
}

/// Normalizes one point onto the baseline-referenced hypervolume axis of
/// `kind`, as a minimization coordinate clamped to `[0, 1]`:
///
/// * [`ObjectiveKind::AccuracyLoss`] → `baseline.accuracy − accuracy`
///   (absolute accuracy points; a total collapse to zero accuracy of a
///   perfect baseline sits at the reference corner),
/// * every hardware axis → `value / baseline value` (the baseline itself sits
///   exactly on the reference corner and contributes zero volume).
///
/// Returns `None` for NaN values or an unusable (non-positive, non-finite)
/// baseline reference.
fn hypervolume_axis(
    kind: ObjectiveKind,
    point: &DesignPoint,
    baseline: &DesignMetrics,
) -> Option<f64> {
    let (value, reference) = match kind {
        ObjectiveKind::AccuracyLoss => (baseline.accuracy - point.accuracy, 1.0),
        ObjectiveKind::Area => (point.area_mm2, baseline.area_mm2),
        ObjectiveKind::Power => (point.power_uw, baseline.power_uw),
        ObjectiveKind::Delay => (point.delay_us, baseline.delay_us),
        ObjectiveKind::EnergyPerInference => (point.energy_pj(), baseline.energy_pj),
    };
    if value.is_nan() || reference <= 0.0 || !reference.is_finite() {
        return None;
    }
    Some((value / reference).clamp(0.0, 1.0))
}

/// Volume of the union of boxes `[vᵢ, 1]^d` over coordinates in `[0, 1]` —
/// the region of the normalized objective box dominated by at least one
/// point. Recursive slicing on the first coordinate; exact, and fast enough
/// for the small fronts (≤ a few dozen points) and dimensions (≤ 5) this
/// workspace produces.
fn dominated_box_volume(mut points: Vec<Vec<f64>>, dim: usize) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    if dim == 1 {
        let min = points.iter().map(|p| p[0]).fold(1.0_f64, f64::min);
        return 1.0 - min;
    }
    points.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut total = 0.0;
    for i in 0..points.len() {
        let slab_start = points[i][0];
        let slab_end = points.get(i + 1).map(|p| p[0]).unwrap_or(1.0);
        if slab_end <= slab_start {
            continue;
        }
        // Points with a first coordinate ≤ slab_start cover this slab; their
        // cross-sections union in one fewer dimension.
        let projected: Vec<Vec<f64>> = points[..=i].iter().map(|p| p[1..].to_vec()).collect();
        total += (slab_end - slab_start) * dominated_box_volume(projected, dim - 1);
    }
    total
}

/// Baseline-referenced hypervolume indicator of `points` in `space`, in
/// `[0, 1]`.
///
/// Every axis is normalized onto the baseline (see the per-axis rules on the
/// internal normalization) and the reference point is the corner `1.0^d`:
/// the accuracy axis measures absolute loss (so the baseline sits at `0`),
/// every hardware axis measures `value / baseline` (so the baseline sits at
/// `1`, the reference — the baseline alone scores exactly `0`, and the
/// indicator grows as the front pushes below baseline cost at low loss).
/// Values beyond the box are clamped, which keeps the indicator **finite by
/// construction** regardless of how degenerate a front is; points with NaN
/// objectives (or an unusable baseline reference on some axis) are skipped.
///
/// A larger hypervolume means a strictly better front: it is monotone under
/// adding points and under improving any point on any axis — the success
/// metric fleet-scale search compares workers by.
pub fn hypervolume(
    space: &ObjectiveSpace,
    points: &[DesignPoint],
    baseline: &DesignMetrics,
) -> f64 {
    let coordinates: Vec<Vec<f64>> = points
        .iter()
        .filter_map(|point| {
            space
                .objectives
                .iter()
                .map(|&kind| hypervolume_axis(kind, point, baseline))
                .collect::<Option<Vec<f64>>>()
        })
        .collect();
    dominated_box_volume(coordinates, space.dim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;

    fn point(accuracy: f64, area: f64) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default(),
            accuracy,
            area_mm2: area,
            power_uw: area * 10.0,
            delay_us: 2.0,
            normalized_accuracy: accuracy,
            normalized_area: area / 100.0,
            sparsity: 0.0,
            gate_count: (area * 10.0) as usize,
        }
    }

    fn baseline_metrics() -> DesignMetrics {
        DesignMetrics {
            accuracy: 0.9,
            area_mm2: 100.0,
            power_uw: 1000.0,
            delay_us: 2.0,
            energy_pj: 2000.0,
        }
    }

    #[test]
    fn dominance_relation() {
        let better = point(0.9, 50.0);
        let worse = point(0.8, 60.0);
        let tradeoff = point(0.95, 70.0);
        assert!(dominates(&better, &worse));
        assert!(!dominates(&worse, &better));
        assert!(!dominates(&better, &tradeoff));
        assert!(!dominates(&tradeoff, &better));
        // A point does not dominate itself.
        assert!(!dominates(&better, &better));
    }

    #[test]
    fn pareto_front_keeps_only_non_dominated() {
        let points = vec![
            point(0.9, 50.0),
            point(0.8, 60.0),
            point(0.95, 70.0),
            point(0.7, 40.0),
        ];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 3);
        assert!(front.iter().all(|p| p.accuracy != 0.8));
        // Sorted by area.
        assert!(front.windows(2).all(|w| w[0].area_mm2 <= w[1].area_mm2));
    }

    #[test]
    fn ranks_are_consistent_with_dominance() {
        let points = vec![
            point(0.9, 50.0),
            point(0.8, 60.0),
            point(0.95, 70.0),
            point(0.85, 55.0),
        ];
        let ranks = non_dominated_ranks(&points);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[2], 0);
        assert!(ranks[1] > 0);
        // A dominated point never has a lower rank than its dominator.
        for i in 0..points.len() {
            for j in 0..points.len() {
                if dominates(&points[i], &points[j]) {
                    assert!(ranks[i] <= ranks[j]);
                }
            }
        }
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        let points = vec![
            point(0.90, 50.0),
            point(0.901, 50.5), // crowded next to the first
            point(0.95, 80.0),  // isolated
            point(0.80, 20.0),  // boundary
        ];
        let d = crowding_distances(&points);
        assert!(d[3].is_infinite());
        assert!(d[2] >= d[1]);
    }

    #[test]
    fn crowding_small_sets_are_all_infinite() {
        let points = vec![point(0.9, 10.0), point(0.8, 5.0)];
        assert!(crowding_distances(&points).iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn crowding_gives_all_tied_extremes_infinite_distance() {
        // Two points tie the minimum area (and two tie the maximum accuracy):
        // every point at an objective extreme must be treated as a boundary
        // point, regardless of where a stable sort happens to place it.
        let points = vec![
            point(0.80, 20.0), // ties min area
            point(0.85, 20.0), // ties min area
            point(0.90, 50.0),
            point(0.95, 80.0), // ties max accuracy (and max area)
            point(0.95, 60.0), // ties max accuracy
        ];
        let d = crowding_distances(&points);
        assert!(d[0].is_infinite(), "tied min-area point crowded out: {d:?}");
        assert!(d[1].is_infinite(), "tied min-area point crowded out: {d:?}");
        assert!(d[3].is_infinite(), "tied max-accuracy point: {d:?}");
        assert!(d[4].is_infinite(), "tied max-accuracy point: {d:?}");
        assert!(d[2].is_finite(), "interior point must stay finite: {d:?}");
    }

    #[test]
    fn crowding_all_equal_points_are_all_boundaries() {
        let points = vec![point(0.9, 10.0); 4];
        assert!(crowding_distances(&points).iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn nan_points_rank_worst_and_never_reach_the_front() {
        let mut points = vec![point(0.9, 50.0), point(0.8, 60.0)];
        points.push(point(f64::NAN, 10.0));
        points.push(point(0.99, f64::NAN));

        // The front contains only well-formed points, sorted without panics.
        let front = pareto_front(&points);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].accuracy, 0.9);

        // NaN points share the worst rank, strictly behind every clean rank.
        let ranks = non_dominated_ranks(&points);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[1], 1);
        assert_eq!(ranks[2], 2);
        assert_eq!(ranks[3], 2);

        // Crowding never rewards a NaN point with infinite distance.
        let d = crowding_distances(&points);
        assert_eq!(d[2], 0.0);
        assert_eq!(d[3], 0.0);
        assert!(d[0].is_infinite() && d[1].is_infinite());

        // Domination involving NaN is one-way: clean beats NaN, never the
        // reverse (and NaN does not dominate NaN).
        assert!(dominates(&points[0], &points[2]));
        assert!(!dominates(&points[2], &points[0]));
        assert!(!dominates(&points[2], &points[3]));
    }

    #[test]
    fn all_nan_input_is_handled_without_panicking() {
        let points = vec![point(f64::NAN, f64::NAN); 3];
        assert!(pareto_front(&points).is_empty());
        assert_eq!(non_dominated_ranks(&points), vec![0, 0, 0]);
        assert!(crowding_distances(&points).iter().all(|&d| d == 0.0));
    }

    #[test]
    fn area_gain_at_loss_respects_threshold() {
        // Baseline accuracy 0.9, baseline area 100 (normalized_area = area/100).
        let points = vec![
            point(0.89, 40.0), // 1% loss, 2.5x gain
            point(0.84, 20.0), // 6% loss, 5x gain (excluded at 5%)
            point(0.86, 25.0), // 4% loss, 4x gain
        ];
        let gain = area_gain_at_accuracy_loss(&points, 0.9, 0.05).unwrap();
        assert!((gain - 4.0).abs() < 1e-9);
        let gain_strict = area_gain_at_accuracy_loss(&points, 0.9, 0.015).unwrap();
        assert!((gain_strict - 2.5).abs() < 1e-9);
        assert!(area_gain_at_accuracy_loss(&points, 0.99, 0.01).is_none());
    }

    #[test]
    fn empty_input_yields_empty_front() {
        assert!(pareto_front(&[]).is_empty());
        assert!(non_dominated_ranks(&[]).is_empty());
        assert!(area_gain_at_accuracy_loss(&[], 0.9, 0.05).is_none());
    }

    #[test]
    fn classic_wrappers_match_space_parameterized_forms() {
        let space = ObjectiveSpace::classic();
        let points = vec![
            point(0.9, 50.0),
            point(0.8, 60.0),
            point(0.95, 70.0),
            point(f64::NAN, 10.0),
        ];
        assert_eq!(pareto_front(&points), pareto_front_in(&space, &points));
        assert_eq!(
            non_dominated_ranks(&points),
            non_dominated_ranks_in(&space, &points)
        );
        assert_eq!(
            crowding_distances(&points),
            crowding_distances_in(&space, &points)
        );
    }

    #[test]
    fn three_dimensional_fronts_keep_tradeoff_points() {
        // b loses on area but wins on energy: dominated in the classic space,
        // non-dominated once energy is an axis.
        let a = point(0.9, 50.0);
        let mut b = point(0.9, 55.0);
        b.delay_us = 0.5;
        let classic_front = pareto_front(&[a.clone(), b.clone()]);
        assert_eq!(classic_front.len(), 1);
        let space = ObjectiveSpace::parse("accuracy,area,energy").unwrap();
        let front = pareto_front_in(&space, &[a.clone(), b.clone()]);
        assert_eq!(front.len(), 2, "energy win must keep b on the front");
        // Ranks agree: both rank 0 in 3-D, b behind a in 2-D.
        assert_eq!(
            non_dominated_ranks_in(&space, &[a.clone(), b.clone()]),
            vec![0, 0]
        );
        assert_eq!(non_dominated_ranks(&[a, b]), vec![0, 1]);
    }

    #[test]
    fn hypervolume_of_baseline_alone_is_zero() {
        // The baseline projects to the reference corner on every axis.
        let mut base_point = point(0.9, 100.0);
        base_point.power_uw = 1000.0;
        base_point.delay_us = 2.0;
        for spec in ["accuracy,area", "accuracy,area,energy", "loss,power,delay"] {
            let space = ObjectiveSpace::parse(spec).unwrap();
            let hv = hypervolume(&space, &[base_point.clone()], &baseline_metrics());
            assert!(hv.abs() < 1e-12, "{spec}: {hv}");
        }
    }

    #[test]
    fn hypervolume_rewards_better_fronts() {
        let space = ObjectiveSpace::classic();
        let base = baseline_metrics();
        // Half the area at zero loss dominates a box of 0.5 volume... scaled
        // by the loss axis (full [0,1] width): loss 0, area 0.5 → 1.0 × 0.5.
        let half_area = point(0.9, 50.0);
        let hv = hypervolume(&space, std::slice::from_ref(&half_area), &base);
        assert!((hv - 0.5).abs() < 1e-12, "{hv}");

        // Adding a second, cheaper-but-lossier point only grows the volume.
        let cheap = point(0.86, 20.0);
        let hv2 = hypervolume(&space, &[half_area.clone(), cheap], &base);
        assert!(hv2 > hv);
        assert!(hv2 <= 1.0);

        // A strictly better point gives strictly more volume.
        let better = point(0.9, 40.0);
        assert!(hypervolume(&space, &[better], &base) > hv);
    }

    #[test]
    fn hypervolume_is_finite_and_bounded_for_degenerate_inputs() {
        let base = baseline_metrics();
        for spec in [
            "accuracy,area",
            "accuracy,area,energy",
            "accuracy,area,power,delay",
        ] {
            let space = ObjectiveSpace::parse(spec).unwrap();
            let mut nan = point(f64::NAN, 1.0);
            nan.delay_us = f64::NAN;
            let worse_than_baseline = point(0.2, 1e9);
            let negative_loss = point(0.99, 1.0); // better than baseline accuracy
            let points = vec![nan, worse_than_baseline, negative_loss];
            let hv = hypervolume(&space, &points, &base);
            assert!(hv.is_finite(), "{spec}");
            assert!((0.0..=1.0).contains(&hv), "{spec}: {hv}");
        }
        // Empty fronts and zero baselines degrade to zero, not NaN/∞.
        assert_eq!(
            hypervolume(&ObjectiveSpace::classic(), &[], &baseline_metrics()),
            0.0
        );
        let dead_baseline = DesignMetrics {
            accuracy: 0.9,
            area_mm2: 0.0,
            power_uw: 0.0,
            delay_us: 0.0,
            energy_pj: 0.0,
        };
        let hv = hypervolume(
            &ObjectiveSpace::classic(),
            &[point(0.9, 50.0)],
            &dead_baseline,
        );
        assert!(hv.is_finite());
    }

    #[test]
    fn hypervolume_three_dimensional_slicing_is_exact() {
        // One point at (loss 0, area 0.5, energy 0.5): volume 1 × 0.5 × 0.5.
        let space = ObjectiveSpace::parse("accuracy,area,energy").unwrap();
        let base = baseline_metrics();
        let mut p = point(0.9, 50.0); // power = 500 µW
        p.delay_us = 2.0; // energy 1000 pJ = half the baseline's 2000
        let hv = hypervolume(&space, &[p.clone()], &base);
        assert!((hv - 0.25).abs() < 1e-12, "{hv}");

        // A second point trading area for energy: (loss 0, area 0.8,
        // energy 0.2) owns a 1 × 0.2 × 0.8 = 0.16 box; the boxes overlap in
        // 1 × 0.2 × 0.5 = 0.10, so the union is 0.25 + 0.16 − 0.10 = 0.31.
        let mut q = point(0.9, 80.0); // power 800 µW
        q.delay_us = 0.5; // energy 400 pJ = 0.2 of baseline
        let hv2 = hypervolume(&space, &[p, q], &base);
        assert!((hv2 - 0.31).abs() < 1e-12, "{hv2}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;
    use proptest::prelude::*;

    fn point(accuracy: f64, area: f64) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default(),
            accuracy,
            area_mm2: area,
            power_uw: 0.0,
            delay_us: 1.0,
            normalized_accuracy: accuracy,
            normalized_area: area,
            sparsity: 0.0,
            gate_count: 0,
        }
    }

    /// A point with independent power/delay axes for N-dimensional checks.
    fn point4(accuracy: f64, area: f64, power: f64, delay: f64) -> DesignPoint {
        DesignPoint {
            power_uw: power,
            delay_us: delay,
            ..point(accuracy, area)
        }
    }

    fn space3() -> ObjectiveSpace {
        ObjectiveSpace::parse("accuracy,area,energy").unwrap()
    }

    fn space4() -> ObjectiveSpace {
        ObjectiveSpace::parse("accuracy,area,power,delay").unwrap()
    }

    proptest! {
        #[test]
        fn front_members_are_mutually_non_dominated(
            raw in proptest::collection::vec((0.0f64..1.0, 1.0f64..100.0), 1..30)
        ) {
            let points: Vec<DesignPoint> = raw.iter().map(|&(a, ar)| point(a, ar)).collect();
            let front = pareto_front(&points);
            for a in &front {
                for b in &front {
                    prop_assert!(!dominates(a, b) || a.area_mm2 == b.area_mm2 && a.accuracy == b.accuracy);
                }
            }
            // Every original point is dominated by or equal to some front member.
            for p in &points {
                prop_assert!(front.iter().any(|f| !dominates(p, f)));
            }
        }

        #[test]
        fn rank_zero_matches_pareto_front_size(
            raw in proptest::collection::vec((0.0f64..1.0, 1.0f64..100.0), 1..25)
        ) {
            let points: Vec<DesignPoint> = raw.iter().map(|&(a, ar)| point(a, ar)).collect();
            let front = pareto_front(&points);
            let ranks = non_dominated_ranks(&points);
            let rank0 = ranks.iter().filter(|&&r| r == 0).count();
            // The front may deduplicate identical points, so it is never larger.
            prop_assert!(front.len() <= rank0);
        }

        #[test]
        fn high_dimensional_fronts_are_mutually_non_dominated(
            raw in proptest::collection::vec(
                (0.0f64..1.0, 1.0f64..100.0, 1.0f64..50.0, 0.1f64..10.0), 1..25)
        ) {
            let points: Vec<DesignPoint> =
                raw.iter().map(|&(a, ar, p, d)| point4(a, ar, p, d)).collect();
            for space in [space3(), space4()] {
                let front = pareto_front_in(&space, &points);
                prop_assert!(!front.is_empty());
                for a in &front {
                    for b in &front {
                        prop_assert!(
                            !space.dominates(a, b)
                                || space.values(a) == space.values(b)
                        );
                    }
                }
                // Consistency with non-dominated sorting: rank-0 count covers
                // the (deduplicated) front.
                let ranks = non_dominated_ranks_in(&space, &points);
                let rank0 = ranks.iter().filter(|&&r| r == 0).count();
                prop_assert!(front.len() <= rank0);
            }
        }

        #[test]
        fn high_dimensional_crowding_is_nan_safe_and_respects_boundaries(
            raw in proptest::collection::vec(
                (0.0f64..1.0, 1.0f64..100.0, 1.0f64..50.0, 0.1f64..10.0), 3..20),
            nan_delay in 0usize..2,
        ) {
            let mut points: Vec<DesignPoint> =
                raw.iter().map(|&(a, ar, p, d)| point4(a, ar, p, d)).collect();
            if nan_delay == 1 {
                // A degenerate record (no delay measurement) must get zero
                // crowding under delay-aware spaces, never infinite.
                points[0].delay_us = f64::NAN;
            }
            for space in [space3(), space4()] {
                let d = crowding_distances_in(&space, &points);
                prop_assert_eq!(d.len(), points.len());
                for (i, &di) in d.iter().enumerate() {
                    prop_assert!(!di.is_nan());
                    prop_assert!(di >= 0.0);
                    if space.has_nan(&points[i]) {
                        prop_assert_eq!(di, 0.0);
                    }
                }
                // Clean extremes on every axis are boundary points.
                let clean: Vec<usize> = (0..points.len())
                    .filter(|&i| !space.has_nan(&points[i]))
                    .collect();
                if clean.len() > 2 {
                    for kind in &space.objectives {
                        let best = clean
                            .iter()
                            .copied()
                            .min_by(|&a, &b| {
                                kind.raw_value(&points[a]).total_cmp(&kind.raw_value(&points[b]))
                            })
                            .unwrap();
                        prop_assert!(d[best].is_infinite());
                    }
                }
            }
        }

        #[test]
        fn hypervolume_is_bounded_and_monotone_under_adding_points(
            raw in proptest::collection::vec(
                (0.0f64..1.0, 1.0f64..200.0, 1.0f64..100.0, 0.1f64..10.0), 2..16)
        ) {
            let points: Vec<DesignPoint> =
                raw.iter().map(|&(a, ar, p, d)| point4(a, ar, p, d)).collect();
            let baseline = DesignMetrics {
                accuracy: 0.9,
                area_mm2: 100.0,
                power_uw: 50.0,
                delay_us: 5.0,
                energy_pj: 250.0,
            };
            for space in [ObjectiveSpace::classic(), space3(), space4()] {
                let all = hypervolume(&space, &points, &baseline);
                prop_assert!(all.is_finite());
                prop_assert!((0.0..=1.0).contains(&all));
                // Monotone: a prefix of the points never has more volume.
                let prefix = hypervolume(&space, &points[..points.len() - 1], &baseline);
                prop_assert!(prefix <= all + 1e-12);
                // Permutation-invariant.
                let mut reversed = points.clone();
                reversed.reverse();
                let rev = hypervolume(&space, &reversed, &baseline);
                prop_assert!((rev - all).abs() < 1e-9);
            }
        }
    }
}
