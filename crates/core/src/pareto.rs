//! Pareto-front utilities over (accuracy ↑, area ↓) design points.
//!
//! All orderings in this module are **NaN-safe**: a degenerate evaluation
//! whose accuracy or area is NaN never panics a search — it simply ranks
//! worst (excluded from fronts, last Pareto rank, zero crowding distance).

use crate::objective::DesignPoint;
use std::cmp::Ordering;

/// `true` when either objective of the point is NaN. Such points compare as
/// worse than every well-formed point.
fn has_nan_objective(p: &DesignPoint) -> bool {
    p.accuracy.is_nan() || p.area_mm2.is_nan()
}

/// Descending order with NaN last: larger values first, NaN after everything
/// (used for crowding distances, where NaN must never look "isolated").
pub(crate) fn descending_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// `true` when `a` dominates `b`: at least as good in both objectives
/// (higher accuracy, lower area) and strictly better in at least one.
///
/// A point with a NaN objective never dominates anything, and any well-formed
/// point dominates a NaN point.
pub fn dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    if has_nan_objective(a) {
        return false;
    }
    if has_nan_objective(b) {
        return true;
    }
    let at_least_as_good = a.accuracy >= b.accuracy && a.area_mm2 <= b.area_mm2;
    let strictly_better = a.accuracy > b.accuracy || a.area_mm2 < b.area_mm2;
    at_least_as_good && strictly_better
}

/// Extracts the Pareto front (non-dominated set) from a collection of design
/// points, sorted by increasing area. Points with NaN objectives are never
/// part of the front.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut front: Vec<DesignPoint> = points
        .iter()
        .filter(|p| !has_nan_objective(p) && !points.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2));
    // Remove exact duplicates (same config evaluated twice).
    front.dedup_by(|a, b| a.config == b.config && a.area_mm2 == b.area_mm2);
    front
}

/// Non-dominated sorting: partitions `points` into Pareto ranks (rank 0 = the
/// Pareto front, rank 1 = the front of the remainder, ...). Returns the rank
/// of every input point. Used by NSGA-II.
///
/// Points with NaN objectives are kept out of the well-formed ranking and all
/// share the worst rank, so a single degenerate evaluation can never displace
/// a real design.
pub fn non_dominated_ranks(points: &[DesignPoint]) -> Vec<usize> {
    let n = points.len();
    let clean: Vec<usize> = (0..n).filter(|&i| !has_nan_objective(&points[i])).collect();
    let m = clean.len();
    let mut dominated_by_count = vec![0usize; m];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); m];
    for a in 0..m {
        for b in 0..m {
            if a == b {
                continue;
            }
            if dominates(&points[clean[a]], &points[clean[b]]) {
                dominates_list[a].push(b);
            } else if dominates(&points[clean[b]], &points[clean[a]]) {
                dominated_by_count[a] += 1;
            }
        }
    }
    let mut ranks = vec![usize::MAX; n];
    let mut current: Vec<usize> = (0..m).filter(|&a| dominated_by_count[a] == 0).collect();
    let mut rank = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &a in &current {
            ranks[clean[a]] = rank;
            for &b in &dominates_list[a] {
                dominated_by_count[b] -= 1;
                if dominated_by_count[b] == 0 {
                    next.push(b);
                }
            }
        }
        current = next;
        rank += 1;
    }
    // NaN points rank strictly behind every well-formed rank.
    for r in &mut ranks {
        if *r == usize::MAX {
            *r = rank;
        }
    }
    ranks
}

/// Crowding distance of every point within one Pareto rank (larger = more
/// isolated = preferred by NSGA-II for diversity). Boundary points get
/// `f64::INFINITY`; when several points tie an objective's extreme value,
/// **all** of them are treated as boundary points and get infinite distance
/// (so equally-extreme designs are never crowded out arbitrarily). Points
/// with NaN objectives get distance `0.0` (least preferred).
pub fn crowding_distances(points: &[DesignPoint]) -> Vec<f64> {
    let n = points.len();
    let mut distance = vec![0.0_f64; n];
    let clean: Vec<usize> = (0..n).filter(|&i| !has_nan_objective(&points[i])).collect();
    let m = clean.len();
    if m <= 2 {
        for &i in &clean {
            distance[i] = f64::INFINITY;
        }
        return distance;
    }
    for objective in 0..2 {
        let value = |p: &DesignPoint| {
            if objective == 0 {
                p.accuracy
            } else {
                p.area_mm2
            }
        };
        let mut order: Vec<usize> = clean.clone();
        order.sort_by(|&a, &b| value(&points[a]).total_cmp(&value(&points[b])));
        let min_value = value(&points[order[0]]);
        let max_value = value(&points[order[m - 1]]);
        // Every point tying an extreme is a boundary point.
        for &i in &order {
            let v = value(&points[i]);
            if v == min_value || v == max_value {
                distance[i] = f64::INFINITY;
            }
        }
        let range = max_value - min_value;
        if range <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let prev = value(&points[order[w - 1]]);
            let next = value(&points[order[w + 1]]);
            distance[order[w]] += (next - prev) / range;
        }
    }
    distance
}

/// The largest area-reduction factor achievable while losing at most
/// `max_accuracy_loss` (absolute accuracy points) relative to
/// `baseline_accuracy` — the paper's headline "Nx area gain for up to 5 %
/// accuracy loss" metric. Returns `None` when no point meets the constraint.
pub fn area_gain_at_accuracy_loss(
    points: &[DesignPoint],
    baseline_accuracy: f64,
    max_accuracy_loss: f64,
) -> Option<f64> {
    points
        .iter()
        .filter(|p| baseline_accuracy - p.accuracy <= max_accuracy_loss)
        .map(|p| p.area_gain())
        .fold(None, |best, gain| match best {
            Some(b) if b >= gain => Some(b),
            _ => Some(gain),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;

    fn point(accuracy: f64, area: f64) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default(),
            accuracy,
            area_mm2: area,
            power_uw: area * 10.0,
            normalized_accuracy: accuracy,
            normalized_area: area / 100.0,
            sparsity: 0.0,
            gate_count: (area * 10.0) as usize,
        }
    }

    #[test]
    fn dominance_relation() {
        let better = point(0.9, 50.0);
        let worse = point(0.8, 60.0);
        let tradeoff = point(0.95, 70.0);
        assert!(dominates(&better, &worse));
        assert!(!dominates(&worse, &better));
        assert!(!dominates(&better, &tradeoff));
        assert!(!dominates(&tradeoff, &better));
        // A point does not dominate itself.
        assert!(!dominates(&better, &better));
    }

    #[test]
    fn pareto_front_keeps_only_non_dominated() {
        let points = vec![
            point(0.9, 50.0),
            point(0.8, 60.0),
            point(0.95, 70.0),
            point(0.7, 40.0),
        ];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 3);
        assert!(front.iter().all(|p| p.accuracy != 0.8));
        // Sorted by area.
        assert!(front.windows(2).all(|w| w[0].area_mm2 <= w[1].area_mm2));
    }

    #[test]
    fn ranks_are_consistent_with_dominance() {
        let points = vec![
            point(0.9, 50.0),
            point(0.8, 60.0),
            point(0.95, 70.0),
            point(0.85, 55.0),
        ];
        let ranks = non_dominated_ranks(&points);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[2], 0);
        assert!(ranks[1] > 0);
        // A dominated point never has a lower rank than its dominator.
        for i in 0..points.len() {
            for j in 0..points.len() {
                if dominates(&points[i], &points[j]) {
                    assert!(ranks[i] <= ranks[j]);
                }
            }
        }
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        let points = vec![
            point(0.90, 50.0),
            point(0.901, 50.5), // crowded next to the first
            point(0.95, 80.0),  // isolated
            point(0.80, 20.0),  // boundary
        ];
        let d = crowding_distances(&points);
        assert!(d[3].is_infinite());
        assert!(d[2] >= d[1]);
    }

    #[test]
    fn crowding_small_sets_are_all_infinite() {
        let points = vec![point(0.9, 10.0), point(0.8, 5.0)];
        assert!(crowding_distances(&points).iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn crowding_gives_all_tied_extremes_infinite_distance() {
        // Two points tie the minimum area (and two tie the maximum accuracy):
        // every point at an objective extreme must be treated as a boundary
        // point, regardless of where a stable sort happens to place it.
        let points = vec![
            point(0.80, 20.0), // ties min area
            point(0.85, 20.0), // ties min area
            point(0.90, 50.0),
            point(0.95, 80.0), // ties max accuracy (and max area)
            point(0.95, 60.0), // ties max accuracy
        ];
        let d = crowding_distances(&points);
        assert!(d[0].is_infinite(), "tied min-area point crowded out: {d:?}");
        assert!(d[1].is_infinite(), "tied min-area point crowded out: {d:?}");
        assert!(d[3].is_infinite(), "tied max-accuracy point: {d:?}");
        assert!(d[4].is_infinite(), "tied max-accuracy point: {d:?}");
        assert!(d[2].is_finite(), "interior point must stay finite: {d:?}");
    }

    #[test]
    fn crowding_all_equal_points_are_all_boundaries() {
        let points = vec![point(0.9, 10.0); 4];
        assert!(crowding_distances(&points).iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn nan_points_rank_worst_and_never_reach_the_front() {
        let mut points = vec![point(0.9, 50.0), point(0.8, 60.0)];
        points.push(point(f64::NAN, 10.0));
        points.push(point(0.99, f64::NAN));

        // The front contains only well-formed points, sorted without panics.
        let front = pareto_front(&points);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].accuracy, 0.9);

        // NaN points share the worst rank, strictly behind every clean rank.
        let ranks = non_dominated_ranks(&points);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[1], 1);
        assert_eq!(ranks[2], 2);
        assert_eq!(ranks[3], 2);

        // Crowding never rewards a NaN point with infinite distance.
        let d = crowding_distances(&points);
        assert_eq!(d[2], 0.0);
        assert_eq!(d[3], 0.0);
        assert!(d[0].is_infinite() && d[1].is_infinite());

        // Domination involving NaN is one-way: clean beats NaN, never the
        // reverse (and NaN does not dominate NaN).
        assert!(dominates(&points[0], &points[2]));
        assert!(!dominates(&points[2], &points[0]));
        assert!(!dominates(&points[2], &points[3]));
    }

    #[test]
    fn all_nan_input_is_handled_without_panicking() {
        let points = vec![point(f64::NAN, f64::NAN); 3];
        assert!(pareto_front(&points).is_empty());
        assert_eq!(non_dominated_ranks(&points), vec![0, 0, 0]);
        assert!(crowding_distances(&points).iter().all(|&d| d == 0.0));
    }

    #[test]
    fn area_gain_at_loss_respects_threshold() {
        // Baseline accuracy 0.9, baseline area 100 (normalized_area = area/100).
        let points = vec![
            point(0.89, 40.0), // 1% loss, 2.5x gain
            point(0.84, 20.0), // 6% loss, 5x gain (excluded at 5%)
            point(0.86, 25.0), // 4% loss, 4x gain
        ];
        let gain = area_gain_at_accuracy_loss(&points, 0.9, 0.05).unwrap();
        assert!((gain - 4.0).abs() < 1e-9);
        let gain_strict = area_gain_at_accuracy_loss(&points, 0.9, 0.015).unwrap();
        assert!((gain_strict - 2.5).abs() < 1e-9);
        assert!(area_gain_at_accuracy_loss(&points, 0.99, 0.01).is_none());
    }

    #[test]
    fn empty_input_yields_empty_front() {
        assert!(pareto_front(&[]).is_empty());
        assert!(non_dominated_ranks(&[]).is_empty());
        assert!(area_gain_at_accuracy_loss(&[], 0.9, 0.05).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;
    use proptest::prelude::*;

    fn point(accuracy: f64, area: f64) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default(),
            accuracy,
            area_mm2: area,
            power_uw: 0.0,
            normalized_accuracy: accuracy,
            normalized_area: area,
            sparsity: 0.0,
            gate_count: 0,
        }
    }

    proptest! {
        #[test]
        fn front_members_are_mutually_non_dominated(
            raw in proptest::collection::vec((0.0f64..1.0, 1.0f64..100.0), 1..30)
        ) {
            let points: Vec<DesignPoint> = raw.iter().map(|&(a, ar)| point(a, ar)).collect();
            let front = pareto_front(&points);
            for a in &front {
                for b in &front {
                    prop_assert!(!dominates(a, b) || a.area_mm2 == b.area_mm2 && a.accuracy == b.accuracy);
                }
            }
            // Every original point is dominated by or equal to some front member.
            for p in &points {
                prop_assert!(front.iter().any(|f| !dominates(p, f)));
            }
        }

        #[test]
        fn rank_zero_matches_pareto_front_size(
            raw in proptest::collection::vec((0.0f64..1.0, 1.0f64..100.0), 1..25)
        ) {
            let points: Vec<DesignPoint> = raw.iter().map(|&(a, ar)| point(a, ar)).collect();
            let front = pareto_front(&points);
            let ranks = non_dominated_ranks(&points);
            let rank0 = ranks.iter().filter(|&&r| r == 0).count();
            // The front may deduplicate identical points, so it is never larger.
            prop_assert!(front.len() <= rank0);
        }
    }
}
