//! Pareto-front utilities over (accuracy ↑, area ↓) design points.

use crate::objective::DesignPoint;

/// `true` when `a` dominates `b`: at least as good in both objectives
/// (higher accuracy, lower area) and strictly better in at least one.
pub fn dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    let at_least_as_good = a.accuracy >= b.accuracy && a.area_mm2 <= b.area_mm2;
    let strictly_better = a.accuracy > b.accuracy || a.area_mm2 < b.area_mm2;
    at_least_as_good && strictly_better
}

/// Extracts the Pareto front (non-dominated set) from a collection of design
/// points, sorted by increasing area.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut front: Vec<DesignPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.area_mm2.partial_cmp(&b.area_mm2).expect("finite areas"));
    // Remove exact duplicates (same config evaluated twice).
    front.dedup_by(|a, b| a.config == b.config && a.area_mm2 == b.area_mm2);
    front
}

/// Non-dominated sorting: partitions `points` into Pareto ranks (rank 0 = the
/// Pareto front, rank 1 = the front of the remainder, ...). Returns the rank
/// of every input point. Used by NSGA-II.
pub fn non_dominated_ranks(points: &[DesignPoint]) -> Vec<usize> {
    let n = points.len();
    let mut dominated_by_count = vec![0usize; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&points[i], &points[j]) {
                dominates_list[i].push(j);
            } else if dominates(&points[j], &points[i]) {
                dominated_by_count[i] += 1;
            }
        }
    }
    let mut ranks = vec![usize::MAX; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by_count[i] == 0).collect();
    let mut rank = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            ranks[i] = rank;
            for &j in &dominates_list[i] {
                dominated_by_count[j] -= 1;
                if dominated_by_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        rank += 1;
    }
    // Any remaining (possible only with NaN metrics, which we do not produce)
    // get the worst rank.
    for r in &mut ranks {
        if *r == usize::MAX {
            *r = rank;
        }
    }
    ranks
}

/// Crowding distance of every point within one Pareto rank (larger = more
/// isolated = preferred by NSGA-II for diversity). Boundary points get
/// `f64::INFINITY`.
pub fn crowding_distances(points: &[DesignPoint]) -> Vec<f64> {
    let n = points.len();
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let mut distance = vec![0.0_f64; n];
    for objective in 0..2 {
        let value = |p: &DesignPoint| {
            if objective == 0 {
                p.accuracy
            } else {
                p.area_mm2
            }
        };
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            value(&points[a])
                .partial_cmp(&value(&points[b]))
                .expect("finite")
        });
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        let range = value(&points[order[n - 1]]) - value(&points[order[0]]);
        if range <= 0.0 {
            continue;
        }
        for w in 1..n - 1 {
            let prev = value(&points[order[w - 1]]);
            let next = value(&points[order[w + 1]]);
            distance[order[w]] += (next - prev) / range;
        }
    }
    distance
}

/// The largest area-reduction factor achievable while losing at most
/// `max_accuracy_loss` (absolute accuracy points) relative to
/// `baseline_accuracy` — the paper's headline "Nx area gain for up to 5 %
/// accuracy loss" metric. Returns `None` when no point meets the constraint.
pub fn area_gain_at_accuracy_loss(
    points: &[DesignPoint],
    baseline_accuracy: f64,
    max_accuracy_loss: f64,
) -> Option<f64> {
    points
        .iter()
        .filter(|p| baseline_accuracy - p.accuracy <= max_accuracy_loss)
        .map(|p| p.area_gain())
        .fold(None, |best, gain| match best {
            Some(b) if b >= gain => Some(b),
            _ => Some(gain),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;

    fn point(accuracy: f64, area: f64) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default(),
            accuracy,
            area_mm2: area,
            power_uw: area * 10.0,
            normalized_accuracy: accuracy,
            normalized_area: area / 100.0,
            sparsity: 0.0,
            gate_count: (area * 10.0) as usize,
        }
    }

    #[test]
    fn dominance_relation() {
        let better = point(0.9, 50.0);
        let worse = point(0.8, 60.0);
        let tradeoff = point(0.95, 70.0);
        assert!(dominates(&better, &worse));
        assert!(!dominates(&worse, &better));
        assert!(!dominates(&better, &tradeoff));
        assert!(!dominates(&tradeoff, &better));
        // A point does not dominate itself.
        assert!(!dominates(&better, &better));
    }

    #[test]
    fn pareto_front_keeps_only_non_dominated() {
        let points = vec![
            point(0.9, 50.0),
            point(0.8, 60.0),
            point(0.95, 70.0),
            point(0.7, 40.0),
        ];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 3);
        assert!(front.iter().all(|p| p.accuracy != 0.8));
        // Sorted by area.
        assert!(front.windows(2).all(|w| w[0].area_mm2 <= w[1].area_mm2));
    }

    #[test]
    fn ranks_are_consistent_with_dominance() {
        let points = vec![
            point(0.9, 50.0),
            point(0.8, 60.0),
            point(0.95, 70.0),
            point(0.85, 55.0),
        ];
        let ranks = non_dominated_ranks(&points);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[2], 0);
        assert!(ranks[1] > 0);
        // A dominated point never has a lower rank than its dominator.
        for i in 0..points.len() {
            for j in 0..points.len() {
                if dominates(&points[i], &points[j]) {
                    assert!(ranks[i] <= ranks[j]);
                }
            }
        }
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        let points = vec![
            point(0.90, 50.0),
            point(0.901, 50.5), // crowded next to the first
            point(0.95, 80.0),  // isolated
            point(0.80, 20.0),  // boundary
        ];
        let d = crowding_distances(&points);
        assert!(d[3].is_infinite());
        assert!(d[2] >= d[1]);
    }

    #[test]
    fn crowding_small_sets_are_all_infinite() {
        let points = vec![point(0.9, 10.0), point(0.8, 5.0)];
        assert!(crowding_distances(&points).iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn area_gain_at_loss_respects_threshold() {
        // Baseline accuracy 0.9, baseline area 100 (normalized_area = area/100).
        let points = vec![
            point(0.89, 40.0), // 1% loss, 2.5x gain
            point(0.84, 20.0), // 6% loss, 5x gain (excluded at 5%)
            point(0.86, 25.0), // 4% loss, 4x gain
        ];
        let gain = area_gain_at_accuracy_loss(&points, 0.9, 0.05).unwrap();
        assert!((gain - 4.0).abs() < 1e-9);
        let gain_strict = area_gain_at_accuracy_loss(&points, 0.9, 0.015).unwrap();
        assert!((gain_strict - 2.5).abs() < 1e-9);
        assert!(area_gain_at_accuracy_loss(&points, 0.99, 0.01).is_none());
    }

    #[test]
    fn empty_input_yields_empty_front() {
        assert!(pareto_front(&[]).is_empty());
        assert!(non_dominated_ranks(&[]).is_empty());
        assert!(area_gain_at_accuracy_loss(&[], 0.9, 0.05).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pmlp_minimize::MinimizationConfig;
    use proptest::prelude::*;

    fn point(accuracy: f64, area: f64) -> DesignPoint {
        DesignPoint {
            config: MinimizationConfig::default(),
            accuracy,
            area_mm2: area,
            power_uw: 0.0,
            normalized_accuracy: accuracy,
            normalized_area: area,
            sparsity: 0.0,
            gate_count: 0,
        }
    }

    proptest! {
        #[test]
        fn front_members_are_mutually_non_dominated(
            raw in proptest::collection::vec((0.0f64..1.0, 1.0f64..100.0), 1..30)
        ) {
            let points: Vec<DesignPoint> = raw.iter().map(|&(a, ar)| point(a, ar)).collect();
            let front = pareto_front(&points);
            for a in &front {
                for b in &front {
                    prop_assert!(!dominates(a, b) || a.area_mm2 == b.area_mm2 && a.accuracy == b.accuracy);
                }
            }
            // Every original point is dominated by or equal to some front member.
            for p in &points {
                prop_assert!(front.iter().any(|f| !dominates(p, f)));
            }
        }

        #[test]
        fn rank_zero_matches_pareto_front_size(
            raw in proptest::collection::vec((0.0f64..1.0, 1.0f64..100.0), 1..25)
        ) {
            let points: Vec<DesignPoint> = raw.iter().map(|&(a, ar)| point(a, ar)).collect();
            let front = pareto_front(&points);
            let ranks = non_dominated_ranks(&points);
            let rank0 = ranks.iter().filter(|&&r| r == 0).count();
            // The front may deduplicate identical points, so it is never larger.
            prop_assert!(front.len() <= rank0);
        }
    }
}
