//! Quantization-aware training (QAT) with a straight-through estimator.
//!
//! The paper quantizes its classifiers with QKeras and retrains
//! (quantization-aware training). The same effect is obtained here by
//! training with a weight constraint that snaps the weights onto the
//! quantization grid after every optimizer step: the forward pass always sees
//! quantized weights while the gradient flows as if the quantizer were the
//! identity (straight-through estimator).

use crate::error::MinimizeError;
use crate::quantize::{quantize_mlp, QuantizationConfig, QuantizedMlp};
use pmlp_nn::{Dataset, Mlp, TrainConfig, TrainReport, Trainer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a quantization-aware training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QatConfig {
    /// Quantization parameters (weight and input bit-widths).
    pub quantization: QuantizationConfig,
    /// Training hyper-parameters for the QAT fine-tuning phase.
    pub training: TrainConfig,
}

impl Default for QatConfig {
    fn default() -> Self {
        QatConfig {
            quantization: QuantizationConfig::default(),
            training: TrainConfig {
                epochs: 20,
                learning_rate: 0.005,
                ..TrainConfig::default()
            },
        }
    }
}

impl QatConfig {
    /// Convenience constructor for a `weight_bits`-bit QAT run with `epochs`
    /// fine-tuning epochs.
    pub fn new(weight_bits: u8, epochs: usize) -> Self {
        QatConfig {
            quantization: QuantizationConfig {
                weight_bits,
                ..QuantizationConfig::default()
            },
            training: TrainConfig {
                epochs,
                learning_rate: 0.005,
                ..TrainConfig::default()
            },
        }
    }
}

/// Runs quantization-aware training on a copy of `mlp` and returns the
/// resulting quantized model (fake-quantized weights + integer codes) together
/// with the training report.
///
/// The per-layer quantization scale is frozen from the initial float weights,
/// matching the fixed-range behaviour of QKeras' `quantized_bits`.
///
/// # Errors
///
/// Returns [`MinimizeError`] when the configuration is invalid or training
/// fails (shape mismatches).
pub fn quantization_aware_train<R: Rng + ?Sized>(
    mlp: &Mlp,
    train: &Dataset,
    validation: Option<&Dataset>,
    config: &QatConfig,
    rng: &mut R,
) -> Result<(QuantizedMlp, TrainReport), MinimizeError> {
    config.quantization.validate()?;

    // Freeze per-layer scales from the initial weights.
    let initial = quantize_mlp(mlp, &config.quantization)?;
    let scales: Vec<f32> = initial.integer_layers().iter().map(|l| l.scale).collect();
    let max_code = config.quantization.max_code() as f32;

    let mut model = mlp.clone();
    let trainer = Trainer::new(config.training.clone());
    let mut constraint = move |m: &mut Mlp| {
        for (layer, &scale) in m.layers_mut().iter_mut().zip(scales.iter()) {
            if scale <= 0.0 {
                continue;
            }
            layer.weights_mut().map_inplace(|w| {
                let code = (w / scale).round().clamp(-max_code, max_code);
                code * scale
            });
        }
    };
    let report = trainer.fit_constrained(&mut model, train, validation, &mut constraint, rng)?;

    // Final integer decomposition of the trained, constraint-satisfying model.
    let quantized = quantize_mlp(&model, &config.quantization)?;
    Ok((quantized, report))
}

/// Post-training quantization baseline (no retraining): quantizes the weights
/// and reports accuracy without any fine-tuning. Used by the QAT-vs-PTQ
/// ablation bench.
///
/// # Errors
///
/// Returns [`MinimizeError`] when the configuration is invalid.
pub fn post_training_quantize(
    mlp: &Mlp,
    config: &QuantizationConfig,
) -> Result<QuantizedMlp, MinimizeError> {
    quantize_mlp(mlp, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_data::{load, UciDataset};
    use pmlp_nn::{Activation, MlpBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_seeds_mlp(rng: &mut StdRng) -> (Mlp, Dataset, Dataset) {
        let data = load(UciDataset::Seeds, 11).unwrap();
        let (train, test) = data.stratified_split(0.8, rng).unwrap();
        let mut mlp = MlpBuilder::new(train.feature_count())
            .hidden(8, Activation::ReLU)
            .output(train.class_count())
            .build(rng)
            .unwrap();
        Trainer::new(TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &train, None, rng)
        .unwrap();
        (mlp, train, test)
    }

    #[test]
    fn qat_produces_weights_on_the_grid() {
        let mut rng = StdRng::seed_from_u64(42);
        let (mlp, train, _) = trained_seeds_mlp(&mut rng);
        let config = QatConfig::new(4, 5);
        let (quantized, report) =
            quantization_aware_train(&mlp, &train, None, &config, &mut rng).unwrap();
        assert_eq!(report.epochs_run, 5);
        for layer in quantized.integer_layers() {
            for &code in layer.codes.iter().flatten() {
                assert!(code.abs() <= 7);
            }
        }
    }

    #[test]
    fn qat_recovers_accuracy_compared_to_ptq_at_low_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mlp, train, test) = trained_seeds_mlp(&mut rng);
        let bits = 3;
        let ptq = post_training_quantize(
            &mlp,
            &QuantizationConfig {
                weight_bits: bits,
                input_bits: 4,
            },
        )
        .unwrap();
        let config = QatConfig::new(bits, 15);
        let (qat, _) = quantization_aware_train(&mlp, &train, None, &config, &mut rng).unwrap();
        let ptq_acc = ptq.model.accuracy(&test);
        let qat_acc = qat.model.accuracy(&test);
        // QAT must not be (meaningfully) worse than post-training quantization.
        assert!(
            qat_acc >= ptq_acc - 0.05,
            "QAT accuracy {qat_acc} much worse than PTQ accuracy {ptq_acc}"
        );
    }

    #[test]
    fn high_precision_qat_tracks_float_accuracy() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mlp, train, test) = trained_seeds_mlp(&mut rng);
        let float_acc = mlp.accuracy(&test);
        let config = QatConfig::new(8, 5);
        let (qat, _) = quantization_aware_train(&mlp, &train, None, &config, &mut rng).unwrap();
        let qat_acc = qat.model.accuracy(&test);
        assert!(
            qat_acc >= float_acc - 0.08,
            "8-bit QAT accuracy {qat_acc} far below float accuracy {float_acc}"
        );
    }

    #[test]
    fn invalid_bit_width_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mlp, train, _) = trained_seeds_mlp(&mut rng);
        let config = QatConfig::new(1, 2);
        assert!(quantization_aware_train(&mlp, &train, None, &config, &mut rng).is_err());
    }
}
