//! The combined minimization pipeline: prune → cluster → quantize (QAT), each
//! with mask/cluster-preserving fine-tuning.

use crate::cluster::{cluster_and_fine_tune, ClusterAssignment, ClusteringConfig};
use crate::config::MinimizationConfig;
use crate::error::MinimizeError;
use crate::prune::{prune_and_fine_tune, PruningMask};
use crate::qat::{quantization_aware_train, QatConfig};
use crate::quantize::{quantize_mlp, IntegerLayer, QuantizationConfig};
use pmlp_nn::{Dataset, Mlp, TrainConfig};
use rand::Rng;

/// The result of applying a [`MinimizationConfig`] to a trained MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimizedModel {
    /// The minimized model (pruned / clustered / fake-quantized weights), used
    /// for software accuracy evaluation.
    pub model: Mlp,
    /// Integer weight codes and scales per layer, the hand-off format for the
    /// bespoke hardware model.
    pub integer_layers: Vec<IntegerLayer>,
    /// The pruning mask that was applied, if any.
    pub mask: Option<PruningMask>,
    /// The cluster assignment that was applied, if any.
    pub clusters: Option<ClusterAssignment>,
    /// The configuration that produced this model.
    pub config: MinimizationConfig,
}

impl MinimizedModel {
    /// Achieved weight sparsity (fraction of exactly-zero weights).
    pub fn sparsity(&self) -> f64 {
        self.model.sparsity()
    }

    /// Classification accuracy of the minimized model on `data`.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        self.model.accuracy(data)
    }

    /// `true` when this model was weight-clustered, i.e. its bespoke circuit
    /// (and any integer inference over [`integer_layers`](Self::integer_layers))
    /// should share one multiplier per distinct `(input, weight)` product.
    /// This is the single source of truth the evaluation layers use to pick a
    /// `pmlp_hw::SharingStrategy` for the cached integer-layer artifacts.
    pub fn shares_multipliers(&self) -> bool {
        self.config.clusters_per_input.is_some()
    }
}

/// Applies the minimization pipeline described by `config` to (a copy of)
/// `mlp`:
///
/// 1. unstructured magnitude pruning + fine-tuning (if `config.sparsity`),
/// 2. per-input weight clustering + fine-tuning (if `config.clusters_per_input`),
/// 3. quantization-aware training at `config.weight_bits` (or plain 8-bit
///    post-training quantization for the baseline), with the pruning mask and
///    cluster structure re-applied inside the QAT constraint so all three
///    techniques compose.
///
/// # Errors
///
/// Returns [`MinimizeError`] when the configuration is invalid or an
/// underlying training step fails.
pub fn minimize<R: Rng + ?Sized>(
    mlp: &Mlp,
    train: &Dataset,
    validation: Option<&Dataset>,
    config: &MinimizationConfig,
    rng: &mut R,
) -> Result<MinimizedModel, MinimizeError> {
    config.validate()?;
    let fine_tune = TrainConfig {
        epochs: config.fine_tune_epochs,
        learning_rate: 0.005,
        // Fine-tune reports are discarded by this pipeline; skipping the
        // per-epoch full-train-set accuracy pass saves a meaningful slice of
        // every candidate evaluation (best-model tracking still runs on the
        // validation set when one is supplied).
        track_train_accuracy: false,
        ..TrainConfig::default()
    };

    let mut model = mlp.clone();
    let mut mask: Option<PruningMask> = None;
    let mut clusters: Option<ClusterAssignment> = None;

    // 1. Pruning.
    if let Some(sparsity) = config.sparsity {
        if sparsity > 0.0 {
            let (m, _) =
                prune_and_fine_tune(&mut model, train, validation, sparsity, &fine_tune, rng)?;
            mask = Some(m);
        }
    }

    // 2. Weight clustering (pruned weights stay zero because the mask is
    //    re-applied after clustering).
    if let Some(k) = config.clusters_per_input {
        let (assignment, _) = cluster_and_fine_tune(
            &mut model,
            train,
            validation,
            &ClusteringConfig::new(k),
            &fine_tune,
            rng,
        )?;
        clusters = Some(assignment);
        if let Some(m) = &mask {
            m.apply(&mut model)?;
        }
    }

    // 3. Quantization. For the baseline (no explicit bit-width) the weights
    //    are post-training quantized to 8 bits, mirroring the un-minimized
    //    bespoke MLP of Mubarik et al.
    let quantized = match config.weight_bits {
        Some(bits) => {
            let qat = QatConfig {
                quantization: QuantizationConfig {
                    weight_bits: bits,
                    input_bits: config.input_bits,
                },
                training: fine_tune.clone(),
            };
            // Compose the structural constraints into the QAT run by wrapping
            // the model: QAT itself snaps to the grid; afterwards the mask and
            // clusters are re-imposed and the integer codes recomputed.
            let (mut q, _) = quantization_aware_train(&model, train, validation, &qat, rng)?;
            if let Some(m) = &mask {
                m.apply(&mut q.model)?;
            }
            if let Some(c) = &mut clusters {
                c.refit_and_apply(&mut q.model)?;
                if let Some(m) = &mask {
                    m.apply(&mut q.model)?;
                }
            }
            // Recompute codes after the structural constraints were re-imposed.
            quantize_mlp(
                &q.model,
                &QuantizationConfig {
                    weight_bits: bits,
                    input_bits: config.input_bits,
                },
            )?
        }
        None => quantize_mlp(
            &model,
            &QuantizationConfig {
                weight_bits: 8,
                input_bits: config.input_bits,
            },
        )?,
    };

    Ok(MinimizedModel {
        model: quantized.model,
        integer_layers: quantized.layers,
        mask,
        clusters,
        config: *config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_data::{load, UciDataset};
    use pmlp_nn::{Activation, MlpBuilder, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn trained_model(rng: &mut StdRng) -> (Mlp, Dataset, Dataset) {
        let data = load(UciDataset::Seeds, 1).unwrap();
        let (train, test) = data.stratified_split(0.8, rng).unwrap();
        let mut mlp = MlpBuilder::new(train.feature_count())
            .hidden(8, Activation::ReLU)
            .output(train.class_count())
            .build(rng)
            .unwrap();
        Trainer::new(TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &train, None, rng)
        .unwrap();
        (mlp, train, test)
    }

    #[test]
    fn baseline_config_quantizes_to_8_bits_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mlp, train, test) = trained_model(&mut rng);
        let result = minimize(
            &mlp,
            &train,
            None,
            &MinimizationConfig::baseline(),
            &mut rng,
        )
        .unwrap();
        assert!(result.mask.is_none());
        assert!(result.clusters.is_none());
        assert_eq!(result.integer_layers[0].weight_bits, 8);
        // 8-bit quantization barely moves accuracy.
        assert!(result.accuracy(&test) >= mlp.accuracy(&test) - 0.05);
    }

    #[test]
    fn pruning_only_config_reaches_target_sparsity() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mlp, train, _) = trained_model(&mut rng);
        let config = MinimizationConfig::default()
            .with_sparsity(0.5)
            .with_fine_tune_epochs(5);
        let result = minimize(&mlp, &train, None, &config, &mut rng).unwrap();
        assert!(result.sparsity() >= 0.45, "sparsity {}", result.sparsity());
        assert!(result.mask.is_some());
    }

    #[test]
    fn quantization_only_config_bounds_codes() {
        let mut rng = StdRng::seed_from_u64(4);
        let (mlp, train, _) = trained_model(&mut rng);
        let config = MinimizationConfig::default()
            .with_weight_bits(3)
            .with_fine_tune_epochs(5);
        let result = minimize(&mlp, &train, None, &config, &mut rng).unwrap();
        for layer in &result.integer_layers {
            assert_eq!(layer.weight_bits, 3);
            assert!(layer.codes.iter().flatten().all(|&c| c.abs() <= 3));
        }
    }

    #[test]
    fn clustering_only_config_limits_distinct_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mlp, train, _) = trained_model(&mut rng);
        let k = 3;
        let config = MinimizationConfig::default()
            .with_clusters(k)
            .with_fine_tune_epochs(5);
        let result = minimize(&mlp, &train, None, &config, &mut rng).unwrap();
        assert!(result.clusters.is_some());
        // After 8-bit quantization of the clustered model, every input row has
        // at most k distinct codes.
        for layer in &result.integer_layers {
            let inputs = layer.codes[0].len();
            for i in 0..inputs {
                let distinct: BTreeSet<i64> = layer.codes.iter().map(|row| row[i]).collect();
                assert!(
                    distinct.len() <= k,
                    "{} distinct codes for one input",
                    distinct.len()
                );
            }
        }
    }

    #[test]
    fn combined_config_composes_all_constraints() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mlp, train, test) = trained_model(&mut rng);
        let config = MinimizationConfig::default()
            .with_weight_bits(4)
            .with_sparsity(0.4)
            .with_clusters(3)
            .with_fine_tune_epochs(5);
        let result = minimize(&mlp, &train, None, &config, &mut rng).unwrap();
        // Sparsity preserved through clustering and QAT.
        assert!(result.sparsity() >= 0.35, "sparsity {}", result.sparsity());
        // Codes fit 4 bits.
        for layer in &result.integer_layers {
            assert!(layer.codes.iter().flatten().all(|&c| c.abs() <= 7));
        }
        // The minimized model still classifies far better than chance (1/3).
        assert!(
            result.accuracy(&test) > 0.5,
            "accuracy collapsed: {}",
            result.accuracy(&test)
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mlp, train, _) = trained_model(&mut rng);
        let config = MinimizationConfig::default().with_sparsity(1.5);
        assert!(minimize(&mlp, &train, None, &config, &mut rng).is_err());
    }
}
