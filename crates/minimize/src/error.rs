//! Error type for the minimization crate.

use std::fmt;

/// Error returned by minimization passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinimizeError {
    /// A configuration value is out of range.
    InvalidConfig {
        /// Description of the offending value.
        context: String,
    },
    /// An underlying neural-network error (shape mismatch etc.).
    Nn {
        /// Description forwarded from [`pmlp_nn::NnError`].
        context: String,
    },
}

impl fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinimizeError::InvalidConfig { context } => {
                write!(f, "invalid minimization config: {context}")
            }
            MinimizeError::Nn { context } => write!(f, "network error: {context}"),
        }
    }
}

impl std::error::Error for MinimizeError {}

impl From<pmlp_nn::NnError> for MinimizeError {
    fn from(err: pmlp_nn::NnError) -> Self {
        MinimizeError::Nn {
            context: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = MinimizeError::InvalidConfig {
            context: "sparsity 2.0".into(),
        };
        assert!(e.to_string().contains("sparsity"));
        let nn = pmlp_nn::NnError::InvalidConfig {
            context: "x".into(),
        };
        assert!(matches!(MinimizeError::from(nn), MinimizeError::Nn { .. }));
    }
}
