//! The joint minimization configuration searched by the hardware-aware GA.

use crate::error::MinimizeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A combined minimization configuration: any subset of {quantization,
/// pruning, weight clustering} plus the input precision of the bespoke
/// circuit.
///
/// `None` for a field means "do not apply that technique" (the baseline
/// bespoke MLP of Mubarik et al. corresponds to `MinimizationConfig::baseline()`).
///
/// # Example
///
/// ```
/// use pmlp_minimize::MinimizationConfig;
///
/// let config = MinimizationConfig::default()
///     .with_weight_bits(4)
///     .with_sparsity(0.4)
///     .with_clusters(3);
/// assert!(config.validate().is_ok());
/// assert_eq!(config.describe(), "q4/p0.40/c3/in4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinimizationConfig {
    /// Weight bit-width for quantization (2–8 in the paper), `None` = keep
    /// 8-bit baseline precision without QAT.
    pub weight_bits: Option<u8>,
    /// Target unstructured sparsity in `[0, 1)`, `None` = no pruning.
    pub sparsity: Option<f64>,
    /// Clusters per input position, `None` = no weight clustering.
    pub clusters_per_input: Option<usize>,
    /// Input bit-width of the bespoke circuit.
    pub input_bits: u8,
    /// Number of fine-tuning epochs per applied technique.
    pub fine_tune_epochs: usize,
}

impl Default for MinimizationConfig {
    fn default() -> Self {
        MinimizationConfig {
            weight_bits: None,
            sparsity: None,
            clusters_per_input: None,
            input_bits: 4,
            fine_tune_epochs: 10,
        }
    }
}

impl MinimizationConfig {
    /// The un-minimized bespoke baseline: 8-bit post-training weights, no
    /// pruning, no clustering.
    pub fn baseline() -> Self {
        MinimizationConfig::default()
    }

    /// Sets the quantization bit-width.
    #[must_use]
    pub fn with_weight_bits(mut self, bits: u8) -> Self {
        self.weight_bits = Some(bits);
        self
    }

    /// Sets the pruning sparsity.
    #[must_use]
    pub fn with_sparsity(mut self, sparsity: f64) -> Self {
        self.sparsity = Some(sparsity);
        self
    }

    /// Sets the clusters-per-input count.
    #[must_use]
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        self.clusters_per_input = Some(clusters);
        self
    }

    /// Sets the input bit-width.
    #[must_use]
    pub fn with_input_bits(mut self, bits: u8) -> Self {
        self.input_bits = bits;
        self
    }

    /// Sets the fine-tuning epoch budget.
    #[must_use]
    pub fn with_fine_tune_epochs(mut self, epochs: usize) -> Self {
        self.fine_tune_epochs = epochs;
        self
    }

    /// `true` when no technique is enabled (the baseline configuration).
    pub fn is_baseline(&self) -> bool {
        self.weight_bits.is_none() && self.sparsity.is_none() && self.clusters_per_input.is_none()
    }

    /// The effective weight bit-width handed to the hardware model (8-bit for
    /// the baseline, the configured value otherwise).
    pub fn effective_weight_bits(&self) -> u8 {
        self.weight_bits.unwrap_or(8)
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`MinimizeError::InvalidConfig`] when any enabled technique has
    /// an out-of-range parameter.
    pub fn validate(&self) -> Result<(), MinimizeError> {
        if let Some(bits) = self.weight_bits {
            if !(2..=16).contains(&bits) {
                return Err(MinimizeError::InvalidConfig {
                    context: format!("weight_bits must be in 2..=16, got {bits}"),
                });
            }
        }
        if let Some(s) = self.sparsity {
            if !(0.0..1.0).contains(&s) {
                return Err(MinimizeError::InvalidConfig {
                    context: format!("sparsity must be in [0,1), got {s}"),
                });
            }
        }
        if let Some(k) = self.clusters_per_input {
            if k == 0 {
                return Err(MinimizeError::InvalidConfig {
                    context: "clusters_per_input must be >= 1".into(),
                });
            }
        }
        if !(1..=16).contains(&self.input_bits) {
            return Err(MinimizeError::InvalidConfig {
                context: format!("input_bits must be in 1..=16, got {}", self.input_bits),
            });
        }
        if self.fine_tune_epochs == 0 {
            return Err(MinimizeError::InvalidConfig {
                context: "fine_tune_epochs must be >= 1".into(),
            });
        }
        Ok(())
    }

    /// A compact configuration identifier (e.g. `q4/p0.40/c3/in4`), used in
    /// reports and experiment logs.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(b) = self.weight_bits {
            parts.push(format!("q{b}"));
        }
        if let Some(s) = self.sparsity {
            parts.push(format!("p{s:.2}"));
        }
        if let Some(k) = self.clusters_per_input {
            parts.push(format!("c{k}"));
        }
        if parts.is_empty() {
            parts.push("baseline".to_string());
        }
        parts.push(format!("in{}", self.input_bits));
        parts.join("/")
    }
}

impl fmt::Display for MinimizationConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_no_techniques() {
        let c = MinimizationConfig::baseline();
        assert!(c.is_baseline());
        assert_eq!(c.effective_weight_bits(), 8);
        assert_eq!(c.describe(), "baseline/in4");
    }

    #[test]
    fn builder_methods_compose() {
        let c = MinimizationConfig::default()
            .with_weight_bits(3)
            .with_sparsity(0.5)
            .with_clusters(2)
            .with_input_bits(6)
            .with_fine_tune_epochs(7);
        assert_eq!(c.weight_bits, Some(3));
        assert_eq!(c.sparsity, Some(0.5));
        assert_eq!(c.clusters_per_input, Some(2));
        assert_eq!(c.input_bits, 6);
        assert_eq!(c.fine_tune_epochs, 7);
        assert!(!c.is_baseline());
        assert_eq!(c.effective_weight_bits(), 3);
    }

    #[test]
    fn validation_catches_out_of_range_values() {
        assert!(MinimizationConfig::default()
            .with_weight_bits(1)
            .validate()
            .is_err());
        assert!(MinimizationConfig::default()
            .with_weight_bits(20)
            .validate()
            .is_err());
        assert!(MinimizationConfig::default()
            .with_sparsity(1.0)
            .validate()
            .is_err());
        assert!(MinimizationConfig::default()
            .with_sparsity(-0.2)
            .validate()
            .is_err());
        assert!(MinimizationConfig::default()
            .with_clusters(0)
            .validate()
            .is_err());
        assert!(MinimizationConfig::default()
            .with_input_bits(0)
            .validate()
            .is_err());
        assert!(MinimizationConfig::default()
            .with_fine_tune_epochs(0)
            .validate()
            .is_err());
        assert!(MinimizationConfig::default()
            .with_weight_bits(4)
            .with_sparsity(0.3)
            .with_clusters(5)
            .validate()
            .is_ok());
    }

    #[test]
    fn describe_is_stable_and_parsable_by_eye() {
        let c = MinimizationConfig::default()
            .with_weight_bits(4)
            .with_sparsity(0.4)
            .with_clusters(3);
        assert_eq!(c.describe(), "q4/p0.40/c3/in4");
        assert_eq!(c.to_string(), c.describe());
    }

    #[test]
    fn serde_round_trip() {
        let c = MinimizationConfig::default()
            .with_weight_bits(5)
            .with_sparsity(0.25);
        let json = serde_json::to_string(&c).unwrap();
        let back: MinimizationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
