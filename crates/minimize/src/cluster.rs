//! Per-input-position weight clustering (Deep-Compression style).
//!
//! The paper applies the weight clustering of Han et al. (ICLR 2016) so that
//! weights *of the same position* — i.e. multiplied by the same input — share
//! a value. In a bespoke circuit the product of that input with the shared
//! value is then computed once and wired to every neuron that needs it,
//! shrinking the multiplier count from "non-zero weights" to "distinct
//! (input, value) pairs".

use crate::error::MinimizeError;
use pmlp_nn::{Dataset, Mlp, TrainConfig, TrainReport, Trainer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the weight-clustering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Number of clusters per input position (per layer row). Smaller values
    /// mean more sharing and smaller circuits but higher accuracy loss.
    pub clusters_per_input: usize,
    /// Maximum number of k-means iterations.
    pub max_iterations: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            clusters_per_input: 4,
            max_iterations: 50,
        }
    }
}

impl ClusteringConfig {
    /// Creates a configuration with `clusters_per_input` clusters and the
    /// default iteration budget.
    pub fn new(clusters_per_input: usize) -> Self {
        ClusteringConfig {
            clusters_per_input,
            ..ClusteringConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MinimizeError::InvalidConfig`] when the cluster count or the
    /// iteration budget is zero.
    pub fn validate(&self) -> Result<(), MinimizeError> {
        if self.clusters_per_input == 0 {
            return Err(MinimizeError::InvalidConfig {
                context: "clusters_per_input must be >= 1".into(),
            });
        }
        if self.max_iterations == 0 {
            return Err(MinimizeError::InvalidConfig {
                context: "max_iterations must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// The cluster structure of a clustered MLP: for every layer and every input
/// position, which cluster each outgoing weight belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterAssignment {
    /// `assignments[layer][input][output]` = cluster index of that weight.
    assignments: Vec<Vec<Vec<usize>>>,
    /// `centroids[layer][input][cluster]` = shared weight value.
    centroids: Vec<Vec<Vec<f32>>>,
}

impl ClusterAssignment {
    /// Number of layers covered.
    pub fn layer_count(&self) -> usize {
        self.assignments.len()
    }

    /// The centroid values of one layer/input position.
    pub fn centroids(&self, layer: usize, input: usize) -> &[f32] {
        &self.centroids[layer][input]
    }

    /// Number of distinct non-zero weight values per input position, summed
    /// over all positions of all layers — an upper bound on the number of
    /// multipliers the shared bespoke circuit needs.
    pub fn distinct_nonzero_values(&self) -> usize {
        self.centroids
            .iter()
            .flat_map(|layer| layer.iter())
            .map(|cs| {
                cs.iter()
                    .filter(|&&c| c != 0.0)
                    .map(|c| c.to_bits())
                    .collect::<std::collections::BTreeSet<u32>>()
                    .len()
            })
            .sum()
    }

    /// Snaps every weight of `mlp` to its cluster centroid.
    ///
    /// # Errors
    ///
    /// Returns [`MinimizeError::InvalidConfig`] when the assignment does not
    /// match the model shape.
    pub fn apply(&self, mlp: &mut Mlp) -> Result<(), MinimizeError> {
        if mlp.layers().len() != self.assignments.len() {
            return Err(MinimizeError::InvalidConfig {
                context: format!(
                    "assignment covers {} layers but the model has {}",
                    self.assignments.len(),
                    mlp.layers().len()
                ),
            });
        }
        for (layer, (assign, centroids)) in mlp
            .layers_mut()
            .iter_mut()
            .zip(self.assignments.iter().zip(self.centroids.iter()))
        {
            let (inputs, outputs) = layer.weights().shape();
            if assign.len() != inputs || assign.iter().any(|row| row.len() != outputs) {
                return Err(MinimizeError::InvalidConfig {
                    context: "cluster assignment shape does not match model layer".into(),
                });
            }
            for i in 0..inputs {
                for o in 0..outputs {
                    let value = centroids[i][assign[i][o]];
                    layer.weights_mut().set(i, o, value);
                }
            }
        }
        Ok(())
    }

    /// Recomputes the centroids as the mean of the current weights assigned to
    /// each cluster (the Deep-Compression centroid update used during
    /// fine-tuning), then snaps the weights onto the new centroids.
    ///
    /// # Errors
    ///
    /// Returns [`MinimizeError::InvalidConfig`] on shape mismatch.
    pub fn refit_and_apply(&mut self, mlp: &mut Mlp) -> Result<(), MinimizeError> {
        if mlp.layers().len() != self.assignments.len() {
            return Err(MinimizeError::InvalidConfig {
                context: "assignment layer count mismatch".into(),
            });
        }
        for (li, layer) in mlp.layers().iter().enumerate() {
            let (inputs, outputs) = layer.weights().shape();
            for i in 0..inputs {
                let k = self.centroids[li][i].len();
                let mut sums = vec![0.0_f64; k];
                let mut counts = vec![0usize; k];
                for o in 0..outputs {
                    let c = self.assignments[li][i][o];
                    sums[c] += layer.weights().get(i, o) as f64;
                    counts[c] += 1;
                }
                for c in 0..k {
                    if counts[c] > 0 {
                        self.centroids[li][i][c] = (sums[c] / counts[c] as f64) as f32;
                    }
                }
            }
        }
        self.apply(mlp)
    }
}

/// One-dimensional k-means on a slice of values. Returns `(centroids,
/// assignment)` with `centroids.len() <= k`.
fn kmeans_1d(values: &[f32], k: usize, max_iterations: usize) -> (Vec<f32>, Vec<usize>) {
    if values.is_empty() {
        return (Vec::new(), Vec::new());
    }
    // Initialize centroids spread over the value range (deterministic).
    let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let k = k.max(1).min(values.len());
    let mut centroids: Vec<f32> = if k == 1 {
        vec![values.iter().sum::<f32>() / values.len() as f32]
    } else {
        (0..k)
            .map(|i| min + (max - min) * i as f32 / (k - 1) as f32)
            .collect()
    };
    let mut assignment = vec![0usize; values.len()];

    for _ in 0..max_iterations {
        // Assignment step.
        let mut changed = false;
        for (vi, &v) in values.iter().enumerate() {
            let (best, _) = centroids
                .iter()
                .enumerate()
                .map(|(ci, &c)| (ci, (v - c).abs()))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .expect("at least one centroid");
            if assignment[vi] != best {
                assignment[vi] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0_f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (vi, &v) in values.iter().enumerate() {
            sums[assignment[vi]] += v as f64;
            counts[assignment[vi]] += 1;
        }
        for c in 0..centroids.len() {
            if counts[c] > 0 {
                centroids[c] = (sums[c] / counts[c] as f64) as f32;
            }
        }
        if !changed {
            break;
        }
    }
    (centroids, assignment)
}

/// Clusters the weights of `mlp` per input position and snaps them to their
/// centroids. Returns the assignment so fine-tuning can keep the structure.
///
/// # Errors
///
/// Returns [`MinimizeError::InvalidConfig`] when `config` is invalid.
pub fn cluster_weights(
    mlp: &mut Mlp,
    config: &ClusteringConfig,
) -> Result<ClusterAssignment, MinimizeError> {
    config.validate()?;
    let mut assignments = Vec::with_capacity(mlp.layers().len());
    let mut centroids = Vec::with_capacity(mlp.layers().len());
    for layer in mlp.layers() {
        let (inputs, outputs) = layer.weights().shape();
        let mut layer_assign = Vec::with_capacity(inputs);
        let mut layer_centroids = Vec::with_capacity(inputs);
        for i in 0..inputs {
            let row: Vec<f32> = (0..outputs).map(|o| layer.weights().get(i, o)).collect();
            let (cents, assign) = kmeans_1d(&row, config.clusters_per_input, config.max_iterations);
            layer_assign.push(assign);
            layer_centroids.push(cents);
        }
        assignments.push(layer_assign);
        centroids.push(layer_centroids);
    }
    let assignment = ClusterAssignment {
        assignments,
        centroids,
    };
    assignment.apply(mlp)?;
    Ok(assignment)
}

/// Clusters the weights of `mlp` and fine-tunes it while keeping the cluster
/// structure (weights snap back to their — continuously refitted — centroids
/// after every optimizer step).
///
/// # Errors
///
/// Returns [`MinimizeError`] on invalid configuration or training failure.
pub fn cluster_and_fine_tune<R: Rng + ?Sized>(
    mlp: &mut Mlp,
    train: &Dataset,
    validation: Option<&Dataset>,
    config: &ClusteringConfig,
    training: &TrainConfig,
    rng: &mut R,
) -> Result<(ClusterAssignment, TrainReport), MinimizeError> {
    let assignment = cluster_weights(mlp, config)?;
    let trainer = Trainer::new(training.clone());
    let mut shared = assignment.clone();
    let mut constraint = move |m: &mut Mlp| {
        let _ = shared.refit_and_apply(m);
    };
    let report = trainer.fit_constrained(mlp, train, validation, &mut constraint, rng)?;
    // Produce the final assignment (centroids refit on the trained weights).
    let mut final_assignment = assignment;
    final_assignment.refit_and_apply(mlp)?;
    Ok((final_assignment, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_data::{load, UciDataset};
    use pmlp_nn::{Activation, MlpBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        MlpBuilder::new(5)
            .hidden(12, Activation::ReLU)
            .output(3)
            .build(&mut rng)
            .unwrap()
    }

    fn distinct_values_per_row(m: &Mlp, layer: usize) -> Vec<usize> {
        let l = &m.layers()[layer];
        let (inputs, outputs) = l.weights().shape();
        (0..inputs)
            .map(|i| {
                (0..outputs)
                    .map(|o| l.weights().get(i, o).to_bits())
                    .collect::<BTreeSet<u32>>()
                    .len()
            })
            .collect()
    }

    #[test]
    fn kmeans_recovers_well_separated_clusters() {
        let values = vec![0.0, 0.1, 0.05, 5.0, 5.1, 4.9, -3.0, -3.1];
        let (centroids, assignment) = kmeans_1d(&values, 3, 50);
        assert_eq!(centroids.len(), 3);
        // Values near 5 share a cluster distinct from values near 0 and -3.
        assert_eq!(assignment[3], assignment[4]);
        assert_eq!(assignment[4], assignment[5]);
        assert_ne!(assignment[0], assignment[3]);
        assert_ne!(assignment[0], assignment[6]);
    }

    #[test]
    fn kmeans_handles_degenerate_inputs() {
        let (c, a) = kmeans_1d(&[], 3, 10);
        assert!(c.is_empty() && a.is_empty());
        let (c, a) = kmeans_1d(&[1.0, 1.0, 1.0], 5, 10);
        assert!(c.len() <= 3);
        assert_eq!(a.len(), 3);
        let (c, _) = kmeans_1d(&[2.5], 4, 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clustering_limits_distinct_values_per_input_position() {
        let mut m = mlp(1);
        let k = 3;
        cluster_weights(&mut m, &ClusteringConfig::new(k)).unwrap();
        for layer in 0..m.layers().len() {
            for count in distinct_values_per_row(&m, layer) {
                assert!(
                    count <= k,
                    "row has {count} distinct values, expected <= {k}"
                );
            }
        }
    }

    #[test]
    fn more_clusters_means_lower_distortion() {
        let original = mlp(2);
        let distortion = |k: usize| {
            let mut m = original.clone();
            cluster_weights(&mut m, &ClusteringConfig::new(k)).unwrap();
            original
                .flatten_weights()
                .iter()
                .zip(m.flatten_weights().iter())
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
        };
        let d2 = distortion(2);
        let d4 = distortion(4);
        let d8 = distortion(8);
        assert!(d4 <= d2 + 1e-6);
        assert!(d8 <= d4 + 1e-6);
    }

    #[test]
    fn many_clusters_approximate_the_original_weights_closely() {
        let original = mlp(3);
        let mut m = original.clone();
        // With many more clusters than distinct values per row the k-means
        // approximation error becomes small (it need not be exactly zero
        // because the deterministic initialization can merge nearby values).
        let outputs = m.layers()[0].outputs().max(m.layers()[1].outputs());
        cluster_weights(&mut m, &ClusteringConfig::new(2 * outputs)).unwrap();
        let max_abs = original.max_abs_weight();
        for (a, b) in original
            .flatten_weights()
            .iter()
            .zip(m.flatten_weights().iter())
        {
            assert!((a - b).abs() < 0.15 * max_abs.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut m = mlp(4);
        assert!(cluster_weights(&mut m, &ClusteringConfig::new(0)).is_err());
        assert!(cluster_weights(
            &mut m,
            &ClusteringConfig {
                clusters_per_input: 2,
                max_iterations: 0
            }
        )
        .is_err());
    }

    #[test]
    fn apply_rejects_mismatched_model() {
        let mut m = mlp(5);
        let assignment = cluster_weights(&mut m, &ClusteringConfig::new(2)).unwrap();
        let mut other = {
            let mut rng = StdRng::seed_from_u64(7);
            MlpBuilder::new(3)
                .hidden(4, Activation::ReLU)
                .output(2)
                .build(&mut rng)
                .unwrap()
        };
        assert!(assignment.apply(&mut other).is_err());
    }

    #[test]
    fn fine_tuning_preserves_cluster_structure() {
        let mut rng = StdRng::seed_from_u64(17);
        let data = load(UciDataset::Seeds, 5).unwrap();
        let (train, _) = data.stratified_split(0.8, &mut rng).unwrap();
        let mut model = MlpBuilder::new(train.feature_count())
            .hidden(8, Activation::ReLU)
            .output(train.class_count())
            .build(&mut rng)
            .unwrap();
        Trainer::new(TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        })
        .fit(&mut model, &train, None, &mut rng)
        .unwrap();

        let k = 3;
        let (_, _) = cluster_and_fine_tune(
            &mut model,
            &train,
            None,
            &ClusteringConfig::new(k),
            &TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        for layer in 0..model.layers().len() {
            for count in distinct_values_per_row(&model, layer) {
                assert!(count <= k, "cluster structure broken: {count} > {k}");
            }
        }
    }

    #[test]
    fn distinct_nonzero_values_counts_sharing_opportunities() {
        let mut m = mlp(8);
        let assignment = cluster_weights(&mut m, &ClusteringConfig::new(2)).unwrap();
        let upper_bound: usize = m
            .layers()
            .iter()
            .map(|l| l.weights().rows() * 2) // at most k distinct values per row
            .sum();
        assert!(assignment.distinct_nonzero_values() <= upper_bound);
        assert!(assignment.distinct_nonzero_values() > 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn kmeans_centroid_count_never_exceeds_k(
            values in proptest::collection::vec(-5.0f32..5.0, 1..40),
            k in 1usize..8
        ) {
            let (centroids, assignment) = kmeans_1d(&values, k, 30);
            prop_assert!(centroids.len() <= k);
            prop_assert_eq!(assignment.len(), values.len());
            prop_assert!(assignment.iter().all(|&a| a < centroids.len()));
        }

        #[test]
        fn kmeans_assignment_is_nearest_centroid(
            values in proptest::collection::vec(-5.0f32..5.0, 2..30),
            k in 1usize..5
        ) {
            let (centroids, assignment) = kmeans_1d(&values, k, 100);
            for (v, &a) in values.iter().zip(assignment.iter()) {
                let assigned_dist = (v - centroids[a]).abs();
                for &c in &centroids {
                    prop_assert!(assigned_dist <= (v - c).abs() + 1e-5);
                }
            }
        }
    }
}
