//! Symmetric uniform weight quantization and the integer decomposition handed
//! to the bespoke hardware model.
//!
//! The paper quantizes weights to 2–7 bits with QKeras. QKeras'
//! `quantized_bits(b, ...)` is a symmetric uniform quantizer; we mirror it
//! with a per-layer scale `s = max|w| / (2^(b-1) - 1)` so that every weight is
//! represented as `code * s` with `code` an integer in
//! `[-(2^(b-1)-1), 2^(b-1)-1]`. The integer codes are exactly the hard-wired
//! constants of the bespoke multipliers.

use crate::error::MinimizeError;
use pmlp_nn::{Matrix, Mlp};
use serde::{Deserialize, Serialize};

/// Configuration of post-training quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizationConfig {
    /// Weight bit-width (2–8 in the paper's sweeps; up to 16 supported).
    pub weight_bits: u8,
    /// Input bit-width used downstream by the bespoke circuit (1–16).
    pub input_bits: u8,
}

impl Default for QuantizationConfig {
    fn default() -> Self {
        QuantizationConfig {
            weight_bits: 8,
            input_bits: 4,
        }
    }
}

impl QuantizationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MinimizeError::InvalidConfig`] when a bit-width is outside
    /// `2..=16` (weights) or `1..=16` (inputs).
    pub fn validate(&self) -> Result<(), MinimizeError> {
        if !(2..=16).contains(&self.weight_bits) {
            return Err(MinimizeError::InvalidConfig {
                context: format!("weight_bits must be in 2..=16, got {}", self.weight_bits),
            });
        }
        if !(1..=16).contains(&self.input_bits) {
            return Err(MinimizeError::InvalidConfig {
                context: format!("input_bits must be in 1..=16, got {}", self.input_bits),
            });
        }
        Ok(())
    }

    /// Largest representable positive code for the weight bit-width.
    pub fn max_code(&self) -> i64 {
        (1_i64 << (self.weight_bits - 1)) - 1
    }
}

/// The integer decomposition of one quantized layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegerLayer {
    /// Integer weight codes, `codes[neuron][input]` (transposed relative to
    /// the `pmlp-nn` storage so it matches the hardware layer layout).
    pub codes: Vec<Vec<i64>>,
    /// Integer bias codes, one per neuron, in the same scale as the products
    /// of `codes` with quantized inputs (see [`QuantizedMlp::integer_layers`]).
    pub bias_codes: Vec<i64>,
    /// Real-valued scale such that `weight ≈ code * scale`.
    pub scale: f32,
    /// Bit-width the codes fit in.
    pub weight_bits: u8,
}

/// A fake-quantized MLP plus its integer decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    /// The MLP with weights snapped to their quantized values (for accuracy
    /// evaluation in software).
    pub model: Mlp,
    /// One [`IntegerLayer`] per layer (for hardware synthesis).
    pub layers: Vec<IntegerLayer>,
    /// The configuration used.
    pub config: QuantizationConfig,
}

/// Computes the per-layer symmetric scale for a weight matrix.
fn layer_scale(weights: &Matrix, max_code: i64) -> f32 {
    let max_abs = weights.max_abs();
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / max_code as f32
    }
}

/// Quantizes a single weight value to its integer code.
fn quantize_code(value: f32, scale: f32, max_code: i64) -> i64 {
    if scale == 0.0 {
        return 0;
    }
    ((value / scale).round() as i64).clamp(-max_code, max_code)
}

/// Post-training quantization: snaps every weight of `mlp` to a
/// `weight_bits`-bit symmetric grid and returns both the fake-quantized model
/// and the integer codes.
///
/// Biases are quantized onto the product grid `scale * input_step` so they can
/// be added directly to the integer accumulators of the bespoke circuit (the
/// input step is `1 / (2^input_bits - 1)` for min-max-normalized inputs).
///
/// # Errors
///
/// Returns [`MinimizeError::InvalidConfig`] when `config` is invalid.
pub fn quantize_mlp(mlp: &Mlp, config: &QuantizationConfig) -> Result<QuantizedMlp, MinimizeError> {
    config.validate()?;
    let max_code = config.max_code();
    let input_levels = ((1_u32 << config.input_bits) - 1) as f32;

    let mut model = mlp.clone();
    let mut layers = Vec::with_capacity(mlp.layers().len());

    // Step size of the values feeding the current layer. The primary inputs
    // are min-max normalized and quantized to `input_bits`, so their step is
    // 1 / (2^input_bits - 1). Each layer's integer accumulator then carries
    // values in units of `weight scale * input step`, and that product LSB
    // becomes the input step of the next layer (ReLU preserves the grid).
    let mut input_step = 1.0_f32 / input_levels;

    for layer in model.layers_mut() {
        let scale = layer_scale(layer.weights(), max_code);
        let (inputs, outputs) = layer.weights().shape();
        let mut codes = vec![vec![0_i64; inputs]; outputs];
        #[allow(clippy::needless_range_loop)] // transposed (i, o) indexing reads best explicit
        for i in 0..inputs {
            for o in 0..outputs {
                let code = quantize_code(layer.weights().get(i, o), scale, max_code);
                codes[o][i] = code;
                layer.weights_mut().set(i, o, code as f32 * scale);
            }
        }
        // Bias codes live on this layer's product grid so the bespoke circuit
        // can add them directly to its integer accumulator.
        let product_lsb = scale * input_step;
        let bias_codes: Vec<i64> = layer
            .biases()
            .iter()
            .map(|&b| {
                if product_lsb > 0.0 {
                    (b / product_lsb).round() as i64
                } else {
                    0
                }
            })
            .collect();
        // Snap the float biases onto the same grid so software accuracy
        // matches what the hardware computes.
        for (b, &code) in layer.biases_mut().iter_mut().zip(bias_codes.iter()) {
            *b = code as f32 * product_lsb;
        }
        layers.push(IntegerLayer {
            codes,
            bias_codes,
            scale,
            weight_bits: config.weight_bits,
        });
        input_step = product_lsb;
    }

    Ok(QuantizedMlp {
        model,
        layers,
        config: *config,
    })
}

impl QuantizedMlp {
    /// The integer layers (hardware hand-off format).
    pub fn integer_layers(&self) -> &[IntegerLayer] {
        &self.layers
    }

    /// Fraction of integer codes equal to zero (pruned + quantized-to-zero
    /// connections).
    pub fn code_sparsity(&self) -> f64 {
        let total: usize = self
            .layers
            .iter()
            .map(|l| l.codes.iter().map(Vec::len).sum::<usize>())
            .sum();
        let zeros: usize = self
            .layers
            .iter()
            .map(|l| l.codes.iter().flatten().filter(|&&c| c == 0).count())
            .sum();
        if total == 0 {
            0.0
        } else {
            zeros as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_nn::{Activation, MlpBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Mlp {
        let mut rng = StdRng::seed_from_u64(3);
        MlpBuilder::new(4)
            .hidden(6, Activation::ReLU)
            .output(3)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(QuantizationConfig {
            weight_bits: 1,
            input_bits: 4
        }
        .validate()
        .is_err());
        assert!(QuantizationConfig {
            weight_bits: 17,
            input_bits: 4
        }
        .validate()
        .is_err());
        assert!(QuantizationConfig {
            weight_bits: 4,
            input_bits: 0
        }
        .validate()
        .is_err());
        assert!(QuantizationConfig::default().validate().is_ok());
        assert_eq!(
            QuantizationConfig {
                weight_bits: 4,
                input_bits: 4
            }
            .max_code(),
            7
        );
    }

    #[test]
    fn codes_fit_in_requested_bits() {
        let q = quantize_mlp(
            &mlp(),
            &QuantizationConfig {
                weight_bits: 3,
                input_bits: 4,
            },
        )
        .unwrap();
        for layer in q.integer_layers() {
            for &code in layer.codes.iter().flatten() {
                assert!(code.abs() <= 3, "code {code} exceeds 3-bit symmetric range");
            }
        }
    }

    #[test]
    fn fake_quantized_weights_match_codes_times_scale() {
        let original = mlp();
        let q = quantize_mlp(
            &original,
            &QuantizationConfig {
                weight_bits: 5,
                input_bits: 4,
            },
        )
        .unwrap();
        for (layer, int_layer) in q.model.layers().iter().zip(q.integer_layers()) {
            let (inputs, outputs) = layer.weights().shape();
            for i in 0..inputs {
                for o in 0..outputs {
                    let expected = int_layer.codes[o][i] as f32 * int_layer.scale;
                    assert!((layer.weights().get(i, o) - expected).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_scale() {
        let original = mlp();
        let q = quantize_mlp(
            &original,
            &QuantizationConfig {
                weight_bits: 6,
                input_bits: 4,
            },
        )
        .unwrap();
        for (orig_layer, (quant_layer, int_layer)) in original
            .layers()
            .iter()
            .zip(q.model.layers().iter().zip(q.integer_layers()))
        {
            let (inputs, outputs) = orig_layer.weights().shape();
            for i in 0..inputs {
                for o in 0..outputs {
                    let err =
                        (orig_layer.weights().get(i, o) - quant_layer.weights().get(i, o)).abs();
                    assert!(err <= int_layer.scale / 2.0 + 1e-6);
                }
            }
        }
    }

    #[test]
    fn fewer_bits_means_coarser_weights() {
        let original = mlp();
        let distinct = |bits: u8| {
            let q = quantize_mlp(
                &original,
                &QuantizationConfig {
                    weight_bits: bits,
                    input_bits: 4,
                },
            )
            .unwrap();
            let mut values: Vec<i64> = q.integer_layers()[0]
                .codes
                .iter()
                .flatten()
                .copied()
                .collect();
            values.sort_unstable();
            values.dedup();
            values.len()
        };
        assert!(distinct(2) <= distinct(4));
        assert!(distinct(4) <= distinct(7));
    }

    #[test]
    fn zero_weight_layer_quantizes_to_zero_codes() {
        let mut m = mlp();
        m.layers_mut()[0].weights_mut().map_inplace(|_| 0.0);
        let q = quantize_mlp(&m, &QuantizationConfig::default()).unwrap();
        assert!(q.integer_layers()[0]
            .codes
            .iter()
            .flatten()
            .all(|&c| c == 0));
        assert!(q.code_sparsity() > 0.0);
    }

    #[test]
    fn codes_are_transposed_to_neuron_major() {
        let q = quantize_mlp(&mlp(), &QuantizationConfig::default()).unwrap();
        // Layer 0 of the MLP is 4 inputs x 6 outputs; its integer layer must be
        // 6 neurons x 4 inputs.
        assert_eq!(q.integer_layers()[0].codes.len(), 6);
        assert_eq!(q.integer_layers()[0].codes[0].len(), 4);
    }

    #[test]
    fn accuracy_is_preserved_at_high_precision() {
        // At 16 bits the quantization error is negligible, so predictions on a
        // random input batch must be identical.
        let original = mlp();
        let q = quantize_mlp(
            &original,
            &QuantizationConfig {
                weight_bits: 16,
                input_bits: 8,
            },
        )
        .unwrap();
        let x = Matrix::from_rows(&[
            vec![0.1, 0.9, 0.4, 0.3],
            vec![0.7, 0.2, 0.8, 0.5],
            vec![0.0, 1.0, 0.5, 0.25],
        ])
        .unwrap();
        assert_eq!(original.predict(&x).unwrap(), q.model.predict(&x).unwrap());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantize_code_is_bounded(v in -10.0f32..10.0, bits in 2u8..9) {
            let max_code = (1_i64 << (bits - 1)) - 1;
            let scale = 10.0 / max_code as f32;
            let code = quantize_code(v, scale, max_code);
            prop_assert!(code.abs() <= max_code);
            // Reconstruction error bounded by half a step for in-range values.
            prop_assert!((code as f32 * scale - v).abs() <= scale / 2.0 + 1e-4);
        }
    }
}
