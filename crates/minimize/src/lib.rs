//! # pmlp-minimize — neural minimization for bespoke printed MLPs
//!
//! Implementations of the three minimization techniques evaluated by the
//! paper, each as an independent module plus a combined pipeline:
//!
//! * [`quantize`] — symmetric uniform weight quantization (post-training) and
//!   the integer/ scale decomposition handed to the hardware model,
//! * [`qat`] — quantization-aware (re)training with a straight-through
//!   estimator, the software equivalent of the paper's QKeras flow,
//! * [`prune`] — unstructured magnitude pruning with mask-preserving
//!   fine-tuning,
//! * [`cluster`] — per-input-position weight clustering (Deep-Compression
//!   style) that enables multiplier sharing in bespoke circuits,
//! * [`config`] / [`apply`] — a joint [`MinimizationConfig`] combining all
//!   three techniques and the pipeline that applies it to a trained MLP.
//!
//! ## Example
//!
//! ```
//! use pmlp_minimize::{MinimizationConfig, apply::minimize};
//! use pmlp_nn::{MlpBuilder, Activation, Dataset, Trainer, TrainConfig};
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(1);
//! // Tiny separable dataset.
//! let xs: Vec<Vec<f32>> = (0..100)
//!     .map(|i| vec![(i % 2) as f32, ((i / 2) % 5) as f32 / 5.0])
//!     .collect();
//! let ys: Vec<usize> = (0..100).map(|i| i % 2).collect();
//! let data = Dataset::from_rows(xs, ys, 2)?;
//!
//! let mut mlp = MlpBuilder::new(2).hidden(4, Activation::ReLU).output(2).build(&mut rng)?;
//! Trainer::new(TrainConfig { epochs: 10, ..TrainConfig::default() }).fit(&mut mlp, &data, None, &mut rng)?;
//!
//! let config = MinimizationConfig::default().with_weight_bits(4).with_sparsity(0.3);
//! let minimized = minimize(&mlp, &data, None, &config, &mut rng)?;
//! assert!(minimized.model.sparsity() >= 0.25);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apply;
pub mod cluster;
pub mod config;
pub mod error;
pub mod prune;
pub mod qat;
pub mod quantize;

pub use apply::{minimize, MinimizedModel};
pub use cluster::{ClusterAssignment, ClusteringConfig};
pub use config::MinimizationConfig;
pub use error::MinimizeError;
pub use prune::PruningMask;
pub use qat::QatConfig;
pub use quantize::{IntegerLayer, QuantizationConfig, QuantizedMlp};
