//! Unstructured magnitude pruning with mask-preserving fine-tuning.
//!
//! The paper evaluates unstructured pruning at sparsity levels between 20 %
//! and 60 %. In a bespoke circuit a pruned connection simply disappears: the
//! multiplier is removed and the neuron's adder tree shrinks by one operand,
//! which is why unstructured pruning (normally awkward on general-purpose
//! hardware) maps perfectly onto printed bespoke MLPs.

use crate::error::MinimizeError;
use pmlp_nn::{Dataset, Mlp, TrainConfig, TrainReport, Trainer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-layer boolean mask: `true` keeps the weight, `false` prunes it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningMask {
    /// `masks[layer][input][output]`, flattened row-major per layer to match
    /// the `pmlp-nn` weight storage.
    layers: Vec<Vec<bool>>,
    /// Shapes of each layer mask as `(inputs, outputs)`.
    shapes: Vec<(usize, usize)>,
}

impl PruningMask {
    /// Builds a mask that keeps every weight of `mlp`.
    pub fn keep_all(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers()
            .iter()
            .map(|l| vec![true; l.weight_count()])
            .collect();
        let shapes = mlp.layers().iter().map(|l| l.weights().shape()).collect();
        PruningMask { layers, shapes }
    }

    /// Global magnitude pruning: removes the `sparsity` fraction of weights
    /// with the smallest absolute value across the whole network.
    ///
    /// # Errors
    ///
    /// Returns [`MinimizeError::InvalidConfig`] when `sparsity` is not in
    /// `[0, 1)`.
    pub fn magnitude_global(mlp: &Mlp, sparsity: f64) -> Result<Self, MinimizeError> {
        if !(0.0..1.0).contains(&sparsity) {
            return Err(MinimizeError::InvalidConfig {
                context: format!("sparsity must be in [0,1), got {sparsity}"),
            });
        }
        let mut all: Vec<f32> = mlp.flatten_weights().iter().map(|w| w.abs()).collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
        let cut_index = ((all.len() as f64) * sparsity).floor() as usize;
        let threshold = if cut_index == 0 {
            -1.0
        } else {
            all[cut_index - 1]
        };

        let mut layers = Vec::with_capacity(mlp.layers().len());
        let mut shapes = Vec::with_capacity(mlp.layers().len());
        let mut pruned_so_far = 0usize;
        let budget = cut_index;
        for layer in mlp.layers() {
            let mask: Vec<bool> = layer
                .weights()
                .as_slice()
                .iter()
                .map(|&w| {
                    // Prune weights at or below the threshold, but never more
                    // than the global budget (ties at the threshold).
                    if w.abs() <= threshold && pruned_so_far < budget {
                        pruned_so_far += 1;
                        false
                    } else {
                        true
                    }
                })
                .collect();
            shapes.push(layer.weights().shape());
            layers.push(mask);
        }
        Ok(PruningMask { layers, shapes })
    }

    /// Per-layer magnitude pruning: removes the `sparsity` fraction of weights
    /// with the smallest absolute value *within each layer*.
    ///
    /// # Errors
    ///
    /// Returns [`MinimizeError::InvalidConfig`] when `sparsity` is not in
    /// `[0, 1)`.
    pub fn magnitude_per_layer(mlp: &Mlp, sparsity: f64) -> Result<Self, MinimizeError> {
        if !(0.0..1.0).contains(&sparsity) {
            return Err(MinimizeError::InvalidConfig {
                context: format!("sparsity must be in [0,1), got {sparsity}"),
            });
        }
        let mut layers = Vec::with_capacity(mlp.layers().len());
        let mut shapes = Vec::with_capacity(mlp.layers().len());
        for layer in mlp.layers() {
            let weights = layer.weights().as_slice();
            let mut order: Vec<usize> = (0..weights.len()).collect();
            order.sort_by(|&a, &b| {
                weights[a]
                    .abs()
                    .partial_cmp(&weights[b].abs())
                    .expect("weights are finite")
            });
            let prune_count = ((weights.len() as f64) * sparsity).floor() as usize;
            let mut mask = vec![true; weights.len()];
            for &idx in order.iter().take(prune_count) {
                mask[idx] = false;
            }
            shapes.push(layer.weights().shape());
            layers.push(mask);
        }
        Ok(PruningMask { layers, shapes })
    }

    /// Number of layers covered by the mask.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Fraction of weights removed by the mask.
    pub fn sparsity(&self) -> f64 {
        let total: usize = self.layers.iter().map(Vec::len).sum();
        let pruned: usize = self
            .layers
            .iter()
            .map(|m| m.iter().filter(|&&k| !k).count())
            .sum();
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }

    /// `true` when the mask keeps the weight at `(layer, input, output)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn keeps(&self, layer: usize, input: usize, output: usize) -> bool {
        let (_, cols) = self.shapes[layer];
        self.layers[layer][input * cols + output]
    }

    /// Zeroes every pruned weight of `mlp` in place.
    ///
    /// # Errors
    ///
    /// Returns [`MinimizeError::InvalidConfig`] when the mask shape does not
    /// match the model.
    pub fn apply(&self, mlp: &mut Mlp) -> Result<(), MinimizeError> {
        if mlp.layers().len() != self.layers.len() {
            return Err(MinimizeError::InvalidConfig {
                context: format!(
                    "mask covers {} layers but the model has {}",
                    self.layers.len(),
                    mlp.layers().len()
                ),
            });
        }
        for (layer, (mask, &shape)) in mlp
            .layers_mut()
            .iter_mut()
            .zip(self.layers.iter().zip(self.shapes.iter()))
        {
            if layer.weights().shape() != shape {
                return Err(MinimizeError::InvalidConfig {
                    context: format!(
                        "mask layer shape {:?} does not match model layer shape {:?}",
                        shape,
                        layer.weights().shape()
                    ),
                });
            }
            let slice = layer.weights_mut().as_mut_slice();
            for (w, &keep) in slice.iter_mut().zip(mask.iter()) {
                if !keep {
                    *w = 0.0;
                }
            }
        }
        Ok(())
    }
}

/// Prunes `mlp` to the requested global sparsity and fine-tunes it while
/// keeping the pruned connections at exactly zero. Returns the mask and the
/// fine-tuning report.
///
/// # Errors
///
/// Returns [`MinimizeError`] on invalid sparsity or training failures.
pub fn prune_and_fine_tune<R: Rng + ?Sized>(
    mlp: &mut Mlp,
    train: &Dataset,
    validation: Option<&Dataset>,
    sparsity: f64,
    training: &TrainConfig,
    rng: &mut R,
) -> Result<(PruningMask, TrainReport), MinimizeError> {
    let mask = PruningMask::magnitude_global(mlp, sparsity)?;
    mask.apply(mlp)?;
    let trainer = Trainer::new(training.clone());
    let mask_for_constraint = mask.clone();
    let mut constraint = move |m: &mut Mlp| {
        // Re-zero pruned weights after every optimizer update.
        let _ = mask_for_constraint.apply(m);
    };
    let report = trainer.fit_constrained(mlp, train, validation, &mut constraint, rng)?;
    // The best-model restore in the trainer keeps a masked model, but re-apply
    // for belt and braces.
    mask.apply(mlp)?;
    Ok((mask, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_data::{load, UciDataset};
    use pmlp_nn::{Activation, MlpBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        MlpBuilder::new(7)
            .hidden(10, Activation::ReLU)
            .output(3)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn keep_all_mask_has_zero_sparsity() {
        let m = mlp(1);
        let mask = PruningMask::keep_all(&m);
        assert_eq!(mask.sparsity(), 0.0);
        assert_eq!(mask.layer_count(), 2);
    }

    #[test]
    fn global_pruning_hits_requested_sparsity() {
        let m = mlp(2);
        for target in [0.2, 0.4, 0.6] {
            let mask = PruningMask::magnitude_global(&m, target).unwrap();
            assert!(
                (mask.sparsity() - target).abs() < 0.02,
                "target {target}, achieved {}",
                mask.sparsity()
            );
        }
    }

    #[test]
    fn per_layer_pruning_prunes_each_layer() {
        let m = mlp(3);
        let mask = PruningMask::magnitude_per_layer(&m, 0.5).unwrap();
        let mut pruned = m.clone();
        mask.apply(&mut pruned).unwrap();
        for layer in pruned.layers() {
            let sparsity = layer.zero_weight_count() as f64 / layer.weight_count() as f64;
            assert!((sparsity - 0.5).abs() < 0.05, "layer sparsity {sparsity}");
        }
    }

    #[test]
    fn invalid_sparsity_is_rejected() {
        let m = mlp(4);
        assert!(PruningMask::magnitude_global(&m, 1.0).is_err());
        assert!(PruningMask::magnitude_global(&m, -0.1).is_err());
        assert!(PruningMask::magnitude_per_layer(&m, 1.5).is_err());
    }

    #[test]
    fn pruning_removes_smallest_magnitude_weights_first() {
        let m = mlp(5);
        let mask = PruningMask::magnitude_global(&m, 0.3).unwrap();
        let mut pruned = m.clone();
        mask.apply(&mut pruned).unwrap();
        // The largest-magnitude weight must survive.
        let max_abs = m.max_abs_weight();
        assert!((pruned.max_abs_weight() - max_abs).abs() < 1e-9);
        // Every kept weight is at least as large (in magnitude) as every
        // pruned weight was.
        let mut pruned_magnitudes = Vec::new();
        let mut kept_magnitudes = Vec::new();
        for (orig, new) in m
            .flatten_weights()
            .iter()
            .zip(pruned.flatten_weights().iter())
        {
            if *new == 0.0 && *orig != 0.0 {
                pruned_magnitudes.push(orig.abs());
            } else if *new != 0.0 {
                kept_magnitudes.push(orig.abs());
            }
        }
        let max_pruned = pruned_magnitudes.iter().cloned().fold(0.0_f32, f32::max);
        let min_kept = kept_magnitudes
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        assert!(max_pruned <= min_kept + 1e-6);
    }

    #[test]
    fn apply_rejects_mismatched_model() {
        let mask = PruningMask::magnitude_global(&mlp(6), 0.2).unwrap();
        let mut other = {
            let mut rng = StdRng::seed_from_u64(9);
            MlpBuilder::new(5)
                .hidden(4, Activation::ReLU)
                .output(2)
                .build(&mut rng)
                .unwrap()
        };
        assert!(mask.apply(&mut other).is_err());
    }

    #[test]
    fn zero_sparsity_mask_keeps_everything() {
        let m = mlp(7);
        let mask = PruningMask::magnitude_global(&m, 0.0).unwrap();
        let mut pruned = m.clone();
        mask.apply(&mut pruned).unwrap();
        assert_eq!(pruned, m);
    }

    #[test]
    fn fine_tuning_preserves_mask_and_recovers_accuracy() {
        let mut rng = StdRng::seed_from_u64(21);
        let data = load(UciDataset::Seeds, 33).unwrap();
        let (train, test) = data.stratified_split(0.8, &mut rng).unwrap();
        let mut model = MlpBuilder::new(train.feature_count())
            .hidden(10, Activation::ReLU)
            .output(train.class_count())
            .build(&mut rng)
            .unwrap();
        Trainer::new(TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        })
        .fit(&mut model, &train, None, &mut rng)
        .unwrap();
        let dense_acc = model.accuracy(&test);

        let mut pruned_model = model.clone();
        let (mask, _) = prune_and_fine_tune(
            &mut pruned_model,
            &train,
            None,
            0.5,
            &TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        // Sparsity is preserved after fine-tuning.
        assert!(pruned_model.sparsity() >= mask.sparsity() - 1e-9);
        // Accuracy stays within a reasonable band of the dense model.
        let pruned_acc = pruned_model.accuracy(&test);
        assert!(
            pruned_acc >= dense_acc - 0.15,
            "pruned accuracy {pruned_acc} collapsed vs dense {dense_acc}"
        );
    }

    #[test]
    fn keeps_reports_individual_positions() {
        let m = mlp(8);
        let mask = PruningMask::magnitude_global(&m, 0.4).unwrap();
        let mut kept = 0usize;
        let mut total = 0usize;
        for (li, layer) in m.layers().iter().enumerate() {
            let (inputs, outputs) = layer.weights().shape();
            for i in 0..inputs {
                for o in 0..outputs {
                    total += 1;
                    if mask.keeps(li, i, o) {
                        kept += 1;
                    }
                }
            }
        }
        assert_eq!(total, m.weight_count());
        assert!((1.0 - kept as f64 / total as f64 - mask.sparsity()).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pmlp_nn::{Activation, MlpBuilder};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn achieved_sparsity_close_to_target(target in 0.0f64..0.9, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = MlpBuilder::new(6).hidden(8, Activation::ReLU).output(3).build(&mut rng).unwrap();
            let mask = PruningMask::magnitude_global(&m, target).unwrap();
            prop_assert!((mask.sparsity() - target).abs() < 0.05);
        }
    }
}
