//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop that
//! reports mean / min / max per iteration.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), every benchmark runs exactly once so the
//! target doubles as a smoke test.

#![warn(rust_2018_idioms)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier that prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            test_mode: self.test_mode,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            _criterion: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("default", body);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing sampling parameters.
pub struct BenchmarkGroup<'a> {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        body(&mut bencher);
        bencher.report(name);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Measures `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: `sample_size` samples or until the budget is spent,
        // whichever comes first (always at least one sample).
        let bench_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if bench_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("{name:<40} ok (test mode, 1 iteration)");
            return;
        }
        if self.samples.is_empty() {
            println!("{name:<40} no samples collected");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
