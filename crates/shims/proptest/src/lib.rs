//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! `arg in strategy` bindings, range strategies over the numeric primitives,
//! tuple strategies, `proptest::collection::vec`, `prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest: cases are drawn from a fixed deterministic
//! seed (no persistence files), and there is no shrinking — a failing case
//! panics with the assertion message directly. The case count comes from the
//! in-source config (default 64), overridable via the `PROPTEST_CASES`
//! environment variable as in real proptest.

#![warn(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Default number of random cases each `proptest!` test executes.
pub const CASES: u32 = 64;

/// Per-block configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Resolves the case count for one `proptest!` test: the `PROPTEST_CASES`
/// environment variable overrides the in-source configuration, exactly like
/// real proptest — CI's equivalence jobs use it to deepen the search without
/// patching sources.
pub fn cases_from_env(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// Builds the deterministic RNG for a named test (used by the `proptest!`
/// expansion; the seed is an FNV-1a hash of the test name).
pub fn rng_for(test_name: &str) -> TestRng {
    use rand::SeedableRng;
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(seed)
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Admissible element counts for [`vec()`]: a fixed count or a range.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual proptest prelude; import `*` inside test modules.
pub mod prelude {
    pub use super::{Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*); };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*); };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs [`CASES`] random cases (or the count from an optional
/// leading `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Deterministic per-test seed derived from the test name.
                let mut __rng = $crate::rng_for(stringify!($name));
                let __cases = $crate::cases_from_env(($config).cases);
                for __case in 0..__cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut __rng); )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}
