//! Minimal JSON value model, renderer and parser shared by the `serde` and
//! `serde_json` shims.

use std::fmt;

/// A parsed or constructed JSON value.
///
/// Objects preserve insertion order (struct field order) using a plain
/// `Vec<(String, Value)>`; lookups are linear, which is fine at the sizes this
/// workspace serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short kind name used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Returns the object entries when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the string when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Looks up a required struct field, with a typed error when missing.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `self` is not an object or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{key}`"))),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }

    /// Renders the value as compact JSON.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => render_number(*n, out),
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                render_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].render(out, indent, d);
                });
            }
            Value::Object(entries) => {
                render_seq(out, indent, depth, entries.len(), '{', '}', |out, i, d| {
                    render_string(&entries[i].0, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.render(out, indent, d);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn render_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without a fractional part, like serde_json.
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 produces the shortest representation that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn needs_escape(c: char) -> bool {
    matches!(c, '"' | '\\') || (c as u32) < 0x20
}

fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    // Copy whole runs of plain characters; escape only where needed.
    let mut rest = s;
    while let Some(i) = rest.find(needs_escape) {
        out.push_str(&rest[..i]);
        let c = rest[i..].chars().next().expect("match in bounds");
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
        }
        rest = &rest[i + c.len_utf8()..];
    }
    out.push_str(rest);
    out.push('"');
}

/// Error raised by JSON parsing or value conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run of unescaped bytes in one step
                    // and validate it as UTF-8 once. Splitting on `"`/`\` is
                    // UTF-8 safe: multi-byte sequences never contain ASCII
                    // byte values.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, null, true], "b": {"c": "x\"y"}}"#).unwrap();
        assert_eq!(
            v.field("a").unwrap(),
            &Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.5),
                Value::Null,
                Value::Bool(true),
            ])
        );
        assert_eq!(
            v.field("b").unwrap().field("c").unwrap().as_str(),
            Some("x\"y")
        );
    }

    #[test]
    fn render_parse_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("seed \n tab\t".into())),
            (
                "values".into(),
                Value::Array(vec![Value::Number(0.1), Value::Number(-3.0)]),
            ),
            ("none".into(), Value::Null),
        ]);
        assert_eq!(parse(&v.render_compact()).unwrap(), v);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn float_precision_survives_round_trip() {
        for x in [0.1f64, 1.0 / 3.0, f64::MAX, 5e-324, 123_456_789.123_456_79] {
            let rendered = Value::Number(x).render_compact();
            match parse(&rendered).unwrap() {
                Value::Number(back) => assert_eq!(back, x, "{rendered}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
