//! Offline stand-in for `serde` (+`serde_derive`).
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde this workspace relies on: `#[derive(Serialize, Deserialize)]`
//! on named-field structs and fieldless enums, routed through a small JSON
//! value model ([`json::Value`]) instead of serde's full data model. The
//! companion `serde_json` shim renders and parses that value model.
//!
//! Deliberate simplifications:
//!
//! * serialization always targets JSON (the only format used here),
//! * `Deserialize` has no lifetime parameter (no zero-copy deserialization),
//! * non-finite floats serialize as `null` and deserialize as `NaN`, matching
//!   `serde_json`'s lossy behaviour closely enough for experiment persistence.

#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Error, Value};
use std::collections::{BTreeMap, HashMap};

/// Types convertible into a [`json::Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`json::Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`json::Error`] when the value has the wrong shape.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() { Value::Number(v) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() { Value::Number(v) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    // Non-finite floats were serialized as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(std::path::PathBuf::from(s)),
            other => Err(Error::custom(format!(
                "expected string path, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {}-element array, got {}", LEN, other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let fields = entries
        .map(|(k, v)| {
            let key = match k.serialize_value() {
                Value::String(s) => s,
                other => other.render_compact(),
            };
            (key, v.serialize_value())
        })
        .collect();
    Value::Object(fields)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

/// Rebuilds a map key from the string form produced by [`map_to_value`].
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    K::deserialize_value(&Value::String(key.to_string()))
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u8::deserialize_value(&42u8.serialize_value()).unwrap(), 42);
        assert_eq!(
            f32::deserialize_value(&1.25f32.serialize_value()).unwrap(),
            1.25
        );
        assert!(bool::deserialize_value(&true.serialize_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(
            String::deserialize_value(&s.serialize_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u8>::deserialize_value(&Value::Null).unwrap(), None);
        let some: Option<u8> = Some(3);
        assert_eq!(
            Option::<u8>::deserialize_value(&some.serialize_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn vecs_and_tuples_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let back: Vec<(usize, f64)> = Deserialize::deserialize_value(&v.serialize_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let v = f64::INFINITY.serialize_value();
        assert_eq!(v, Value::Null);
        assert!(f64::deserialize_value(&v).unwrap().is_nan());
    }
}
