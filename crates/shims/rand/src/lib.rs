//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships a
//! small, deterministic implementation of the subset of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods `gen_range` /
//! `gen_bool` / `gen`, and [`seq::SliceRandom::shuffle`].
//!
//! Streams are *not* bit-compatible with the real `rand` crate; everything in
//! this repository only relies on determinism per seed, which this shim
//! guarantees.

#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (the only constructor this
    /// repository uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0,1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a `Standard`-distributed type (`f32`/`f64` in
    /// `[0, 1)`, any integer width, `bool`).
    fn gen<T: StandardDist>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64 -> f64` in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `u64 -> f32` in `[0, 1)` with 24 random bits.
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types samplable by [`Rng::gen`].
pub trait StandardDist: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer below `span` using a widening multiply (no modulo bias
/// worth caring about at 64 bits of entropy).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_float_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = $unit(rng.next_u64());
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = $unit(rng.next_u64());
                start + u * (end - start)
            }
        }
    )*};
}
sample_float_range!(f32 => unit_f32, f64 => unit_f64);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    ///
    /// Deterministic per seed, `Clone`-able, and fast; not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshots the internal xoshiro256** state (shim extension used for
        /// search checkpointing; the real `rand` crate exposes the same
        /// capability through serde on its RNG types).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds an RNG from a [`StdRng::state`] snapshot, continuing the
        /// stream exactly where the snapshot was taken.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{below, Rng};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.gen_range(0..100usize);
        }
        let snapshot = a.state();
        let mut b = StdRng::from_state(snapshot);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
