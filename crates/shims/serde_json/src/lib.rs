//! Offline stand-in for `serde_json`, backed by the `serde` shim's
//! [`Value`] model.

#![warn(rust_2018_idioms)]

pub use serde::json::{parse, Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this shim (the signature matches `serde_json` for
/// drop-in compatibility).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().render_compact())
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this shim.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().render_pretty())
}

/// Parses a value of type `T` from a JSON document.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    T::deserialize_value(&parse(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_tuples_round_trips() {
        let v: Vec<(u8, f64)> = vec![(1, 0.5), (2, -1.25)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u8, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1.0f32, 2.0], vec![3.5, 4.25]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<f32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
