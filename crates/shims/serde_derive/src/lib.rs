//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the two
//! shapes this workspace uses, without `syn`/`quote`:
//!
//! * structs with named fields → JSON objects (field order preserved),
//! * enums whose variants all carry no data → JSON strings (variant name).
//!
//! Anything else (tuple structs, generic types, data-carrying enums,
//! `#[serde(...)]` attributes) panics at expansion time with a clear message,
//! so unsupported shapes fail the build loudly instead of serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::serialize_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::json::Value)> = \
                 Vec::with_capacity({});\n{pushes}::serde::json::Value::Object(fields)",
                fields.len()
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::json::Value::String(\"{v}\".to_string()),\n",
                        name = item.name
                    )
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn serialize_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}",
        item.name
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derives the shim `serde::Deserialize` implementation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(value.field(\"{f}\")?)?,\n"
                    )
                })
                .collect();
            format!("Ok({name} {{\n{inits}}})", name = item.name)
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n", name = item.name))
                .collect();
            format!(
                "match value.as_str() {{\n\
                 Some(s) => match s {{\n{arms}\
                 other => Err(::serde::json::Error::custom(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 None => Err(::serde::json::Error::custom(\
                 \"expected string for enum {name}\")),\n}}",
                name = item.name
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {} {{\n\
         fn deserialize_value(value: &::serde::json::Value) \
         -> Result<Self, ::serde::json::Error> {{\n{body}\n}}\n}}",
        item.name
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}

enum Shape {
    /// Named field identifiers, in declaration order.
    Struct(Vec<String>),
    /// Unit variant identifiers, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive shim: only brace-bodied items are supported \
             (type `{name}`), got {other:?}"
        ),
    };

    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(body, &name)),
        "enum" => Shape::Enum(parse_enum_variants(body, &name)),
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                *i += 2;
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_fields(body: TokenStream, type_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => {
                panic!("serde_derive shim: `{type_name}` must have named fields, got {other:?}")
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde_derive shim: expected `:` after field `{field}` of \
                 `{type_name}`, got {other:?}"
            ),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(i) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        // Skip the comma itself, if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_enum_variants(body: TokenStream, type_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("serde_derive shim: unexpected token in enum `{type_name}`: {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: enum `{type_name}` variant `{variant}` carries \
                 data, which is not supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!(
                "serde_derive shim: unexpected token after variant `{variant}` of \
                 `{type_name}`: {other:?}"
            ),
        }
        variants.push(variant);
    }
    variants
}
