//! Offline stand-in for `rayon`.
//!
//! Provides the slice-oriented subset this workspace uses — `par_iter()` /
//! `into_par_iter()` with `map(...).collect()` — executed on real OS threads
//! via `std::thread::scope` with an atomic work-stealing index, so parallel
//! evaluation still scales with the available cores.
//!
//! `collect()` supports both `Vec<U>` and the `Result<Vec<V>, E>`
//! short-circuit-style collection rayon users rely on.

#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// The usual rayon prelude: import `*` to get `par_iter` / `into_par_iter` /
/// `par_chunks_mut`.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over `0..n` on multiple threads, preserving index order.
///
/// When `is_failure` reports true for a produced value, no *further* items
/// are scheduled (in-flight items still finish), so a failing batch does not
/// pay for the whole remainder; slots that were never scheduled stay `None`.
fn run_indexed<U, F>(
    n: usize,
    threads: usize,
    f: F,
    is_failure: impl Fn(&U) -> bool + Sync,
) -> Vec<Option<U>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n).max(1);
    if threads == 1 {
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, slot) in slots.iter_mut().enumerate() {
            let value = f(i);
            let failed = is_failure(&value);
            *slot = Some(value);
            if failed {
                break;
            }
        }
        return slots;
    }
    let next = AtomicUsize::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let value = f(i);
                        if is_failure(&value) {
                            stop.store(true, Ordering::Relaxed);
                        }
                        local.push((i, value));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("rayon shim worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
}

/// `par_iter()` on slices (and anything that derefs to a slice, e.g. `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over references to the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `par_chunks_mut()` on mutable slices (and anything that derefs to one,
/// e.g. `Vec`), matching the real rayon chain
/// `par_chunks_mut(n).enumerate().for_each(...)`.
pub trait ParallelSliceMut<T: Send> {
    /// Returns a parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be > 0");
        ParChunksMut {
            items: self,
            chunk_size,
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut { inner: self }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct EnumerateParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

/// One hand-off cell per chunk: workers take disjoint chunks by index.
type ChunkCell<'a, T> = std::sync::Mutex<Option<(usize, &'a mut [T])>>;

impl<T: Send> EnumerateParChunksMut<'_, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<ChunkCell<'_, T>> = self
            .inner
            .items
            .chunks_mut(self.inner.chunk_size)
            .enumerate()
            .map(|pair| std::sync::Mutex::new(Some(pair)))
            .collect();
        run_indexed(
            chunks.len(),
            current_num_threads(),
            |i| {
                let pair = chunks[i]
                    .lock()
                    .expect("uncontended")
                    .take()
                    .expect("taken once");
                f(pair)
            },
            |_| false,
        );
    }
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` (executed later, in `collect`).
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_indexed(
            self.items.len(),
            current_num_threads(),
            |i| f(&self.items[i]),
            |_| false,
        );
    }
}

/// A mapped borrowing parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Executes the map on worker threads and collects the results.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromParallel<U>,
    {
        let f = &self.f;
        C::from_partial(run_indexed(
            self.items.len(),
            current_num_threads(),
            |i| f(&self.items[i]),
            C::is_failure,
        ))
    }
}

/// Owning parallel iterator.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync> IntoParIter<T> {
    /// Maps every element through `f` (executed later, in `collect`).
    pub fn map<U, F>(self, f: F) -> IntoParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped owning parallel iterator, ready to collect.
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send + Sync, F> IntoParMap<T, F> {
    /// Executes the map on worker threads and collects the results.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromParallel<U>,
    {
        let f = &self.f;
        // Move the items into index-addressable cells so worker threads can
        // take disjoint elements by index.
        let cells: Vec<std::sync::Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| std::sync::Mutex::new(Some(t)))
            .collect();
        C::from_partial(run_indexed(
            cells.len(),
            current_num_threads(),
            |i| {
                let item = cells[i]
                    .lock()
                    .expect("uncontended")
                    .take()
                    .expect("taken once");
                f(item)
            },
            C::is_failure,
        ))
    }
}

/// Collection targets for the shim's `collect()`.
pub trait FromParallel<U>: Sized {
    /// `true` when a produced value means the batch can stop scheduling
    /// further items (e.g. an `Err` for `Result` collections).
    fn is_failure(_item: &U) -> bool {
        false
    }

    /// Builds the collection from per-index results. Slots are `None` only
    /// when the batch stopped early after a failure value.
    fn from_partial(items: Vec<Option<U>>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_partial(items: Vec<Option<U>>) -> Self {
        // `is_failure` is always false here, so every slot is filled.
        items
            .into_iter()
            .map(|slot| slot.expect("all indices filled"))
            .collect()
    }
}

impl<V, E> FromParallel<Result<V, E>> for Result<Vec<V>, E> {
    fn is_failure(item: &Result<V, E>) -> bool {
        item.is_err()
    }

    fn from_partial(mut items: Vec<Option<Result<V, E>>>) -> Self {
        // On early stop the first failure may sit at any index, with
        // unscheduled `None` slots before it — surface the error first.
        if let Some(pos) = items.iter().position(|i| matches!(i, Some(Err(_)))) {
            match items.swap_remove(pos) {
                Some(Err(e)) => return Err(e),
                _ => unreachable!("position matched an Err slot"),
            }
        }
        Ok(items
            .into_iter()
            .map(|slot| match slot {
                Some(Ok(v)) => v,
                _ => unreachable!("no failure observed, so every slot is Ok"),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..256).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(100));
            })
            .collect();
        if super::current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread");
        }
    }

    #[test]
    fn result_collection_short_circuits_to_err() {
        let input: Vec<usize> = (0..100).collect();
        let out: Result<Vec<usize>, String> = input
            .par_iter()
            .map(|&x| {
                if x == 42 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(out, Err("boom".to_string()));
    }

    #[test]
    fn failure_stops_scheduling_the_remainder() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let input: Vec<usize> = (0..10_000).collect();
        let out: Result<Vec<usize>, String> = input
            .par_iter()
            .map(|&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    Err("boom".to_string())
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(10));
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(out, Err("boom".to_string()));
        let calls = calls.load(Ordering::Relaxed);
        assert!(
            calls < 10_000,
            "failure did not stop scheduling ({calls} calls)"
        );
    }

    #[test]
    fn into_par_iter_consumes_items() {
        let input: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 50);
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0_usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        // 103 elements in chunks of 10 -> 11 chunks, last of length 3.
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[100], 11);
        assert_eq!(data[9], 1);
        assert_eq!(data[10], 2);
    }
}
