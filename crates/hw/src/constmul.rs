//! Bespoke constant-coefficient multiplier synthesis.
//!
//! In a bespoke printed MLP every weight is a hard-wired constant, so a
//! "multiplier" is really a small shift-add network whose size depends on the
//! constant's digit pattern:
//!
//! * constant `0` — no hardware at all (the connection is pruned),
//! * `±2^k` — pure wiring (a shift, plus a negation for the minus sign),
//! * anything else — one shift per non-zero CSD digit combined by an adder
//!   tree, with subtractors for the negative digits.
//!
//! This is exactly the mechanism that makes quantization (fewer non-zero
//! digits), pruning (more zero constants) and weight clustering (shared
//! products) pay off in area.

use crate::adder::{self, Word};
use crate::csd::CsdDigits;
use crate::netlist::{NetId, Netlist};

/// Strategy for recoding the constant before building the shift-add network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecodingStrategy {
    /// Canonical signed digit (fewest non-zero digits) — the default.
    #[default]
    Csd,
    /// Plain two's-complement binary digits (for the CSD-vs-binary ablation).
    Binary,
}

/// Builds a constant multiplier computing `constant * input` and returns the
/// product word (signed, wide enough to hold the full product).
///
/// The `input` word is interpreted as signed two's complement. A zero constant
/// returns the 1-bit constant-zero word without adding any gates.
pub fn constant_multiplier(
    netlist: &mut Netlist,
    input: &[NetId],
    constant: i64,
    strategy: RecodingStrategy,
) -> Word {
    assert!(
        !input.is_empty(),
        "constant multiplier needs a non-empty input word"
    );
    if constant == 0 {
        return adder::constant_word(0, 1);
    }

    let terms: Vec<(u32, i8)> = match strategy {
        RecodingStrategy::Csd => CsdDigits::from_value(constant).terms(),
        RecodingStrategy::Binary => {
            let negative = constant < 0;
            let magnitude = constant.unsigned_abs();
            (0..64)
                .filter(|&i| (magnitude >> i) & 1 == 1)
                .map(|i| (i as u32, if negative { -1_i8 } else { 1_i8 }))
                .collect()
        }
    };

    // Split into positive and negative shift terms.
    let positive: Vec<Word> = terms
        .iter()
        .filter(|&&(_, sign)| sign > 0)
        .map(|&(shift, _)| adder::shift_left(input, shift as usize))
        .collect();
    let negative: Vec<Word> = terms
        .iter()
        .filter(|&&(_, sign)| sign < 0)
        .map(|&(shift, _)| adder::shift_left(input, shift as usize))
        .collect();

    let pos_sum = adder::adder_tree(netlist, &positive);
    let neg_sum = adder::adder_tree(netlist, &negative);

    match (positive.is_empty(), negative.is_empty()) {
        (true, true) => adder::constant_word(0, 1),
        (false, true) => pos_sum,
        (true, false) => adder::negate(netlist, &neg_sum),
        (false, false) => adder::sub(netlist, &pos_sum, &neg_sum),
    }
}

/// Cost summary of a constant multiplier without building the netlist —
/// useful for fast area estimation inside search loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplierCost {
    /// Number of add/sub stages.
    pub adders: usize,
    /// Number of non-zero digits of the recoded constant.
    pub nonzero_digits: usize,
    /// `true` when the multiplier is pure wiring (zero or power-of-two
    /// constant).
    pub is_free: bool,
}

/// Estimates the cost of multiplying by `constant` without building gates.
pub fn multiplier_cost(constant: i64, strategy: RecodingStrategy) -> MultiplierCost {
    let nonzero = match strategy {
        RecodingStrategy::Csd => CsdDigits::from_value(constant).nonzero_count(),
        RecodingStrategy::Binary => CsdDigits::binary_nonzero_count(constant),
    };
    MultiplierCost {
        adders: nonzero.saturating_sub(1),
        nonzero_digits: nonzero,
        is_free: nonzero <= 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::{encode_value, input_word, word_value};
    use crate::cell::CellLibrary;

    fn check_multiplier(constant: i64, width: usize, strategy: RecodingStrategy) {
        let mut netlist = Netlist::new("mul");
        let x = input_word(&mut netlist, width);
        let product = constant_multiplier(&mut netlist, &x, constant, strategy);
        let lo = -(1_i64 << (width - 1));
        let hi = (1_i64 << (width - 1)) - 1;
        for v in lo..=hi {
            let values = netlist.simulate(&encode_value(v, width));
            assert_eq!(
                word_value(&values, &product),
                constant * v,
                "constant {constant} * {v} (width {width}, {strategy:?})"
            );
        }
    }

    #[test]
    fn zero_constant_is_free() {
        let mut netlist = Netlist::new("zero");
        let x = input_word(&mut netlist, 4);
        let before = netlist.gate_count();
        let product = constant_multiplier(&mut netlist, &x, 0, RecodingStrategy::Csd);
        assert_eq!(netlist.gate_count(), before);
        let values = netlist.simulate(&encode_value(5, 4));
        assert_eq!(word_value(&values, &product), 0);
    }

    #[test]
    fn power_of_two_constants_add_no_adders() {
        for c in [1_i64, 2, 4, 8] {
            let mut netlist = Netlist::new("pow2");
            let x = input_word(&mut netlist, 4);
            let _ = constant_multiplier(&mut netlist, &x, c, RecodingStrategy::Csd);
            assert_eq!(
                netlist.gate_count(),
                0,
                "constant {c} should be pure wiring"
            );
        }
    }

    #[test]
    fn small_constants_are_functionally_correct_csd() {
        for c in -16_i64..=16 {
            check_multiplier(c, 5, RecodingStrategy::Csd);
        }
    }

    #[test]
    fn small_constants_are_functionally_correct_binary() {
        for c in -16_i64..=16 {
            check_multiplier(c, 5, RecodingStrategy::Binary);
        }
    }

    #[test]
    fn larger_constants_are_functionally_correct() {
        for c in [23_i64, -37, 55, 127, -128, 100] {
            check_multiplier(c, 6, RecodingStrategy::Csd);
        }
    }

    #[test]
    fn csd_never_needs_more_adder_stages_than_binary() {
        for c in 1_i64..=127 {
            let csd = multiplier_cost(c, RecodingStrategy::Csd);
            let bin = multiplier_cost(c, RecodingStrategy::Binary);
            assert!(
                csd.nonzero_digits <= bin.nonzero_digits,
                "CSD needs more digits than binary for constant {c}"
            );
        }
    }

    #[test]
    fn csd_multiplier_is_smaller_when_it_saves_digits() {
        // 15 = 16 - 1 in CSD (2 digits) but 1111b in binary (4 digits).
        let lib = CellLibrary::egt();
        let mut csd_net = Netlist::new("csd");
        let x = input_word(&mut csd_net, 8);
        let _ = constant_multiplier(&mut csd_net, &x, 15, RecodingStrategy::Csd);
        let mut bin_net = Netlist::new("bin");
        let x = input_word(&mut bin_net, 8);
        let _ = constant_multiplier(&mut bin_net, &x, 15, RecodingStrategy::Binary);
        assert!(csd_net.area(&lib).total_mm2 < bin_net.area(&lib).total_mm2);
    }

    #[test]
    fn area_grows_with_nonzero_digit_count() {
        let lib = CellLibrary::egt();
        // 0b101 = 5 has 2 CSD digits, 0b10101 = 21 has 3, 0b1010101 = 85 has 4.
        let mut areas = Vec::new();
        for c in [5_i64, 21, 85] {
            let mut netlist = Netlist::new("grow");
            let x = input_word(&mut netlist, 6);
            let _ = constant_multiplier(&mut netlist, &x, c, RecodingStrategy::Csd);
            areas.push(netlist.area(&lib).total_mm2);
        }
        assert!(areas[0] < areas[1]);
        assert!(areas[1] < areas[2]);
    }

    #[test]
    fn low_precision_constants_are_cheaper_on_average() {
        // The mechanism behind the paper's quantization gains: constants drawn
        // from a 3-bit grid have fewer non-zero digits than from a 7-bit grid.
        let avg_adders = |bits: u32| {
            let max = (1_i64 << (bits - 1)) - 1;
            let mut total = 0usize;
            let mut count = 0usize;
            for c in -(max + 1)..=max {
                total += multiplier_cost(c, RecodingStrategy::Csd).adders;
                count += 1;
            }
            total as f64 / count as f64
        };
        assert!(avg_adders(3) < avg_adders(5));
        assert!(avg_adders(5) < avg_adders(7));
    }

    #[test]
    fn multiplier_cost_matches_structure() {
        let c = multiplier_cost(7, RecodingStrategy::Csd); // 8 - 1
        assert_eq!(c.nonzero_digits, 2);
        assert_eq!(c.adders, 1);
        assert!(!c.is_free);
        let c = multiplier_cost(8, RecodingStrategy::Csd);
        assert!(c.is_free);
        let c = multiplier_cost(0, RecodingStrategy::Csd);
        assert!(c.is_free);
        assert_eq!(c.adders, 0);
        // Binary recoding of 7 has 3 ones.
        let c = multiplier_cost(7, RecodingStrategy::Binary);
        assert_eq!(c.nonzero_digits, 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::adder::{encode_value, input_word, word_value};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn multiplier_matches_integer_product(c in -127_i64..127, v in -32_i64..31) {
            let mut netlist = Netlist::new("p");
            let x = input_word(&mut netlist, 6);
            let product = constant_multiplier(&mut netlist, &x, c, RecodingStrategy::Csd);
            let values = netlist.simulate(&encode_value(v, 6));
            prop_assert_eq!(word_value(&values, &product), c * v);
        }
    }
}
