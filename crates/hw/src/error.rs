//! Error type for the hardware-model crate.

use std::fmt;

/// Error returned by synthesis and analysis operations.
#[derive(Debug, Clone, PartialEq)]
pub enum HwError {
    /// A bit-width is zero or larger than the supported maximum.
    InvalidBitWidth {
        /// Description of the offending parameter.
        context: String,
    },
    /// A circuit specification is structurally inconsistent.
    InvalidSpec {
        /// Description of the inconsistency.
        context: String,
    },
    /// A value does not fit in the requested fixed-point format.
    Overflow {
        /// The value that overflowed.
        value: f64,
        /// Description of the target format.
        format: String,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::InvalidBitWidth { context } => write!(f, "invalid bit width: {context}"),
            HwError::InvalidSpec { context } => {
                write!(f, "invalid circuit specification: {context}")
            }
            HwError::Overflow { value, format } => {
                write!(
                    f,
                    "value {value} does not fit in fixed-point format {format}"
                )
            }
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = HwError::InvalidBitWidth {
            context: "weight bits = 0".into(),
        };
        assert!(e.to_string().contains("weight bits"));
        let e = HwError::Overflow {
            value: 3.5,
            format: "Q1.2".into(),
        };
        assert!(e.to_string().contains("3.5"));
        assert!(e.to_string().contains("Q1.2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<HwError>();
    }
}
