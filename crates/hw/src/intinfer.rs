//! Pure-integer fixed-point inference for bespoke MLP circuits.
//!
//! The search loop scores thousands of candidate networks per second, and the
//! artifact whose accuracy actually matters is the *circuit* — not the float
//! model it was distilled from. This module evaluates a [`CircuitSpec`] (the
//! same integer weights/biases the netlist hard-wires) with plain integer
//! arithmetic, bit-identical to [`crate::circuit::BespokeMlpCircuit`] →
//! [`crate::netlist::Netlist::simulate`], at millions of rows per second:
//!
//! * no floats anywhere — inputs are the unsigned `input_bits`-wide grid
//!   values the circuit's primary inputs carry, sums are exact integers;
//! * row-blocked accumulate kernels, parallelised over rows with rayon;
//! * a narrow **i32** kernel is selected automatically when the worst-case
//!   accumulator bound fits, falling back to an **i64** kernel otherwise
//!   (the bound is over magnitudes, so every partial sum is covered too);
//! * an optional per-input product codebook mirroring
//!   [`SharingStrategy::SharedPerInput`]: each distinct `(input, weight)`
//!   product is computed once per row, exactly like the shared multipliers
//!   in the synthesized netlist.
//!
//! ## Why this is bit-identical to the netlist
//!
//! The gate-level adders never overflow: `add`/`sub` widen their result by
//! one bit and the balanced adder tree grows as needed, so the netlist
//! computes the exact integer dot product `Σ wᵢ·uᵢ + bias`. ReLU masks the
//! sum to `max(0, s)` and the argmax comparator tree resolves ties to the
//! *lowest* index — the same recurrence this module evaluates. Sharing and
//! recoding change circuit *structure*, never arithmetic. The differential
//! battery (`intinfer_vs_netlist` proptests plus the golden-vector corpus)
//! holds the two implementations together.
//!
//! ## Example
//!
//! ```
//! use pmlp_hw::{CircuitSpec, LayerSpec, HwActivation, IntInferEngine};
//!
//! # fn main() -> Result<(), pmlp_hw::HwError> {
//! let spec = CircuitSpec::new(
//!     4,
//!     vec![LayerSpec::new(
//!         vec![vec![3, -2], vec![0, 5]],
//!         4,
//!         HwActivation::Argmax,
//!     )?],
//! )?;
//! let engine = IntInferEngine::from_spec(&spec)?;
//! assert_eq!(engine.classify_row(&[1, 7]), 1); // 3·1-2·7 = -11  vs  5·7 = 35
//! # Ok(())
//! # }
//! ```

use crate::circuit::{CircuitSpec, HwActivation, SharingStrategy};
use crate::error::HwError;
use rayon::ParallelSliceMut;
use std::collections::BTreeMap;

/// Number of classification rows each parallel worker scores per block.
/// Large enough to amortise scratch allocation, small enough to balance
/// load across cores for modest test sets.
const ROW_BLOCK: usize = 1024;

/// Quantizes min-max-normalized features (each in `[0, 1]`) onto the
/// circuit's unsigned input grid: `u = round(x · (2^input_bits − 1))`,
/// clamped to the grid. This is exactly the grid
/// `pmlp_data`'s `quantize_features` snaps to, so a float model scored on
/// quantized features and this engine consume identical points.
///
/// The returned rows are flattened sample-major (`features.len()` values).
///
/// # Errors
///
/// Returns [`HwError::InvalidBitWidth`] when `input_bits` is outside
/// `1..=16`.
pub fn quantize_rows(features: &[f32], input_bits: u8) -> Result<Vec<u16>, HwError> {
    if input_bits == 0 || input_bits > 16 {
        return Err(HwError::InvalidBitWidth {
            context: format!("input_bits must be in 1..=16, got {input_bits}"),
        });
    }
    let levels = ((1_u32 << input_bits) - 1) as f32;
    Ok(features
        .iter()
        .map(|&x| (x * levels).round().clamp(0.0, levels) as u16)
        .collect())
}

/// The integer type an accumulate kernel runs in.
trait Cell: Copy + Send + Sync + 'static {
    fn from_i64(v: i64) -> Self;
    fn to_i64(self) -> i64;
    fn from_input(v: u16) -> Self;
    fn mac(acc: Self, w: Self, x: Self) -> Self;
    fn mul(a: Self, b: Self) -> Self;
    fn add(a: Self, b: Self) -> Self;
    fn relu(v: Self) -> Self;
}

macro_rules! impl_cell {
    ($t:ty) => {
        impl Cell for $t {
            #[inline(always)]
            fn from_i64(v: i64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_i64(self) -> i64 {
                self as i64
            }
            #[inline(always)]
            fn from_input(v: u16) -> Self {
                v as $t
            }
            #[inline(always)]
            fn mac(acc: Self, w: Self, x: Self) -> Self {
                acc + w * x
            }
            #[inline(always)]
            fn mul(a: Self, b: Self) -> Self {
                a * b
            }
            #[inline(always)]
            fn add(a: Self, b: Self) -> Self {
                a + b
            }
            #[inline(always)]
            fn relu(v: Self) -> Self {
                if v < 0 {
                    0
                } else {
                    v
                }
            }
        }
    };
}

impl_cell!(i32);
impl_cell!(i64);

/// Per-input product codebook for the shared kernel: each distinct
/// `(input, weight)` pair becomes one product *slot*, computed once per row
/// and summed into every subscribing neuron — the software mirror of the
/// netlist's shared multipliers.
struct Codebook<T> {
    /// `(input index, weight code)` per slot.
    slots: Vec<(u32, T)>,
    /// Concatenated slot indices, neuron-major.
    terms: Vec<u32>,
    /// Per neuron: `[start, end)` range into `terms`.
    term_ranges: Vec<(u32, u32)>,
}

/// One fully-connected layer, pre-lowered into kernel form.
struct Layer<T> {
    neurons: usize,
    inputs: usize,
    /// Dense row-major weights (`neurons × inputs`); unused when `shared`
    /// is present.
    weights: Vec<T>,
    biases: Vec<T>,
    relu: bool,
    shared: Option<Codebook<T>>,
}

impl<T: Cell> Layer<T> {
    /// Evaluates the layer: `acts_in` (`inputs` values) → `acts_out`
    /// (`neurons` values, pre-sized by the caller). `products` is shared
    /// scratch for the codebook kernel.
    fn forward(&self, acts_in: &[T], acts_out: &mut [T], products: &mut Vec<T>) {
        match &self.shared {
            None => {
                for (n, out) in acts_out.iter_mut().enumerate() {
                    let row = &self.weights[n * self.inputs..(n + 1) * self.inputs];
                    let mut acc = self.biases[n];
                    for (&w, &x) in row.iter().zip(acts_in.iter()) {
                        acc = T::mac(acc, w, x);
                    }
                    *out = if self.relu { T::relu(acc) } else { acc };
                }
            }
            Some(book) => {
                products.clear();
                products.extend(
                    book.slots
                        .iter()
                        .map(|&(i, code)| T::mul(acts_in[i as usize], code)),
                );
                for (n, out) in acts_out.iter_mut().enumerate() {
                    let (start, end) = book.term_ranges[n];
                    let mut acc = self.biases[n];
                    for &slot in &book.terms[start as usize..end as usize] {
                        acc = T::add(acc, products[slot as usize]);
                    }
                    *out = if self.relu { T::relu(acc) } else { acc };
                }
            }
        }
    }
}

/// A lowered network plus the scratch sizing its kernels need.
struct Network<T> {
    layers: Vec<Layer<T>>,
    /// Widest activation vector (inputs or any layer's neuron count).
    max_width: usize,
    /// Largest codebook slot count across layers (0 when sharing is off).
    max_slots: usize,
}

impl<T: Cell> Network<T> {
    fn lower(spec: &CircuitSpec, sharing: SharingStrategy) -> Self {
        let mut layers = Vec::with_capacity(spec.layers.len());
        let mut max_width = spec.input_count();
        let mut max_slots = 0;
        for layer in &spec.layers {
            max_width = max_width.max(layer.neuron_count());
            let shared = match sharing {
                SharingStrategy::None => None,
                SharingStrategy::SharedPerInput => {
                    let book = build_codebook::<T>(&layer.weights);
                    max_slots = max_slots.max(book.slots.len());
                    Some(book)
                }
            };
            layers.push(Layer {
                neurons: layer.neuron_count(),
                inputs: layer.input_count(),
                weights: match shared {
                    // The dense matrix is dead weight once the codebook owns
                    // the products.
                    Some(_) => Vec::new(),
                    None => layer
                        .weights
                        .iter()
                        .flatten()
                        .map(|&w| T::from_i64(w))
                        .collect(),
                },
                biases: layer.biases.iter().map(|&b| T::from_i64(b)).collect(),
                relu: layer.activation == HwActivation::ReLU,
                shared,
            });
        }
        Network {
            layers,
            max_width,
            max_slots,
        }
    }

    /// Runs the whole network for one row into `scratch`, leaving the final
    /// layer's activations in the returned slice.
    fn forward<'s>(&self, row: &[u16], scratch: &'s mut Scratch<T>) -> &'s [T] {
        let Scratch { a, b, products } = scratch;
        a.clear();
        a.extend(row.iter().map(|&v| T::from_input(v)));
        for layer in &self.layers {
            b.clear();
            b.resize(layer.neurons, T::from_i64(0));
            layer.forward(a, b, products);
            std::mem::swap(a, b);
        }
        a
    }
}

/// Reusable per-worker buffers: two activation ping-pong vectors plus the
/// codebook product scratch.
struct Scratch<T> {
    a: Vec<T>,
    b: Vec<T>,
    products: Vec<T>,
}

impl<T: Cell> Scratch<T> {
    fn for_network(net: &Network<T>) -> Self {
        Scratch {
            a: Vec::with_capacity(net.max_width),
            b: Vec::with_capacity(net.max_width),
            products: Vec::with_capacity(net.max_slots),
        }
    }
}

fn build_codebook<T: Cell>(weights: &[Vec<i64>]) -> Codebook<T> {
    let mut slot_of: BTreeMap<(usize, i64), u32> = BTreeMap::new();
    let mut slots: Vec<(u32, T)> = Vec::new();
    let mut terms: Vec<u32> = Vec::new();
    let mut term_ranges = Vec::with_capacity(weights.len());
    for row in weights {
        let start = terms.len() as u32;
        for (i, &w) in row.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let slot = *slot_of.entry((i, w)).or_insert_with(|| {
                slots.push((i as u32, T::from_i64(w)));
                (slots.len() - 1) as u32
            });
            terms.push(slot);
        }
        term_ranges.push((start, terms.len() as u32));
    }
    Codebook {
        slots,
        terms,
        term_ranges,
    }
}

/// Worst-case accumulator magnitude per layer, assuming inputs bounded by
/// `2^input_bits − 1`. ReLU and Identity both preserve the bound (ReLU can
/// only shrink magnitudes), and every *partial* sum of `bias + Σ wᵢ·uᵢ` is
/// bounded by the same sum of magnitudes, so a layer whose bound fits a type
/// can be accumulated in that type without intermediate overflow.
fn accumulator_bound(spec: &CircuitSpec) -> u128 {
    let mut in_bound: u128 = (1_u128 << spec.input_bits) - 1;
    let mut worst: u128 = in_bound;
    for layer in &spec.layers {
        let mut layer_bound: u128 = 0;
        for (row, &bias) in layer.weights.iter().zip(layer.biases.iter()) {
            // Saturating: a bound past u128 is certainly past i64 and will
            // be rejected by the caller, so clamping is safe.
            let neuron: u128 = row
                .iter()
                .map(|&w| (w.unsigned_abs() as u128).saturating_mul(in_bound))
                .fold(bias.unsigned_abs() as u128, u128::saturating_add);
            layer_bound = layer_bound.max(neuron);
        }
        worst = worst.max(layer_bound);
        in_bound = layer_bound;
    }
    worst
}

enum Plan {
    Narrow(Network<i32>),
    Wide(Network<i64>),
}

/// A pure-integer inference engine for a bespoke MLP circuit, bit-identical
/// to gate-level netlist simulation of the same [`CircuitSpec`].
///
/// Construct one with [`IntInferEngine::from_spec`] (dense kernels) or
/// [`IntInferEngine::from_spec_with`] (per-input product sharing), then score
/// rows with [`classify_row`](IntInferEngine::classify_row) /
/// [`classify_batch`](IntInferEngine::classify_batch) /
/// [`accuracy`](IntInferEngine::accuracy). Inputs are unsigned grid values in
/// `0..2^input_bits` (see [`quantize_rows`]).
pub struct IntInferEngine {
    input_bits: u8,
    input_count: usize,
    output_count: usize,
    plan: Plan,
}

impl IntInferEngine {
    /// Builds an engine with dense accumulate kernels (the counterpart of
    /// [`SharingStrategy::None`]).
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors, plus [`HwError::InvalidSpec`] when
    /// the worst-case accumulator exceeds `i64` (such a network cannot be
    /// scored exactly by this engine — nor by `word_value` on the netlist).
    pub fn from_spec(spec: &CircuitSpec) -> Result<Self, HwError> {
        Self::from_spec_with(spec, SharingStrategy::None)
    }

    /// Builds an engine whose kernels mirror the given sharing strategy.
    /// The arithmetic result is identical either way (sharing changes which
    /// intermediate products are reused, never their values); the shared
    /// kernel exists so the software path exercises the exact product
    /// codebooks the hardware builds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IntInferEngine::from_spec`].
    pub fn from_spec_with(spec: &CircuitSpec, sharing: SharingStrategy) -> Result<Self, HwError> {
        spec.validate()?;
        let bound = accumulator_bound(spec);
        if bound > i64::MAX as u128 {
            return Err(HwError::InvalidSpec {
                context: format!("worst-case accumulator {bound} exceeds i64"),
            });
        }
        let plan = if bound <= i32::MAX as u128 {
            Plan::Narrow(Network::lower(spec, sharing))
        } else {
            Plan::Wide(Network::lower(spec, sharing))
        };
        Ok(IntInferEngine {
            input_bits: spec.input_bits,
            input_count: spec.input_count(),
            output_count: spec.output_count(),
            plan,
        })
    }

    /// Number of input features per row.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of output classes.
    pub fn output_count(&self) -> usize {
        self.output_count
    }

    /// Bit-width of the unsigned input grid.
    pub fn input_bits(&self) -> u8 {
        self.input_bits
    }

    /// `true` when the worst-case accumulator forced the wide `i64` kernel;
    /// `false` when the narrow `i32` kernel is in use.
    pub fn uses_wide_kernel(&self) -> bool {
        matches!(self.plan, Plan::Wide(_))
    }

    fn check_row(&self, row: &[u16]) {
        assert_eq!(
            row.len(),
            self.input_count,
            "expected {} inputs per row",
            self.input_count
        );
        let limit = 1_u32 << self.input_bits;
        for &v in row {
            assert!(
                (v as u32) < limit,
                "input {v} does not fit in {} unsigned bits",
                self.input_bits
            );
        }
    }

    /// Raw last-layer sums for one row (after ReLU if the output layer has
    /// one; before any argmax) — the integer counterpart of
    /// [`crate::circuit::BespokeMlpCircuit::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics when the row length or an input value is out of range.
    pub fn outputs(&self, row: &[u16]) -> Vec<i64> {
        self.check_row(row);
        match &self.plan {
            Plan::Narrow(net) => {
                let mut scratch = Scratch::for_network(net);
                net.forward(row, &mut scratch)
                    .iter()
                    .map(|&v| v.to_i64())
                    .collect()
            }
            Plan::Wide(net) => {
                let mut scratch = Scratch::for_network(net);
                net.forward(row, &mut scratch).to_vec()
            }
        }
    }

    /// Argmax class for one row, ties resolved to the lowest index — the
    /// integer counterpart of
    /// [`crate::circuit::BespokeMlpCircuit::classify`].
    ///
    /// # Panics
    ///
    /// Panics when the row length or an input value is out of range.
    pub fn classify_row(&self, row: &[u16]) -> usize {
        self.check_row(row);
        match &self.plan {
            Plan::Narrow(net) => {
                let mut scratch = Scratch::for_network(net);
                argmax(net.forward(row, &mut scratch))
            }
            Plan::Wide(net) => {
                let mut scratch = Scratch::for_network(net);
                argmax(net.forward(row, &mut scratch))
            }
        }
    }

    /// Classifies a flattened batch (`rows.len()` must be a multiple of
    /// [`input_count`](IntInferEngine::input_count)), row-blocked and
    /// rayon-parallel over blocks.
    ///
    /// # Panics
    ///
    /// Panics when the batch length or an input value is out of range.
    pub fn classify_batch(&self, rows: &[u16]) -> Vec<usize> {
        assert_eq!(
            rows.len() % self.input_count,
            0,
            "batch length {} is not a multiple of input count {}",
            rows.len(),
            self.input_count
        );
        let n = rows.len() / self.input_count;
        let mut out = vec![0_usize; n];
        match &self.plan {
            Plan::Narrow(net) => self.classify_blocks(net, rows, &mut out),
            Plan::Wide(net) => self.classify_blocks(net, rows, &mut out),
        }
        out
    }

    fn classify_blocks<T: Cell + PartialOrd>(
        &self,
        net: &Network<T>,
        rows: &[u16],
        out: &mut [usize],
    ) {
        let ic = self.input_count;
        let limit = 1_u32 << self.input_bits;
        out.par_chunks_mut(ROW_BLOCK)
            .enumerate()
            .for_each(|(block, chunk)| {
                let mut scratch = Scratch::for_network(net);
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let r = block * ROW_BLOCK + j;
                    let row = &rows[r * ic..(r + 1) * ic];
                    debug_assert!(row.iter().all(|&v| (v as u32) < limit));
                    *slot = argmax(net.forward(row, &mut scratch));
                }
            });
        // The batch kernel only debug-asserts per value; keep release builds
        // honest with one vectorizable pass over the whole batch.
        assert!(
            rows.iter().all(|&v| (v as u32) < limit),
            "batch contains an input outside {} unsigned bits",
            self.input_bits
        );
    }

    /// Fraction of rows whose argmax class matches `labels` (flattened rows,
    /// one label per row).
    ///
    /// # Panics
    ///
    /// Panics when the label count does not match the row count, or on any
    /// out-of-range input.
    pub fn accuracy(&self, rows: &[u16], labels: &[usize]) -> f64 {
        let predicted = self.classify_batch(rows);
        assert_eq!(
            predicted.len(),
            labels.len(),
            "{} labels for {} rows",
            labels.len(),
            predicted.len()
        );
        if labels.is_empty() {
            return 0.0;
        }
        let hits = predicted
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p == l)
            .count();
        hits as f64 / labels.len() as f64
    }
}

/// Ties go to the lowest index, matching the hardware comparator tree.
fn argmax<T: Cell + PartialOrd>(values: &[T]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate().skip(1) {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::circuit::{BespokeMlpCircuit, LayerSpec};

    fn spec(input_bits: u8, layers: Vec<LayerSpec>) -> CircuitSpec {
        CircuitSpec::new(input_bits, layers).unwrap()
    }

    fn simple_spec() -> CircuitSpec {
        spec(
            4,
            vec![
                LayerSpec::with_biases(
                    vec![vec![2, -1, 3], vec![-2, 4, 1]],
                    vec![5, -7],
                    4,
                    HwActivation::ReLU,
                )
                .unwrap(),
                LayerSpec::with_biases(
                    vec![vec![1, -2], vec![-3, 2]],
                    vec![0, 9],
                    4,
                    HwActivation::Argmax,
                )
                .unwrap(),
            ],
        )
    }

    fn reference_outputs(spec: &CircuitSpec, row: &[u16]) -> Vec<i64> {
        let mut current: Vec<i64> = row.iter().map(|&v| v as i64).collect();
        for layer in &spec.layers {
            let mut next = Vec::new();
            for (w, &b) in layer.weights.iter().zip(layer.biases.iter()) {
                let mut sum: i64 = w.iter().zip(current.iter()).map(|(w, x)| w * x).sum();
                sum += b;
                if layer.activation == HwActivation::ReLU {
                    sum = sum.max(0);
                }
                next.push(sum);
            }
            current = next;
        }
        current
    }

    #[test]
    fn matches_reference_forward() {
        let spec = simple_spec();
        let engine = IntInferEngine::from_spec(&spec).unwrap();
        for row in [[0_u16, 0, 0], [1, 2, 3], [15, 15, 15], [7, 0, 9]] {
            assert_eq!(engine.outputs(&row), reference_outputs(&spec, &row));
        }
    }

    #[test]
    fn matches_netlist_simulation() {
        let spec = simple_spec();
        let engine = IntInferEngine::from_spec(&spec).unwrap();
        let circuit = BespokeMlpCircuit::synthesize(&spec, &CellLibrary::egt()).unwrap();
        for row in [[0_u16, 0, 0], [1, 2, 3], [15, 15, 15], [3, 14, 5]] {
            let wide: Vec<u64> = row.iter().map(|&v| v as u64).collect();
            assert_eq!(engine.outputs(&row), circuit.evaluate(&wide));
            assert_eq!(engine.classify_row(&row), circuit.classify(&wide));
        }
    }

    #[test]
    fn shared_kernel_matches_dense_kernel() {
        let spec = spec(
            4,
            vec![
                LayerSpec::new(
                    vec![vec![5, -3, 7], vec![5, -3, 0], vec![5, 7, 7]],
                    4,
                    HwActivation::ReLU,
                )
                .unwrap(),
                LayerSpec::new(
                    vec![vec![2, 2, -1], vec![-2, 2, 1]],
                    4,
                    HwActivation::Argmax,
                )
                .unwrap(),
            ],
        );
        let dense = IntInferEngine::from_spec(&spec).unwrap();
        let shared =
            IntInferEngine::from_spec_with(&spec, SharingStrategy::SharedPerInput).unwrap();
        for row in [[0_u16, 5, 9], [12, 3, 1], [15, 0, 8], [15, 15, 15]] {
            assert_eq!(dense.outputs(&row), shared.outputs(&row));
            assert_eq!(dense.classify_row(&row), shared.classify_row(&row));
        }
    }

    #[test]
    fn argmax_ties_go_to_lowest_index() {
        // Two identical neurons: every input produces a tie.
        let spec = spec(
            4,
            vec![LayerSpec::new(vec![vec![3, 1], vec![3, 1]], 4, HwActivation::Argmax).unwrap()],
        );
        let engine = IntInferEngine::from_spec(&spec).unwrap();
        let circuit = BespokeMlpCircuit::synthesize(&spec, &CellLibrary::egt()).unwrap();
        for row in [[0_u16, 0], [7, 3], [15, 15]] {
            assert_eq!(engine.classify_row(&row), 0);
            assert_eq!(
                engine.classify_row(&row),
                circuit.classify(&[row[0] as u64, row[1] as u64])
            );
        }
    }

    #[test]
    fn all_zero_weights_score_biases_only() {
        let spec = spec(
            3,
            vec![LayerSpec::with_biases(
                vec![vec![0, 0], vec![0, 0]],
                vec![-4, 6],
                4,
                HwActivation::Argmax,
            )
            .unwrap()],
        );
        for sharing in [SharingStrategy::None, SharingStrategy::SharedPerInput] {
            let engine = IntInferEngine::from_spec_with(&spec, sharing).unwrap();
            assert_eq!(engine.outputs(&[7, 7]), vec![-4, 6]);
            assert_eq!(engine.classify_row(&[0, 0]), 1);
        }
    }

    #[test]
    fn batch_matches_per_row_and_runs_past_one_block() {
        let spec = simple_spec();
        let engine = IntInferEngine::from_spec(&spec).unwrap();
        let n = ROW_BLOCK + 37;
        let mut rows = Vec::with_capacity(n * 3);
        for r in 0..n {
            rows.extend_from_slice(&[
                (r % 16) as u16,
                ((r * 7 + 3) % 16) as u16,
                ((r * 13 + 1) % 16) as u16,
            ]);
        }
        let batch = engine.classify_batch(&rows);
        assert_eq!(batch.len(), n);
        for (r, &class) in batch.iter().enumerate() {
            assert_eq!(class, engine.classify_row(&rows[r * 3..(r + 1) * 3]));
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let spec = spec(
            2,
            vec![LayerSpec::new(vec![vec![1], vec![-1]], 4, HwActivation::Argmax).unwrap()],
        );
        let engine = IntInferEngine::from_spec(&spec).unwrap();
        // Rows 1..3 classify as 0 (positive beats negative); row 0 ties -> 0.
        let rows = [0_u16, 1, 2, 3];
        assert_eq!(engine.accuracy(&rows, &[0, 0, 0, 0]), 1.0);
        assert_eq!(engine.accuracy(&rows, &[0, 0, 1, 1]), 0.5);
    }

    #[test]
    fn kernel_selection_follows_accumulator_bound() {
        let narrow = IntInferEngine::from_spec(&simple_spec()).unwrap();
        assert!(!narrow.uses_wide_kernel());
        // 16-bit inputs times large 24-bit weights with a wide fan-in pushes
        // the bound past i32.
        let wide_spec = spec(
            16,
            vec![LayerSpec::new(
                vec![vec![4_000_000, 4_000_000, 4_000_000]],
                24,
                HwActivation::Identity,
            )
            .unwrap()],
        );
        let wide = IntInferEngine::from_spec(&wide_spec).unwrap();
        assert!(wide.uses_wide_kernel());
        // Bound math: 3 · 4e6 · 65535 ≈ 7.9e11 > i32::MAX.
        assert_eq!(
            wide.outputs(&[65535, 65535, 65535]),
            vec![3 * 4_000_000_i64 * 65535]
        );
    }

    #[test]
    fn quantize_rows_snaps_to_grid() {
        let rows = quantize_rows(&[0.0, 1.0, 0.5, 0.26666668, 1.2, -0.3], 4).unwrap();
        // levels = 15: 0.5·15 = 7.5 rounds to 8; 0.26666668·15 ≈ 4.0 -> 4;
        // out-of-range values clamp.
        assert_eq!(rows, vec![0, 15, 8, 4, 15, 0]);
        assert!(quantize_rows(&[0.5], 0).is_err());
        assert!(quantize_rows(&[0.5], 17).is_err());
    }

    #[test]
    fn quantize_round_trips_prequantized_features() {
        // Features already on the grid (the campaign's quantized test sets)
        // must map back to their exact integer grid point.
        for bits in [1_u8, 4, 8, 12, 16] {
            let levels = (1_u32 << bits) - 1;
            let step = 97.max(levels / 64);
            for u in (0..=levels).step_by(step as usize) {
                let x = u as f32 / levels as f32;
                assert_eq!(
                    quantize_rows(&[x], bits).unwrap()[0] as u32,
                    u,
                    "bits {bits} u {u}"
                );
            }
        }
    }

    #[test]
    fn overflowing_spec_is_rejected() {
        // Chain layers until the bound exceeds i64: 16-bit inputs and
        // maximal 24-bit weights grow the bound by ~2^23 per layer.
        let max_w = (1_i64 << 23) - 1;
        let layers = (0..5)
            .map(|_| LayerSpec::new(vec![vec![max_w]; 1], 24, HwActivation::Identity).unwrap())
            .collect();
        let spec = CircuitSpec::new(16, layers).unwrap();
        assert!(IntInferEngine::from_spec(&spec).is_err());
    }

    #[test]
    fn row_shape_is_checked() {
        let engine = IntInferEngine::from_spec(&simple_spec()).unwrap();
        assert!(std::panic::catch_unwind(|| engine.classify_row(&[1, 2])).is_err());
        assert!(std::panic::catch_unwind(|| engine.classify_row(&[1, 2, 16])).is_err());
        assert!(std::panic::catch_unwind(|| engine.classify_batch(&[1, 2, 3, 4])).is_err());
    }
}
