//! EGT (Electrolyte-Gated Transistor) standard-cell library.
//!
//! The values are an architectural-level abstraction of the open EGT library
//! used in the printed-electronics literature (Bleier et al., ISCA 2020;
//! Mubarik et al., MICRO 2020): inkjet-printed transistors at ~1 V supply with
//! feature sizes in the tens of micrometres, which makes individual gates
//! measure in fractions of a square millimetre and switch in milliseconds.
//! Absolute numbers differ from a real signoff flow; the *relative* cost of
//! gates (a full adder ≈ 4–5 NAND-equivalents, a flip-flop ≈ 6) is what drives
//! the area trends reproduced by this crate.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Kinds of standard cells available in the printed technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inverter,
    /// Non-inverting buffer.
    Buffer,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer.
    Mux2,
    /// Half adder (sum + carry).
    HalfAdder,
    /// Full adder (sum + carry).
    FullAdder,
    /// D flip-flop (used only by sequential variants / registers).
    Dff,
}

impl CellKind {
    /// All cell kinds, in a stable order.
    pub fn all() -> [CellKind; 12] {
        [
            CellKind::Inverter,
            CellKind::Buffer,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::HalfAdder,
            CellKind::FullAdder,
            CellKind::Dff,
        ]
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellKind::Inverter => "INV",
            CellKind::Buffer => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::HalfAdder => "HA",
            CellKind::FullAdder => "FA",
            CellKind::Dff => "DFF",
        };
        f.write_str(name)
    }
}

/// Physical parameters of one standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Cell area in mm² (printed cells are huge compared to silicon).
    pub area_mm2: f64,
    /// Static power draw in µW (EGT logic is dominated by static power).
    pub power_uw: f64,
    /// Propagation delay in µs.
    pub delay_us: f64,
}

/// A printed-electronics standard-cell library.
///
/// # Example
///
/// ```
/// use pmlp_hw::{CellLibrary, CellKind};
/// let lib = CellLibrary::egt();
/// let fa = lib.params(CellKind::FullAdder);
/// let inv = lib.params(CellKind::Inverter);
/// assert!(fa.area_mm2 > inv.area_mm2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    supply_voltage: f64,
    cells: BTreeMap<CellKind, CellParams>,
}

impl CellLibrary {
    /// Builds a library from explicit per-cell parameters.
    ///
    /// Missing cells fall back to the NAND2 parameters scaled by a
    /// NAND-equivalent factor, so partially specified libraries stay usable.
    pub fn new(
        name: impl Into<String>,
        supply_voltage: f64,
        cells: BTreeMap<CellKind, CellParams>,
    ) -> Self {
        CellLibrary {
            name: name.into(),
            supply_voltage,
            cells,
        }
    }

    /// The open EGT library abstraction (inkjet-printed, ~1 V supply).
    ///
    /// Relative cell sizes follow standard NAND-equivalent gate counts; the
    /// absolute scale (a NAND2 of 0.04 mm², 1.3 µW, 25 µs) is representative of
    /// published EGT figures.
    pub fn egt() -> Self {
        let nand_area = 0.04; // mm²
        let nand_power = 1.3; // µW
        let nand_delay = 25.0; // µs
        let mk = |ge: f64, delay_factor: f64| CellParams {
            area_mm2: nand_area * ge,
            power_uw: nand_power * ge,
            delay_us: nand_delay * delay_factor,
        };
        let mut cells = BTreeMap::new();
        cells.insert(CellKind::Inverter, mk(0.6, 0.6));
        cells.insert(CellKind::Buffer, mk(0.8, 0.9));
        cells.insert(CellKind::Nand2, mk(1.0, 1.0));
        cells.insert(CellKind::Nor2, mk(1.0, 1.1));
        cells.insert(CellKind::And2, mk(1.4, 1.3));
        cells.insert(CellKind::Or2, mk(1.4, 1.3));
        cells.insert(CellKind::Xor2, mk(2.6, 1.8));
        cells.insert(CellKind::Xnor2, mk(2.6, 1.8));
        cells.insert(CellKind::Mux2, mk(2.2, 1.5));
        cells.insert(CellKind::HalfAdder, mk(3.2, 2.0));
        cells.insert(CellKind::FullAdder, mk(4.8, 2.6));
        cells.insert(CellKind::Dff, mk(6.0, 2.2));
        CellLibrary::new("EGT", 1.0, cells)
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nominal supply voltage in volts.
    pub fn supply_voltage(&self) -> f64 {
        self.supply_voltage
    }

    /// Parameters of `kind`, falling back to NAND2-derived estimates when the
    /// library does not define the cell explicitly.
    pub fn params(&self, kind: CellKind) -> CellParams {
        if let Some(&p) = self.cells.get(&kind) {
            return p;
        }
        // Fallback: scale the NAND2 cell by a typical NAND-equivalent factor.
        let base = self
            .cells
            .get(&CellKind::Nand2)
            .copied()
            .unwrap_or(CellParams {
                area_mm2: 0.04,
                power_uw: 1.3,
                delay_us: 25.0,
            });
        let ge = match kind {
            CellKind::Inverter => 0.6,
            CellKind::Buffer => 0.8,
            CellKind::Nand2 | CellKind::Nor2 => 1.0,
            CellKind::And2 | CellKind::Or2 => 1.4,
            CellKind::Xor2 | CellKind::Xnor2 => 2.6,
            CellKind::Mux2 => 2.2,
            CellKind::HalfAdder => 3.2,
            CellKind::FullAdder => 4.8,
            CellKind::Dff => 6.0,
        };
        CellParams {
            area_mm2: base.area_mm2 * ge,
            power_uw: base.power_uw * ge,
            delay_us: base.delay_us * ge,
        }
    }

    /// Iterates over all explicitly defined cells.
    pub fn iter(&self) -> impl Iterator<Item = (&CellKind, &CellParams)> {
        self.cells.iter()
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::egt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn egt_library_defines_every_cell() {
        let lib = CellLibrary::egt();
        for kind in CellKind::all() {
            let p = lib.params(kind);
            assert!(p.area_mm2 > 0.0, "{kind} has zero area");
            assert!(p.power_uw > 0.0, "{kind} has zero power");
            assert!(p.delay_us > 0.0, "{kind} has zero delay");
        }
    }

    #[test]
    fn relative_cell_costs_are_sane() {
        let lib = CellLibrary::egt();
        let inv = lib.params(CellKind::Inverter);
        let nand = lib.params(CellKind::Nand2);
        let xor = lib.params(CellKind::Xor2);
        let fa = lib.params(CellKind::FullAdder);
        let ha = lib.params(CellKind::HalfAdder);
        assert!(inv.area_mm2 < nand.area_mm2);
        assert!(nand.area_mm2 < xor.area_mm2);
        assert!(ha.area_mm2 < fa.area_mm2);
        assert!(fa.area_mm2 > 3.0 * nand.area_mm2);
    }

    #[test]
    fn fallback_params_are_used_for_missing_cells() {
        let mut cells = BTreeMap::new();
        cells.insert(
            CellKind::Nand2,
            CellParams {
                area_mm2: 0.1,
                power_uw: 2.0,
                delay_us: 10.0,
            },
        );
        let lib = CellLibrary::new("partial", 1.0, cells);
        let fa = lib.params(CellKind::FullAdder);
        assert!((fa.area_mm2 - 0.48).abs() < 1e-9);
        assert!((fa.power_uw - 9.6).abs() < 1e-9);
    }

    #[test]
    fn display_names_match_liberty_style() {
        assert_eq!(CellKind::FullAdder.to_string(), "FA");
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
    }

    #[test]
    fn default_library_is_egt() {
        assert_eq!(CellLibrary::default().name(), "EGT");
        assert!((CellLibrary::default().supply_voltage() - 1.0).abs() < 1e-12);
    }
}
